/root/repo/target/release/examples/diag-3442d8894dc86756.d: examples/diag.rs

/root/repo/target/release/examples/diag-3442d8894dc86756: examples/diag.rs

examples/diag.rs:
