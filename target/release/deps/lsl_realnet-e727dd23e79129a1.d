/root/repo/target/release/deps/lsl_realnet-e727dd23e79129a1.d: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

/root/repo/target/release/deps/liblsl_realnet-e727dd23e79129a1.rlib: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

/root/repo/target/release/deps/liblsl_realnet-e727dd23e79129a1.rmeta: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

crates/realnet/src/lib.rs:
crates/realnet/src/depot.rs:
crates/realnet/src/sink.rs:
crates/realnet/src/stream.rs:
crates/realnet/src/wire.rs:
