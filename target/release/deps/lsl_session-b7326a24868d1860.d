/root/repo/target/release/deps/lsl_session-b7326a24868d1860.d: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

/root/repo/target/release/deps/liblsl_session-b7326a24868d1860.rlib: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

/root/repo/target/release/deps/liblsl_session-b7326a24868d1860.rmeta: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

crates/session/src/lib.rs:
crates/session/src/depot.rs:
crates/session/src/endpoint.rs:
crates/session/src/header.rs:
crates/session/src/id.rs:
crates/session/src/model.rs:
crates/session/src/path.rs:
crates/session/src/route.rs:
