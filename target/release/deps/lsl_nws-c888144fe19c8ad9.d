/root/repo/target/release/deps/lsl_nws-c888144fe19c8ad9.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

/root/repo/target/release/deps/liblsl_nws-c888144fe19c8ad9.rlib: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

/root/repo/target/release/deps/liblsl_nws-c888144fe19c8ad9.rmeta: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/registry.rs:
crates/nws/src/series.rs:
