/root/repo/target/release/deps/rand-3a628a95b229cfb2.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3a628a95b229cfb2.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3a628a95b229cfb2.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
