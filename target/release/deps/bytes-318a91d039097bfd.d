/root/repo/target/release/deps/bytes-318a91d039097bfd.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-318a91d039097bfd.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-318a91d039097bfd.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
