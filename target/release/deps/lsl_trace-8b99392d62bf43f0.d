/root/repo/target/release/deps/lsl_trace-8b99392d62bf43f0.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

/root/repo/target/release/deps/liblsl_trace-8b99392d62bf43f0.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

/root/repo/target/release/deps/liblsl_trace-8b99392d62bf43f0.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
