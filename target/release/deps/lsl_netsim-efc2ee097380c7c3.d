/root/repo/target/release/deps/lsl_netsim-efc2ee097380c7c3.d: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

/root/repo/target/release/deps/liblsl_netsim-efc2ee097380c7c3.rlib: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

/root/repo/target/release/deps/liblsl_netsim-efc2ee097380c7c3.rmeta: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topo.rs:
