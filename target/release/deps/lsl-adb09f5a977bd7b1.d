/root/repo/target/release/deps/lsl-adb09f5a977bd7b1.d: src/lib.rs

/root/repo/target/release/deps/liblsl-adb09f5a977bd7b1.rlib: src/lib.rs

/root/repo/target/release/deps/liblsl-adb09f5a977bd7b1.rmeta: src/lib.rs

src/lib.rs:
