/root/repo/target/release/deps/lsl_digest-45225ac722d56454.d: crates/digest/src/lib.rs crates/digest/src/md5.rs

/root/repo/target/release/deps/liblsl_digest-45225ac722d56454.rlib: crates/digest/src/lib.rs crates/digest/src/md5.rs

/root/repo/target/release/deps/liblsl_digest-45225ac722d56454.rmeta: crates/digest/src/lib.rs crates/digest/src/md5.rs

crates/digest/src/lib.rs:
crates/digest/src/md5.rs:
