/root/repo/target/release/deps/lsl_tcp-168da5b1aede9ce9.d: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

/root/repo/target/release/deps/liblsl_tcp-168da5b1aede9ce9.rlib: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

/root/repo/target/release/deps/liblsl_tcp-168da5b1aede9ce9.rmeta: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

crates/tcp/src/lib.rs:
crates/tcp/src/cc.rs:
crates/tcp/src/config.rs:
crates/tcp/src/net.rs:
crates/tcp/src/rcvbuf.rs:
crates/tcp/src/rto.rs:
crates/tcp/src/segment.rs:
crates/tcp/src/sndbuf.rs:
crates/tcp/src/socket.rs:
crates/tcp/src/stack.rs:
