/root/repo/target/release/deps/lsl_workloads-cd5f33c99651471c.d: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

/root/repo/target/release/deps/liblsl_workloads-cd5f33c99651471c.rlib: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

/root/repo/target/release/deps/liblsl_workloads-cd5f33c99651471c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

crates/workloads/src/lib.rs:
crates/workloads/src/paths.rs:
crates/workloads/src/report.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/sweep.rs:
