/root/repo/target/debug/deps/lsl_bench-5da3312ef83b21b2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_bench-5da3312ef83b21b2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
