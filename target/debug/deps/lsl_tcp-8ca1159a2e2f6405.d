/root/repo/target/debug/deps/lsl_tcp-8ca1159a2e2f6405.d: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_tcp-8ca1159a2e2f6405.rmeta: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs Cargo.toml

crates/tcp/src/lib.rs:
crates/tcp/src/cc.rs:
crates/tcp/src/config.rs:
crates/tcp/src/net.rs:
crates/tcp/src/rcvbuf.rs:
crates/tcp/src/rto.rs:
crates/tcp/src/segment.rs:
crates/tcp/src/sndbuf.rs:
crates/tcp/src/socket.rs:
crates/tcp/src/stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
