/root/repo/target/debug/deps/fixture-915b74e64febede8.d: crates/audit/tests/fixture.rs

/root/repo/target/debug/deps/fixture-915b74e64febede8: crates/audit/tests/fixture.rs

crates/audit/tests/fixture.rs:

# env-dep:CARGO_BIN_EXE_lsl-audit=/root/repo/target/debug/lsl-audit
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
