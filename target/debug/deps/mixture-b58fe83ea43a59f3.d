/root/repo/target/debug/deps/mixture-b58fe83ea43a59f3.d: crates/nws/tests/mixture.rs

/root/repo/target/debug/deps/mixture-b58fe83ea43a59f3: crates/nws/tests/mixture.rs

crates/nws/tests/mixture.rs:
