/root/repo/target/debug/deps/lsl-6ca205a6fbf2e535.d: src/lib.rs

/root/repo/target/debug/deps/liblsl-6ca205a6fbf2e535.rlib: src/lib.rs

/root/repo/target/debug/deps/liblsl-6ca205a6fbf2e535.rmeta: src/lib.rs

src/lib.rs:
