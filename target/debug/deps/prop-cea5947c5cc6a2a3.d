/root/repo/target/debug/deps/prop-cea5947c5cc6a2a3.d: crates/trace/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-cea5947c5cc6a2a3.rmeta: crates/trace/tests/prop.rs Cargo.toml

crates/trace/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
