/root/repo/target/debug/deps/lsl_audit-d981f8a8bab31a5d.d: crates/audit/src/lib.rs crates/audit/src/allowlist.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs crates/audit/src/manifest.rs

/root/repo/target/debug/deps/lsl_audit-d981f8a8bab31a5d: crates/audit/src/lib.rs crates/audit/src/allowlist.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs crates/audit/src/manifest.rs

crates/audit/src/lib.rs:
crates/audit/src/allowlist.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
crates/audit/src/manifest.rs:
