/root/repo/target/debug/deps/loopback-d08bcdbbba71e094.d: crates/realnet/tests/loopback.rs Cargo.toml

/root/repo/target/debug/deps/libloopback-d08bcdbbba71e094.rmeta: crates/realnet/tests/loopback.rs Cargo.toml

crates/realnet/tests/loopback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
