/root/repo/target/debug/deps/lsl_tcp-bdc4bf27c783b24e.d: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_tcp-bdc4bf27c783b24e.rmeta: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs Cargo.toml

crates/tcp/src/lib.rs:
crates/tcp/src/cc.rs:
crates/tcp/src/config.rs:
crates/tcp/src/net.rs:
crates/tcp/src/rcvbuf.rs:
crates/tcp/src/rto.rs:
crates/tcp/src/segment.rs:
crates/tcp/src/sndbuf.rs:
crates/tcp/src/socket.rs:
crates/tcp/src/stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
