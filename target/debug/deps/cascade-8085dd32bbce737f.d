/root/repo/target/debug/deps/cascade-8085dd32bbce737f.d: crates/session/tests/cascade.rs Cargo.toml

/root/repo/target/debug/deps/libcascade-8085dd32bbce737f.rmeta: crates/session/tests/cascade.rs Cargo.toml

crates/session/tests/cascade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
