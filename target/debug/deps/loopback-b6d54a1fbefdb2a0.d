/root/repo/target/debug/deps/loopback-b6d54a1fbefdb2a0.d: crates/realnet/tests/loopback.rs

/root/repo/target/debug/deps/loopback-b6d54a1fbefdb2a0: crates/realnet/tests/loopback.rs

crates/realnet/tests/loopback.rs:
