/root/repo/target/debug/deps/determinism-0e701faa01adb092.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-0e701faa01adb092: tests/determinism.rs

tests/determinism.rs:
