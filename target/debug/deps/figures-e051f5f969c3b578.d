/root/repo/target/debug/deps/figures-e051f5f969c3b578.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-e051f5f969c3b578.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
