/root/repo/target/debug/deps/lsl_digest-0964b1aa1f45b4f3.d: crates/digest/src/lib.rs crates/digest/src/md5.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_digest-0964b1aa1f45b4f3.rmeta: crates/digest/src/lib.rs crates/digest/src/md5.rs Cargo.toml

crates/digest/src/lib.rs:
crates/digest/src/md5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
