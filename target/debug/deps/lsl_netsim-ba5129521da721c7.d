/root/repo/target/debug/deps/lsl_netsim-ba5129521da721c7.d: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_netsim-ba5129521da721c7.rmeta: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
