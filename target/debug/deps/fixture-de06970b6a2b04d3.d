/root/repo/target/debug/deps/fixture-de06970b6a2b04d3.d: crates/audit/tests/fixture.rs Cargo.toml

/root/repo/target/debug/deps/libfixture-de06970b6a2b04d3.rmeta: crates/audit/tests/fixture.rs Cargo.toml

crates/audit/tests/fixture.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_lsl-audit=placeholder:lsl-audit
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
