/root/repo/target/debug/deps/lsl_audit-950877a8a078116a.d: crates/audit/src/lib.rs crates/audit/src/allowlist.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs crates/audit/src/manifest.rs

/root/repo/target/debug/deps/liblsl_audit-950877a8a078116a.rlib: crates/audit/src/lib.rs crates/audit/src/allowlist.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs crates/audit/src/manifest.rs

/root/repo/target/debug/deps/liblsl_audit-950877a8a078116a.rmeta: crates/audit/src/lib.rs crates/audit/src/allowlist.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs crates/audit/src/manifest.rs

crates/audit/src/lib.rs:
crates/audit/src/allowlist.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
crates/audit/src/manifest.rs:
