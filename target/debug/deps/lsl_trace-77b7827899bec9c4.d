/root/repo/target/debug/deps/lsl_trace-77b7827899bec9c4.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs crates/trace/src/violations.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_trace-77b7827899bec9c4.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs crates/trace/src/violations.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
crates/trace/src/violations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
