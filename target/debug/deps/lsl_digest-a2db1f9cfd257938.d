/root/repo/target/debug/deps/lsl_digest-a2db1f9cfd257938.d: crates/digest/src/lib.rs crates/digest/src/md5.rs

/root/repo/target/debug/deps/lsl_digest-a2db1f9cfd257938: crates/digest/src/lib.rs crates/digest/src/md5.rs

crates/digest/src/lib.rs:
crates/digest/src/md5.rs:
