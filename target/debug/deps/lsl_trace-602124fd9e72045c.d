/root/repo/target/debug/deps/lsl_trace-602124fd9e72045c.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

/root/repo/target/debug/deps/lsl_trace-602124fd9e72045c: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
