/root/repo/target/debug/deps/lsl_realnet-946086aee1efaa9c.d: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_realnet-946086aee1efaa9c.rmeta: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs Cargo.toml

crates/realnet/src/lib.rs:
crates/realnet/src/depot.rs:
crates/realnet/src/sink.rs:
crates/realnet/src/stream.rs:
crates/realnet/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
