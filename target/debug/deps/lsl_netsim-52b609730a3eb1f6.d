/root/repo/target/debug/deps/lsl_netsim-52b609730a3eb1f6.d: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

/root/repo/target/debug/deps/liblsl_netsim-52b609730a3eb1f6.rlib: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

/root/repo/target/debug/deps/liblsl_netsim-52b609730a3eb1f6.rmeta: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topo.rs:
