/root/repo/target/debug/deps/lsl_session-b49aa086f8d34040.d: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

/root/repo/target/debug/deps/liblsl_session-b49aa086f8d34040.rlib: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

/root/repo/target/debug/deps/liblsl_session-b49aa086f8d34040.rmeta: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

crates/session/src/lib.rs:
crates/session/src/depot.rs:
crates/session/src/endpoint.rs:
crates/session/src/header.rs:
crates/session/src/id.rs:
crates/session/src/model.rs:
crates/session/src/path.rs:
crates/session/src/route.rs:
