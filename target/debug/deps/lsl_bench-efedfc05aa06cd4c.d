/root/repo/target/debug/deps/lsl_bench-efedfc05aa06cd4c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_bench-efedfc05aa06cd4c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
