/root/repo/target/debug/deps/end_to_end-a7a3041dfd2d7e69.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a7a3041dfd2d7e69: tests/end_to_end.rs

tests/end_to_end.rs:
