/root/repo/target/debug/deps/lsl_realnet-6e7b98eae6d17cfd.d: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

/root/repo/target/debug/deps/liblsl_realnet-6e7b98eae6d17cfd.rlib: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

/root/repo/target/debug/deps/liblsl_realnet-6e7b98eae6d17cfd.rmeta: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

crates/realnet/src/lib.rs:
crates/realnet/src/depot.rs:
crates/realnet/src/sink.rs:
crates/realnet/src/stream.rs:
crates/realnet/src/wire.rs:
