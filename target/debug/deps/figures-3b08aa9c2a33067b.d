/root/repo/target/debug/deps/figures-3b08aa9c2a33067b.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-3b08aa9c2a33067b.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
