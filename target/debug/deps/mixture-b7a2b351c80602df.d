/root/repo/target/debug/deps/mixture-b7a2b351c80602df.d: crates/nws/tests/mixture.rs Cargo.toml

/root/repo/target/debug/deps/libmixture-b7a2b351c80602df.rmeta: crates/nws/tests/mixture.rs Cargo.toml

crates/nws/tests/mixture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
