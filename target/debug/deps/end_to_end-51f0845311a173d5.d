/root/repo/target/debug/deps/end_to_end-51f0845311a173d5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-51f0845311a173d5: tests/end_to_end.rs

tests/end_to_end.rs:
