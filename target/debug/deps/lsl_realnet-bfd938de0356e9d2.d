/root/repo/target/debug/deps/lsl_realnet-bfd938de0356e9d2.d: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

/root/repo/target/debug/deps/liblsl_realnet-bfd938de0356e9d2.rlib: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

/root/repo/target/debug/deps/liblsl_realnet-bfd938de0356e9d2.rmeta: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

crates/realnet/src/lib.rs:
crates/realnet/src/depot.rs:
crates/realnet/src/sink.rs:
crates/realnet/src/stream.rs:
crates/realnet/src/wire.rs:
