/root/repo/target/debug/deps/prop-5af5297c23efaf62.d: crates/netsim/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5af5297c23efaf62.rmeta: crates/netsim/tests/prop.rs Cargo.toml

crates/netsim/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
