/root/repo/target/debug/deps/lsl_session-b534b6032faecd28.d: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

/root/repo/target/debug/deps/liblsl_session-b534b6032faecd28.rlib: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

/root/repo/target/debug/deps/liblsl_session-b534b6032faecd28.rmeta: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs

crates/session/src/lib.rs:
crates/session/src/depot.rs:
crates/session/src/endpoint.rs:
crates/session/src/header.rs:
crates/session/src/id.rs:
crates/session/src/model.rs:
crates/session/src/path.rs:
crates/session/src/route.rs:
