/root/repo/target/debug/deps/lsl-5feb8fd73ba059c4.d: src/lib.rs

/root/repo/target/debug/deps/liblsl-5feb8fd73ba059c4.rlib: src/lib.rs

/root/repo/target/debug/deps/liblsl-5feb8fd73ba059c4.rmeta: src/lib.rs

src/lib.rs:
