/root/repo/target/debug/deps/tcp_behavior-07a1465487d3fd11.d: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs

/root/repo/target/debug/deps/tcp_behavior-07a1465487d3fd11: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs

crates/tcp/tests/tcp_behavior.rs:
crates/tcp/tests/common/mod.rs:
