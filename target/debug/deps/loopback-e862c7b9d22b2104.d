/root/repo/target/debug/deps/loopback-e862c7b9d22b2104.d: crates/realnet/tests/loopback.rs Cargo.toml

/root/repo/target/debug/deps/libloopback-e862c7b9d22b2104.rmeta: crates/realnet/tests/loopback.rs Cargo.toml

crates/realnet/tests/loopback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
