/root/repo/target/debug/deps/lsl_tcp-663cef086c917334.d: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

/root/repo/target/debug/deps/liblsl_tcp-663cef086c917334.rlib: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

/root/repo/target/debug/deps/liblsl_tcp-663cef086c917334.rmeta: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

crates/tcp/src/lib.rs:
crates/tcp/src/cc.rs:
crates/tcp/src/config.rs:
crates/tcp/src/net.rs:
crates/tcp/src/rcvbuf.rs:
crates/tcp/src/rto.rs:
crates/tcp/src/segment.rs:
crates/tcp/src/sndbuf.rs:
crates/tcp/src/socket.rs:
crates/tcp/src/stack.rs:
