/root/repo/target/debug/deps/end_to_end-2fc25c191195d936.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2fc25c191195d936: tests/end_to_end.rs

tests/end_to_end.rs:
