/root/repo/target/debug/deps/lsl_realnet-a11ecb1cafa9ac30.d: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

/root/repo/target/debug/deps/lsl_realnet-a11ecb1cafa9ac30: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs

crates/realnet/src/lib.rs:
crates/realnet/src/depot.rs:
crates/realnet/src/sink.rs:
crates/realnet/src/stream.rs:
crates/realnet/src/wire.rs:
