/root/repo/target/debug/deps/lsl_nws-581c289900af985b.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

/root/repo/target/debug/deps/lsl_nws-581c289900af985b: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/registry.rs:
crates/nws/src/series.rs:
