/root/repo/target/debug/deps/lsl_audit-2ad76a410e1e93b4.d: crates/audit/src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_audit-2ad76a410e1e93b4.rmeta: crates/audit/src/main.rs Cargo.toml

crates/audit/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
