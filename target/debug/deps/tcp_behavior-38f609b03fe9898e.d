/root/repo/target/debug/deps/tcp_behavior-38f609b03fe9898e.d: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_behavior-38f609b03fe9898e.rmeta: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs Cargo.toml

crates/tcp/tests/tcp_behavior.rs:
crates/tcp/tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
