/root/repo/target/debug/deps/figures-994068a70ba7b048.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-994068a70ba7b048: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
