/root/repo/target/debug/deps/lsl-cb312130fdc28016.d: src/lib.rs

/root/repo/target/debug/deps/lsl-cb312130fdc28016: src/lib.rs

src/lib.rs:
