/root/repo/target/debug/deps/lsl_digest-2b464d02a60e05f5.d: crates/digest/src/lib.rs crates/digest/src/md5.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_digest-2b464d02a60e05f5.rmeta: crates/digest/src/lib.rs crates/digest/src/md5.rs Cargo.toml

crates/digest/src/lib.rs:
crates/digest/src/md5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
