/root/repo/target/debug/deps/lsl_workloads-087235a337e49266.d: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_workloads-087235a337e49266.rmeta: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/paths.rs:
crates/workloads/src/report.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
