/root/repo/target/debug/deps/lsl_realnet-0f9f1dc5646489d2.d: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_realnet-0f9f1dc5646489d2.rmeta: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs Cargo.toml

crates/realnet/src/lib.rs:
crates/realnet/src/depot.rs:
crates/realnet/src/sink.rs:
crates/realnet/src/stream.rs:
crates/realnet/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
