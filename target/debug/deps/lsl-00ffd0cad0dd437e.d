/root/repo/target/debug/deps/lsl-00ffd0cad0dd437e.d: src/lib.rs

/root/repo/target/debug/deps/lsl-00ffd0cad0dd437e: src/lib.rs

src/lib.rs:
