/root/repo/target/debug/deps/lsl_bench-e7c133d8d9ce8f4d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lsl_bench-e7c133d8d9ce8f4d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
