/root/repo/target/debug/deps/lsl-cf86f0eae4a73283.d: src/lib.rs

/root/repo/target/debug/deps/lsl-cf86f0eae4a73283: src/lib.rs

src/lib.rs:
