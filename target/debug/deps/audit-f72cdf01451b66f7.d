/root/repo/target/debug/deps/audit-f72cdf01451b66f7.d: tests/audit.rs Cargo.toml

/root/repo/target/debug/deps/libaudit-f72cdf01451b66f7.rmeta: tests/audit.rs Cargo.toml

tests/audit.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
