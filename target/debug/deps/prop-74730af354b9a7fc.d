/root/repo/target/debug/deps/prop-74730af354b9a7fc.d: crates/netsim/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-74730af354b9a7fc.rmeta: crates/netsim/tests/prop.rs Cargo.toml

crates/netsim/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
