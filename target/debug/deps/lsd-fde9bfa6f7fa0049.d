/root/repo/target/debug/deps/lsd-fde9bfa6f7fa0049.d: crates/realnet/src/bin/lsd.rs

/root/repo/target/debug/deps/lsd-fde9bfa6f7fa0049: crates/realnet/src/bin/lsd.rs

crates/realnet/src/bin/lsd.rs:
