/root/repo/target/debug/deps/lsl_tcp-351f85b6e415428f.d: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

/root/repo/target/debug/deps/lsl_tcp-351f85b6e415428f: crates/tcp/src/lib.rs crates/tcp/src/cc.rs crates/tcp/src/config.rs crates/tcp/src/net.rs crates/tcp/src/rcvbuf.rs crates/tcp/src/rto.rs crates/tcp/src/segment.rs crates/tcp/src/sndbuf.rs crates/tcp/src/socket.rs crates/tcp/src/stack.rs

crates/tcp/src/lib.rs:
crates/tcp/src/cc.rs:
crates/tcp/src/config.rs:
crates/tcp/src/net.rs:
crates/tcp/src/rcvbuf.rs:
crates/tcp/src/rto.rs:
crates/tcp/src/segment.rs:
crates/tcp/src/sndbuf.rs:
crates/tcp/src/socket.rs:
crates/tcp/src/stack.rs:
