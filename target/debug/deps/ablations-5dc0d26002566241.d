/root/repo/target/debug/deps/ablations-5dc0d26002566241.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-5dc0d26002566241: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
