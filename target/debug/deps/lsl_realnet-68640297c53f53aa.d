/root/repo/target/debug/deps/lsl_realnet-68640297c53f53aa.d: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_realnet-68640297c53f53aa.rmeta: crates/realnet/src/lib.rs crates/realnet/src/depot.rs crates/realnet/src/sink.rs crates/realnet/src/stream.rs crates/realnet/src/wire.rs Cargo.toml

crates/realnet/src/lib.rs:
crates/realnet/src/depot.rs:
crates/realnet/src/sink.rs:
crates/realnet/src/stream.rs:
crates/realnet/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
