/root/repo/target/debug/deps/prop-502a2460f827bb6c.d: crates/netsim/tests/prop.rs

/root/repo/target/debug/deps/prop-502a2460f827bb6c: crates/netsim/tests/prop.rs

crates/netsim/tests/prop.rs:
