/root/repo/target/debug/deps/lsl_workloads-7056fd5234897a3d.d: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

/root/repo/target/debug/deps/liblsl_workloads-7056fd5234897a3d.rlib: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

/root/repo/target/debug/deps/liblsl_workloads-7056fd5234897a3d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

crates/workloads/src/lib.rs:
crates/workloads/src/paths.rs:
crates/workloads/src/report.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/sweep.rs:
