/root/repo/target/debug/deps/lsl_trace-d3ed8ec64304085b.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs crates/trace/src/violations.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_trace-d3ed8ec64304085b.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs crates/trace/src/violations.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
crates/trace/src/violations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
