/root/repo/target/debug/deps/cascade-70229e2def15f32b.d: crates/session/tests/cascade.rs

/root/repo/target/debug/deps/cascade-70229e2def15f32b: crates/session/tests/cascade.rs

crates/session/tests/cascade.rs:
