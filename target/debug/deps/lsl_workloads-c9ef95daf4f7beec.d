/root/repo/target/debug/deps/lsl_workloads-c9ef95daf4f7beec.d: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_workloads-c9ef95daf4f7beec.rmeta: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/paths.rs:
crates/workloads/src/report.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
