/root/repo/target/debug/deps/audit-0e9860b19d58cd13.d: tests/audit.rs Cargo.toml

/root/repo/target/debug/deps/libaudit-0e9860b19d58cd13.rmeta: tests/audit.rs Cargo.toml

tests/audit.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
