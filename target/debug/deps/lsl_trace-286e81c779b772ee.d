/root/repo/target/debug/deps/lsl_trace-286e81c779b772ee.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

/root/repo/target/debug/deps/liblsl_trace-286e81c779b772ee.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

/root/repo/target/debug/deps/liblsl_trace-286e81c779b772ee.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
