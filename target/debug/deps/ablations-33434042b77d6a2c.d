/root/repo/target/debug/deps/ablations-33434042b77d6a2c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-33434042b77d6a2c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
