/root/repo/target/debug/deps/invariants-8040db111f12dde5.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-8040db111f12dde5: tests/invariants.rs

tests/invariants.rs:
