/root/repo/target/debug/deps/tcp_behavior-52b9cf628235116b.d: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_behavior-52b9cf628235116b.rmeta: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs Cargo.toml

crates/tcp/tests/tcp_behavior.rs:
crates/tcp/tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
