/root/repo/target/debug/deps/lsl_netsim-6192a04a3c1a478e.d: crates/netsim/src/lib.rs crates/netsim/src/invariants.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

/root/repo/target/debug/deps/liblsl_netsim-6192a04a3c1a478e.rlib: crates/netsim/src/lib.rs crates/netsim/src/invariants.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

/root/repo/target/debug/deps/liblsl_netsim-6192a04a3c1a478e.rmeta: crates/netsim/src/lib.rs crates/netsim/src/invariants.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

crates/netsim/src/lib.rs:
crates/netsim/src/invariants.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topo.rs:
