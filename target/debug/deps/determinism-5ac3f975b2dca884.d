/root/repo/target/debug/deps/determinism-5ac3f975b2dca884.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-5ac3f975b2dca884.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
