/root/repo/target/debug/deps/lsl_session-312600971db97dce.d: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_session-312600971db97dce.rmeta: crates/session/src/lib.rs crates/session/src/depot.rs crates/session/src/endpoint.rs crates/session/src/header.rs crates/session/src/id.rs crates/session/src/model.rs crates/session/src/path.rs crates/session/src/route.rs Cargo.toml

crates/session/src/lib.rs:
crates/session/src/depot.rs:
crates/session/src/endpoint.rs:
crates/session/src/header.rs:
crates/session/src/id.rs:
crates/session/src/model.rs:
crates/session/src/path.rs:
crates/session/src/route.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
