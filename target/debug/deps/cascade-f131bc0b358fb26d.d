/root/repo/target/debug/deps/cascade-f131bc0b358fb26d.d: crates/session/tests/cascade.rs Cargo.toml

/root/repo/target/debug/deps/libcascade-f131bc0b358fb26d.rmeta: crates/session/tests/cascade.rs Cargo.toml

crates/session/tests/cascade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
