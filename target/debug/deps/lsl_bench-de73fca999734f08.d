/root/repo/target/debug/deps/lsl_bench-de73fca999734f08.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_bench-de73fca999734f08.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
