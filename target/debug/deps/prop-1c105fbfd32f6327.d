/root/repo/target/debug/deps/prop-1c105fbfd32f6327.d: crates/netsim/tests/prop.rs

/root/repo/target/debug/deps/prop-1c105fbfd32f6327: crates/netsim/tests/prop.rs

crates/netsim/tests/prop.rs:
