/root/repo/target/debug/deps/micro-91deb89c62a133fe.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-91deb89c62a133fe.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
