/root/repo/target/debug/deps/figures-71034ffc54ef0099.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-71034ffc54ef0099: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
