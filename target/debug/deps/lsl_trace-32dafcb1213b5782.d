/root/repo/target/debug/deps/lsl_trace-32dafcb1213b5782.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs crates/trace/src/violations.rs

/root/repo/target/debug/deps/liblsl_trace-32dafcb1213b5782.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs crates/trace/src/violations.rs

/root/repo/target/debug/deps/liblsl_trace-32dafcb1213b5782.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs crates/trace/src/violations.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
crates/trace/src/violations.rs:
