/root/repo/target/debug/deps/lsl_trace-7236646d33aad550.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_trace-7236646d33aad550.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
