/root/repo/target/debug/deps/lsl_bench-4c37af68f93fd099.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblsl_bench-4c37af68f93fd099.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblsl_bench-4c37af68f93fd099.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
