/root/repo/target/debug/deps/lsl_nws-a1f99ee202e40dd0.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_nws-a1f99ee202e40dd0.rmeta: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs Cargo.toml

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/registry.rs:
crates/nws/src/series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
