/root/repo/target/debug/deps/invariants-1e269e98b897a6db.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-1e269e98b897a6db: tests/invariants.rs

tests/invariants.rs:
