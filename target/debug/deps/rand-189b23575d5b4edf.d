/root/repo/target/debug/deps/rand-189b23575d5b4edf.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-189b23575d5b4edf: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
