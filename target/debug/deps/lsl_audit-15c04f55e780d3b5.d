/root/repo/target/debug/deps/lsl_audit-15c04f55e780d3b5.d: crates/audit/src/main.rs

/root/repo/target/debug/deps/lsl_audit-15c04f55e780d3b5: crates/audit/src/main.rs

crates/audit/src/main.rs:
