/root/repo/target/debug/deps/rand-c85c23bb013cdc3d.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c85c23bb013cdc3d.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c85c23bb013cdc3d.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
