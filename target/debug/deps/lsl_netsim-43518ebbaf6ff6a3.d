/root/repo/target/debug/deps/lsl_netsim-43518ebbaf6ff6a3.d: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

/root/repo/target/debug/deps/lsl_netsim-43518ebbaf6ff6a3: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs

crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topo.rs:
