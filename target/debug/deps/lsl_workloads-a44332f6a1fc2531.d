/root/repo/target/debug/deps/lsl_workloads-a44332f6a1fc2531.d: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_workloads-a44332f6a1fc2531.rmeta: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/paths.rs:
crates/workloads/src/report.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
