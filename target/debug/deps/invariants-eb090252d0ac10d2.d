/root/repo/target/debug/deps/invariants-eb090252d0ac10d2.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-eb090252d0ac10d2.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
