/root/repo/target/debug/deps/tcp_behavior-754d03b400201c3d.d: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs

/root/repo/target/debug/deps/tcp_behavior-754d03b400201c3d: crates/tcp/tests/tcp_behavior.rs crates/tcp/tests/common/mod.rs

crates/tcp/tests/tcp_behavior.rs:
crates/tcp/tests/common/mod.rs:
