/root/repo/target/debug/deps/lsl_audit-7ce882faef6b1aa9.d: crates/audit/src/main.rs

/root/repo/target/debug/deps/lsl_audit-7ce882faef6b1aa9: crates/audit/src/main.rs

crates/audit/src/main.rs:
