/root/repo/target/debug/deps/lsl_trace-eeea31c3f5b9c1c5.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

/root/repo/target/debug/deps/liblsl_trace-eeea31c3f5b9c1c5.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

/root/repo/target/debug/deps/liblsl_trace-eeea31c3f5b9c1c5.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/capture.rs crates/trace/src/export.rs crates/trace/src/series.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/capture.rs:
crates/trace/src/export.rs:
crates/trace/src/series.rs:
