/root/repo/target/debug/deps/ablations-c5a092aac029a162.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-c5a092aac029a162.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
