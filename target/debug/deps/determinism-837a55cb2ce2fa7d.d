/root/repo/target/debug/deps/determinism-837a55cb2ce2fa7d.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-837a55cb2ce2fa7d.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
