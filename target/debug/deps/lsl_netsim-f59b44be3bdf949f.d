/root/repo/target/debug/deps/lsl_netsim-f59b44be3bdf949f.d: crates/netsim/src/lib.rs crates/netsim/src/invariants.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_netsim-f59b44be3bdf949f.rmeta: crates/netsim/src/lib.rs crates/netsim/src/invariants.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/packet.rs crates/netsim/src/sim.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs crates/netsim/src/topo.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/invariants.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
