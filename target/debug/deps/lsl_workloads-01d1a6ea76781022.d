/root/repo/target/debug/deps/lsl_workloads-01d1a6ea76781022.d: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

/root/repo/target/debug/deps/lsl_workloads-01d1a6ea76781022: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

crates/workloads/src/lib.rs:
crates/workloads/src/paths.rs:
crates/workloads/src/report.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/sweep.rs:
