/root/repo/target/debug/deps/lsd-219e5661d8f656c1.d: crates/realnet/src/bin/lsd.rs Cargo.toml

/root/repo/target/debug/deps/liblsd-219e5661d8f656c1.rmeta: crates/realnet/src/bin/lsd.rs Cargo.toml

crates/realnet/src/bin/lsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
