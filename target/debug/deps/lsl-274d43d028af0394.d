/root/repo/target/debug/deps/lsl-274d43d028af0394.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblsl-274d43d028af0394.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
