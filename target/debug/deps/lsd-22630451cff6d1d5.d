/root/repo/target/debug/deps/lsd-22630451cff6d1d5.d: crates/realnet/src/bin/lsd.rs

/root/repo/target/debug/deps/lsd-22630451cff6d1d5: crates/realnet/src/bin/lsd.rs

crates/realnet/src/bin/lsd.rs:
