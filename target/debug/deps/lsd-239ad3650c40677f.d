/root/repo/target/debug/deps/lsd-239ad3650c40677f.d: crates/realnet/src/bin/lsd.rs Cargo.toml

/root/repo/target/debug/deps/liblsd-239ad3650c40677f.rmeta: crates/realnet/src/bin/lsd.rs Cargo.toml

crates/realnet/src/bin/lsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
