/root/repo/target/debug/deps/lsl_workloads-5d03d075c57b43be.d: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

/root/repo/target/debug/deps/liblsl_workloads-5d03d075c57b43be.rlib: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

/root/repo/target/debug/deps/liblsl_workloads-5d03d075c57b43be.rmeta: crates/workloads/src/lib.rs crates/workloads/src/paths.rs crates/workloads/src/report.rs crates/workloads/src/runner.rs crates/workloads/src/sweep.rs

crates/workloads/src/lib.rs:
crates/workloads/src/paths.rs:
crates/workloads/src/report.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/sweep.rs:
