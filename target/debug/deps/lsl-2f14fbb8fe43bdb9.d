/root/repo/target/debug/deps/lsl-2f14fbb8fe43bdb9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblsl-2f14fbb8fe43bdb9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
