/root/repo/target/debug/deps/prop-338a3fd612d5b5df.d: crates/trace/tests/prop.rs

/root/repo/target/debug/deps/prop-338a3fd612d5b5df: crates/trace/tests/prop.rs

crates/trace/tests/prop.rs:
