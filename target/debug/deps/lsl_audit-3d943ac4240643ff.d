/root/repo/target/debug/deps/lsl_audit-3d943ac4240643ff.d: crates/audit/src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_audit-3d943ac4240643ff.rmeta: crates/audit/src/main.rs Cargo.toml

crates/audit/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
