/root/repo/target/debug/deps/lsl_audit-08e380a9c02ba29c.d: crates/audit/src/lib.rs crates/audit/src/allowlist.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs crates/audit/src/manifest.rs Cargo.toml

/root/repo/target/debug/deps/liblsl_audit-08e380a9c02ba29c.rmeta: crates/audit/src/lib.rs crates/audit/src/allowlist.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs crates/audit/src/manifest.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/allowlist.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
crates/audit/src/manifest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
