/root/repo/target/debug/deps/audit-e83b25b61fedb206.d: tests/audit.rs

/root/repo/target/debug/deps/audit-e83b25b61fedb206: tests/audit.rs

tests/audit.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
