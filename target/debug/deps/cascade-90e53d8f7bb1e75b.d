/root/repo/target/debug/deps/cascade-90e53d8f7bb1e75b.d: crates/session/tests/cascade.rs

/root/repo/target/debug/deps/cascade-90e53d8f7bb1e75b: crates/session/tests/cascade.rs

crates/session/tests/cascade.rs:
