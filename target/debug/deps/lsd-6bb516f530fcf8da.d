/root/repo/target/debug/deps/lsd-6bb516f530fcf8da.d: crates/realnet/src/bin/lsd.rs Cargo.toml

/root/repo/target/debug/deps/liblsd-6bb516f530fcf8da.rmeta: crates/realnet/src/bin/lsd.rs Cargo.toml

crates/realnet/src/bin/lsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
