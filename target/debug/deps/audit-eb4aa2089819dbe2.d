/root/repo/target/debug/deps/audit-eb4aa2089819dbe2.d: tests/audit.rs

/root/repo/target/debug/deps/audit-eb4aa2089819dbe2: tests/audit.rs

tests/audit.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
