/root/repo/target/debug/deps/invariants-2fb5f8cc221a322a.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-2fb5f8cc221a322a.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
