/root/repo/target/debug/deps/figures-6e8d52da6f29767c.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-6e8d52da6f29767c.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
