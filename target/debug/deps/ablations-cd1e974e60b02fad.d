/root/repo/target/debug/deps/ablations-cd1e974e60b02fad.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-cd1e974e60b02fad.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
