/root/repo/target/debug/deps/lsd-c99b74f4184f1cf3.d: crates/realnet/src/bin/lsd.rs Cargo.toml

/root/repo/target/debug/deps/liblsd-c99b74f4184f1cf3.rmeta: crates/realnet/src/bin/lsd.rs Cargo.toml

crates/realnet/src/bin/lsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
