/root/repo/target/debug/deps/lsl_digest-b71e442ebacbaf7b.d: crates/digest/src/lib.rs crates/digest/src/md5.rs

/root/repo/target/debug/deps/liblsl_digest-b71e442ebacbaf7b.rlib: crates/digest/src/lib.rs crates/digest/src/md5.rs

/root/repo/target/debug/deps/liblsl_digest-b71e442ebacbaf7b.rmeta: crates/digest/src/lib.rs crates/digest/src/md5.rs

crates/digest/src/lib.rs:
crates/digest/src/md5.rs:
