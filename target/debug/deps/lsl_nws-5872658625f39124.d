/root/repo/target/debug/deps/lsl_nws-5872658625f39124.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

/root/repo/target/debug/deps/liblsl_nws-5872658625f39124.rlib: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

/root/repo/target/debug/deps/liblsl_nws-5872658625f39124.rmeta: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/registry.rs crates/nws/src/series.rs

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/registry.rs:
crates/nws/src/series.rs:
