/root/repo/target/debug/deps/determinism-a7435bd06ccc95d9.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-a7435bd06ccc95d9: tests/determinism.rs

tests/determinism.rs:
