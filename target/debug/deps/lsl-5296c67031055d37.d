/root/repo/target/debug/deps/lsl-5296c67031055d37.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblsl-5296c67031055d37.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
