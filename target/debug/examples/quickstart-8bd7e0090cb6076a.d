/root/repo/target/debug/examples/quickstart-8bd7e0090cb6076a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8bd7e0090cb6076a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
