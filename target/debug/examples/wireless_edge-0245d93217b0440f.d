/root/repo/target/debug/examples/wireless_edge-0245d93217b0440f.d: examples/wireless_edge.rs Cargo.toml

/root/repo/target/debug/examples/libwireless_edge-0245d93217b0440f.rmeta: examples/wireless_edge.rs Cargo.toml

examples/wireless_edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
