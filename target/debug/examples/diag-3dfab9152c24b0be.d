/root/repo/target/debug/examples/diag-3dfab9152c24b0be.d: examples/diag.rs Cargo.toml

/root/repo/target/debug/examples/libdiag-3dfab9152c24b0be.rmeta: examples/diag.rs Cargo.toml

examples/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
