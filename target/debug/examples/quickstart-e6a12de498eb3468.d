/root/repo/target/debug/examples/quickstart-e6a12de498eb3468.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e6a12de498eb3468.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
