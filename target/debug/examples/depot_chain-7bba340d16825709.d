/root/repo/target/debug/examples/depot_chain-7bba340d16825709.d: examples/depot_chain.rs

/root/repo/target/debug/examples/depot_chain-7bba340d16825709: examples/depot_chain.rs

examples/depot_chain.rs:
