/root/repo/target/debug/examples/depot_chain-d1468df4e97078ce.d: examples/depot_chain.rs Cargo.toml

/root/repo/target/debug/examples/libdepot_chain-d1468df4e97078ce.rmeta: examples/depot_chain.rs Cargo.toml

examples/depot_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
