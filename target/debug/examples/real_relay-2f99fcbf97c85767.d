/root/repo/target/debug/examples/real_relay-2f99fcbf97c85767.d: examples/real_relay.rs Cargo.toml

/root/repo/target/debug/examples/libreal_relay-2f99fcbf97c85767.rmeta: examples/real_relay.rs Cargo.toml

examples/real_relay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
