/root/repo/target/debug/examples/wireless_edge-b1dee2b79d04ae13.d: examples/wireless_edge.rs

/root/repo/target/debug/examples/wireless_edge-b1dee2b79d04ae13: examples/wireless_edge.rs

examples/wireless_edge.rs:
