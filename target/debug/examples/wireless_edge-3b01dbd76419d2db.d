/root/repo/target/debug/examples/wireless_edge-3b01dbd76419d2db.d: examples/wireless_edge.rs Cargo.toml

/root/repo/target/debug/examples/libwireless_edge-3b01dbd76419d2db.rmeta: examples/wireless_edge.rs Cargo.toml

examples/wireless_edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
