/root/repo/target/debug/examples/quickstart-6d203b29fabae3d1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6d203b29fabae3d1: examples/quickstart.rs

examples/quickstart.rs:
