/root/repo/target/debug/examples/grid_transfer-28c64d004dca1e29.d: examples/grid_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libgrid_transfer-28c64d004dca1e29.rmeta: examples/grid_transfer.rs Cargo.toml

examples/grid_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
