/root/repo/target/debug/examples/quickstart-4027dd6f03223cd6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4027dd6f03223cd6: examples/quickstart.rs

examples/quickstart.rs:
