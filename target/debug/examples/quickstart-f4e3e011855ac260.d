/root/repo/target/debug/examples/quickstart-f4e3e011855ac260.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f4e3e011855ac260: examples/quickstart.rs

examples/quickstart.rs:
