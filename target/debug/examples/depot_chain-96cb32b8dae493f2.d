/root/repo/target/debug/examples/depot_chain-96cb32b8dae493f2.d: examples/depot_chain.rs Cargo.toml

/root/repo/target/debug/examples/libdepot_chain-96cb32b8dae493f2.rmeta: examples/depot_chain.rs Cargo.toml

examples/depot_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
