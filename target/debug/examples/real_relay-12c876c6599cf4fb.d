/root/repo/target/debug/examples/real_relay-12c876c6599cf4fb.d: examples/real_relay.rs

/root/repo/target/debug/examples/real_relay-12c876c6599cf4fb: examples/real_relay.rs

examples/real_relay.rs:
