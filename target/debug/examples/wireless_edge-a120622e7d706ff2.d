/root/repo/target/debug/examples/wireless_edge-a120622e7d706ff2.d: examples/wireless_edge.rs

/root/repo/target/debug/examples/wireless_edge-a120622e7d706ff2: examples/wireless_edge.rs

examples/wireless_edge.rs:
