/root/repo/target/debug/examples/depot_chain-877858e9dd923382.d: examples/depot_chain.rs

/root/repo/target/debug/examples/depot_chain-877858e9dd923382: examples/depot_chain.rs

examples/depot_chain.rs:
