/root/repo/target/debug/examples/grid_transfer-1fe70c8a160ede23.d: examples/grid_transfer.rs

/root/repo/target/debug/examples/grid_transfer-1fe70c8a160ede23: examples/grid_transfer.rs

examples/grid_transfer.rs:
