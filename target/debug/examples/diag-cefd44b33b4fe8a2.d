/root/repo/target/debug/examples/diag-cefd44b33b4fe8a2.d: examples/diag.rs

/root/repo/target/debug/examples/diag-cefd44b33b4fe8a2: examples/diag.rs

examples/diag.rs:
