/root/repo/target/debug/examples/diag-ef2af60a6dc0d288.d: examples/diag.rs

/root/repo/target/debug/examples/diag-ef2af60a6dc0d288: examples/diag.rs

examples/diag.rs:
