/root/repo/target/debug/examples/real_relay-867c555c54ddd7a6.d: examples/real_relay.rs

/root/repo/target/debug/examples/real_relay-867c555c54ddd7a6: examples/real_relay.rs

examples/real_relay.rs:
