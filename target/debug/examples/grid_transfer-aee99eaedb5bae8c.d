/root/repo/target/debug/examples/grid_transfer-aee99eaedb5bae8c.d: examples/grid_transfer.rs

/root/repo/target/debug/examples/grid_transfer-aee99eaedb5bae8c: examples/grid_transfer.rs

examples/grid_transfer.rs:
