/root/repo/target/debug/examples/grid_transfer-22957decf6a0ddc4.d: examples/grid_transfer.rs

/root/repo/target/debug/examples/grid_transfer-22957decf6a0ddc4: examples/grid_transfer.rs

examples/grid_transfer.rs:
