/root/repo/target/debug/examples/grid_transfer-817cb179246ef215.d: examples/grid_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libgrid_transfer-817cb179246ef215.rmeta: examples/grid_transfer.rs Cargo.toml

examples/grid_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
