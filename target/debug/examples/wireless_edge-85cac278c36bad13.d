/root/repo/target/debug/examples/wireless_edge-85cac278c36bad13.d: examples/wireless_edge.rs

/root/repo/target/debug/examples/wireless_edge-85cac278c36bad13: examples/wireless_edge.rs

examples/wireless_edge.rs:
