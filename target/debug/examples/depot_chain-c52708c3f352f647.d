/root/repo/target/debug/examples/depot_chain-c52708c3f352f647.d: examples/depot_chain.rs

/root/repo/target/debug/examples/depot_chain-c52708c3f352f647: examples/depot_chain.rs

examples/depot_chain.rs:
