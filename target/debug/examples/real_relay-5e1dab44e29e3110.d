/root/repo/target/debug/examples/real_relay-5e1dab44e29e3110.d: examples/real_relay.rs

/root/repo/target/debug/examples/real_relay-5e1dab44e29e3110: examples/real_relay.rs

examples/real_relay.rs:
