/root/repo/target/debug/examples/diag-fa0fe66cdc24c87a.d: examples/diag.rs Cargo.toml

/root/repo/target/debug/examples/libdiag-fa0fe66cdc24c87a.rmeta: examples/diag.rs Cargo.toml

examples/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
