/root/repo/target/debug/examples/real_relay-dae9335b0bdd25b4.d: examples/real_relay.rs Cargo.toml

/root/repo/target/debug/examples/libreal_relay-dae9335b0bdd25b4.rmeta: examples/real_relay.rs Cargo.toml

examples/real_relay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
