#!/usr/bin/env bash
# Workspace CI gate. Run from the repository root: scripts/ci.sh
#
# Order is cheapest-first so style failures surface before long test
# runs: formatting, lints, the determinism audit (lsl-audit), the plain
# test suite, and finally the suite again with the runtime invariant
# auditor live.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lsl-audit (static determinism linter)"
cargo run -q -p lsl-audit

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> cargo test --features invariants (runtime invariant auditor)"
cargo test -q --features invariants

echo "CI: all gates passed"
