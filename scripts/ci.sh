#!/usr/bin/env bash
# Workspace CI gate. Run from the repository root: scripts/ci.sh
#
# Order is cheapest-first so style failures surface before long test
# runs: formatting, lints, the determinism audit (lsl-audit), the plain
# test suite, and finally the suite again with the runtime invariant
# auditor live.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lsl-audit (static determinism analyzer, SARIF artifact)"
# The analyzer must (a) pass clean, (b) emit a well-formed SARIF
# artifact for CI annotation, and (c) stay fast enough to run on every
# push: the analysis itself (release binary, build cost excluded) has a
# 10-second budget over the whole workspace.
cargo build -q --release -p lsl-audit
mkdir -p target/audit
audit_start=$SECONDS
target/release/lsl-audit --format sarif > target/audit/lsl-audit.sarif \
  || { echo "lsl-audit found violations:"; target/release/lsl-audit || true; exit 1; }
audit_elapsed=$(( SECONDS - audit_start ))
if [ "$audit_elapsed" -gt 10 ]; then
  echo "lsl-audit took ${audit_elapsed}s (budget: 10s)"; exit 1
fi
grep -q '"version": "2.1.0"' target/audit/lsl-audit.sarif \
  || { echo "SARIF artifact missing version"; exit 1; }
grep -q '"name": "lsl-audit"' target/audit/lsl-audit.sarif \
  || { echo "SARIF artifact missing tool driver"; exit 1; }
grep -q '"id": "nondet-taint"' target/audit/lsl-audit.sarif \
  || { echo "SARIF artifact missing rule table"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json, sys; json.load(open(sys.argv[1]))" target/audit/lsl-audit.sarif \
    || { echo "SARIF artifact is not valid JSON"; exit 1; }
fi

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> cargo test --features invariants (runtime invariant auditor)"
cargo test -q --features invariants

echo "==> fault campaign smoke (1 depot crash + 1 link flap)"
# End-to-end proof that fault injection, typed session errors, and the
# recovery layer still compose: a depot crash must fail over and verify
# the digest; an access-link flap must be survived by reconnect backoff.
cargo run -q -p lsl-bench --bin faults -- --smoke

echo "==> chaos-storm smoke (8 storm seeds, per-run contract)"
# Seeded random fault storms against the failover topology; every run
# must terminate, end in verified delivery or a typed SessionError,
# never re-send a verified block, and leave the invariant registry
# clean. A violation shrinks to a minimal drill and fails the gate.
cargo run -q -p lsl-bench --bin chaos -- --smoke

echo "==> striped-session smoke (8 storm seeds + targeted kill, zero verified re-sends)"
# RAIL-style striped sessions on the three-depot topology: every seed's
# storm includes a targeted permanent depot kill mid-transfer. Each run
# must satisfy the striped contract — terminate, certify every block on
# Done, keep the sink's stripe_regrants counter at zero (no verified
# block ever re-sent) — and striping must beat the single cascade on
# the calm comparison seed. Release build: 64-seed full runs reuse it.
cargo run -q -p lsl-bench --release --bin striped -- --smoke
[ -s results/striped_outcomes.dat ] \
  || { echo "results/striped_outcomes.dat missing or empty"; exit 1; }
for col in duration_s certified_blocks stolen_blocks regrants; do
  grep -q "$col" results/striped_outcomes.dat \
    || { echo "striped_outcomes.dat missing column: $col"; exit 1; }
done

echo "==> forecast-routing smoke (8 storm seeds, forecast vs static)"
# The closed NWS loop: each seed's storm runs with blind next-in-list
# recovery and again with forecast-driven selection + proactive
# re-routing. Both must satisfy the chaos contract, fingerprints must be
# byte-identical across job counts, and the forecast arm must complete
# at least as many transfers at least as fast (in aggregate).
cargo run -q -p lsl-bench --bin routing -- --smoke
[ -s results/routing_outcomes.dat ] \
  || { echo "results/routing_outcomes.dat missing or empty"; exit 1; }
for col in static_duration_s forecast_duration_s forecast_reroutes; do
  grep -q "$col" results/routing_outcomes.dat \
    || { echo "routing_outcomes.dat missing column: $col"; exit 1; }
done

echo "==> observability smoke (telemetry determinism, trace shape, idle overhead)"
# The obs-report gate replays a chaos seed twice (telemetry must be
# byte-identical), validates the exported Chrome trace (schema version,
# parseable events, per-pid monotone ts), and measures the netsim event
# rate with recording compiled in but idle — it must stay within 3% of
# the committed BENCH_netsim.json figure.
cargo run -q --release -p lsl-bench --bin obs-report -- --smoke

echo "==> perfetto trace artifact (seed 3 timeline under results/obs/)"
# Full artifact path: flight-recorder summary + trace.json + spans +
# metrics for one stormy seed, then validate the written file's shape
# (same validator the smoke gate uses, applied to the on-disk artifact).
cargo run -q --release -p lsl-bench --bin obs-report -- --seed 3
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json, sys; json.load(open(sys.argv[1]))" results/obs/chaos_seed3.trace.json \
    || { echo "results/obs/chaos_seed3.trace.json is not valid JSON"; exit 1; }
fi
grep -q '"schemaVersion": 1' results/obs/chaos_seed3.trace.json \
  || { echo "trace artifact missing schemaVersion"; exit 1; }

echo "==> bench smoke (BENCH_netsim.json shape)"
# BENCH_OUT keeps the smoke run from clobbering the committed
# full-measurement BENCH_netsim.json at the repo root.
# Absolute: cargo runs the bench with CWD = crates/bench.
smoke_json="$PWD/target/BENCH_netsim.smoke.json"
BENCH_SMOKE=1 BENCH_OUT="$smoke_json" cargo bench -q -p lsl-bench --bench micro
for key in netsim_events_per_sec netsim_timer_events_per_sec \
           run_wall_s_1mb_direct run_wall_s_1mb_depot \
           campaign_jobs campaign_wall_s_jobs1 campaign_wall_s_jobsN baseline; do
  grep -q "\"$key\"" "$smoke_json" \
    || { echo "$smoke_json missing key: $key"; exit 1; }
done
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$smoke_json" \
    || { echo "$smoke_json is not valid JSON"; exit 1; }
fi

echo "==> bench regression gate (smoke rate vs committed BENCH_netsim.json)"
# The smoke run uses a tiny event budget, so its rates sit well below a
# full measurement (observed ~75-100% of committed on a quiet machine).
# The gate is deliberately generous — smoke must reach 50% of the
# committed figure — so it only trips on structural regressions (an
# accidental O(n) scan, a lost fast path), never on machine noise.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_json" BENCH_netsim.json <<'PY'
import json, sys
smoke, committed = (json.load(open(p)) for p in sys.argv[1:3])
ok = True
for key in ("netsim_events_per_sec", "netsim_timer_events_per_sec"):
    got, want = smoke[key], committed[key]
    if got < 0.5 * want:
        print(f"regression: smoke {key} = {got:.0f} < 50% of committed {want:.0f}")
        ok = False
    else:
        print(f"  {key}: smoke {got:.0f} vs committed {want:.0f} (ok)")
sys.exit(0 if ok else 1)
PY
fi

echo "==> scale bench smoke (BENCH_scale.json shape)"
# Same pattern as the micro smoke: a budget-limited run into target/,
# shape-checked against the keys the committed curve carries. The
# committed BENCH_scale.json is validated too, so a hand-edit that
# breaks its shape fails CI even without re-running the full bench.
scale_smoke_json="$PWD/target/BENCH_scale.smoke.json"
BENCH_SMOKE=1 BENCH_SCALE_OUT="$scale_smoke_json" cargo bench -q -p lsl-bench --bench scale
for f in "$scale_smoke_json" BENCH_scale.json; do
  for key in timer_curve session_curve baseline armed sessions events_per_sec \
             striped sessions_per_sec single_cascade_sessions_per_sec; do
    grep -q "\"$key\"" "$f" || { echo "$f missing key: $key"; exit 1; }
  done
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$f" \
      || { echo "$f is not valid JSON"; exit 1; }
  fi
done

echo "CI: all gates passed"
