//! End-to-end audit of the runtime invariant checks: run full transfers
//! through every layer (netsim links, TCP sockets, LSL depots) with the
//! auditor live and require a clean registry. Compiled only under
//! `--features invariants` (scripts/ci.sh runs it).
#![cfg(feature = "invariants")]

use lsl_netsim::invariants;
use lsl_workloads::{
    case1, case3, run_access_flap, run_all_depots_down, run_depot_crash, run_sublink_rst,
    run_transfer, Mode, RunConfig,
};

#[test]
fn transfers_run_clean_under_the_invariant_auditor() {
    let _ = invariants::take(); // isolate from anything earlier on this thread
    for case in [case1(), case3()] {
        for mode in [Mode::Direct, Mode::ViaDepot] {
            let res = run_transfer(&case, &RunConfig::builder(2 << 20, mode).seed(7).build());
            assert!(res.goodput_bps > 0.0);
            let v = invariants::take();
            assert!(
                v.is_empty(),
                "case {:?} mode {mode:?}:\n{}",
                case.name,
                lsl_trace::violations::report(&v)
            );
        }
    }
}

#[test]
fn fault_scenarios_run_clean_under_the_invariant_auditor() {
    // Crashes, flaps, and resets stress exactly the teardown paths the
    // structural checks guard (queue flushes, socket aborts, relay
    // cleanup) — recovery must not leave the registry dirty.
    let _ = invariants::take();
    for (name, run) in [
        ("depot-crash", run_depot_crash as fn(u64) -> _),
        ("all-depots-down", run_all_depots_down),
        ("access-flap", run_access_flap),
        ("sublink-rst", run_sublink_rst),
    ] {
        let r: lsl_workloads::FaultRunResult = run(7);
        assert!(r.completed(), "{name}: {:?}", r.state);
        let v = invariants::take();
        assert!(
            v.is_empty(),
            "scenario {name}:\n{}",
            lsl_trace::violations::report(&v)
        );
    }
}

#[test]
fn seeded_violation_surfaces_in_the_report() {
    let _ = invariants::take();
    invariants::record(
        lsl_netsim::Time(1_500_000),
        "tcp::socket",
        "seq-space-order",
        "snd_una 9 / snd_nxt 3 / snd_max 12 out of order".to_string(),
    );
    let v = invariants::take();
    let report = lsl_trace::violations::report(&v);
    assert!(report.starts_with("invariant violations: 1\n"), "{report}");
    assert!(report.contains("tcp::socket/seq-space-order"), "{report}");
}
