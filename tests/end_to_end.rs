//! Workspace-level integration tests: the paper's claims, end to end.

use lsl::session::model::{CascadeModel, TcpPathModel};
use lsl::trace;
use lsl::workloads::sweep::sweep_sizes;
use lsl::workloads::{case1, case2, case3, case4, run_transfer, Mode, RunConfig};

/// The central claim (Fig 6): on the calibrated UCSB→UIUC path, LSL
/// clearly outperforms direct TCP for multi-megabyte transfers.
#[test]
fn lsl_effect_case1_large_transfers() {
    let case = case1();
    let iters = 4;
    let size = 8u64 << 20;
    let d = sweep_sizes(&case, &[size], Mode::Direct, iters, 42);
    let l = sweep_sizes(&case, &[size], Mode::ViaDepot, iters, 42);
    let gain = l[0].mean_bps / d[0].mean_bps - 1.0;
    assert!(
        gain > 0.15,
        "expected a clear LSL win at 8MB, got {:+.1}% ({:.2} vs {:.2} Mbit/s)",
        gain * 100.0,
        l[0].mean_bps / 1e6,
        d[0].mean_bps / 1e6
    );
}

/// Fig 5's left edge: at 32 KB the session setup dominates and LSL loses.
#[test]
fn lsl_penalty_case1_tiny_transfers() {
    let case = case1();
    let iters = 4;
    let d = sweep_sizes(&case, &[32 << 10], Mode::Direct, iters, 84);
    let l = sweep_sizes(&case, &[32 << 10], Mode::ViaDepot, iters, 84);
    assert!(
        l[0].mean_bps < d[0].mean_bps,
        "LSL should lose at 32KB: {:.2} vs {:.2} Mbit/s",
        l[0].mean_bps / 1e6,
        d[0].mean_bps / 1e6
    );
}

/// Fig 3's RTT structure: measured from traces, the sublink RTT sum
/// exceeds the direct RTT by a few ms, with each sublink roughly half.
#[test]
fn case1_trace_rtts_match_paper_shape() {
    let case = case1();
    let lsl = run_transfer(
        &case,
        &RunConfig::builder(2 << 20, Mode::ViaDepot)
            .seed(5)
            .trace()
            .build(),
    );
    let direct = run_transfer(
        &case,
        &RunConfig::builder(2 << 20, Mode::Direct)
            .seed(5)
            .trace()
            .build(),
    );
    let s1 = trace::mean_rtt(lsl.trace_first.as_ref().unwrap()).unwrap() * 1e3;
    let s2 = trace::mean_rtt(lsl.trace_second.as_ref().unwrap()).unwrap() * 1e3;
    let e2e = trace::mean_rtt(direct.trace_first.as_ref().unwrap()).unwrap() * 1e3;
    assert!((20.0..45.0).contains(&s1), "sublink1 {s1} ms");
    assert!((20.0..45.0).contains(&s2), "sublink2 {s2} ms");
    assert!((48.0..70.0).contains(&e2e), "direct {e2e} ms");
    let overhead = s1 + s2 - e2e;
    assert!(
        (0.0..15.0).contains(&overhead),
        "cascade detour overhead {overhead} ms"
    );
}

/// Fig 10's wireless case: LSL still wins, but modestly, because the
/// wired sublink is the bottleneck.
#[test]
fn wireless_case3_modest_gain() {
    let case = case3();
    let iters = 3;
    let size = 4u64 << 20;
    let d = sweep_sizes(&case, &[size], Mode::Direct, iters, 21);
    let l = sweep_sizes(&case, &[size], Mode::ViaDepot, iters, 21);
    let gain = l[0].mean_bps / d[0].mean_bps - 1.0;
    assert!(
        gain > 0.0,
        "wireless LSL should still win: {:+.1}%",
        gain * 100.0
    );
    assert!(
        gain < 0.8,
        "wireless gain should be modest (bottleneck sublink): {:+.1}%",
        gain * 100.0
    );
}

/// Case 2 completes and wins at large sizes (Fig 8's right side).
#[test]
fn case2_large_transfer_gain() {
    let case = case2();
    let iters = 3;
    let d = sweep_sizes(&case, &[8 << 20], Mode::Direct, iters, 63);
    let l = sweep_sizes(&case, &[8 << 20], Mode::ViaDepot, iters, 63);
    assert!(l[0].mean_bps > d[0].mean_bps);
}

/// Case 4 sanity: goodput grows with size (Fig 28's trend: no
/// convergence to steady state even at large sizes).
#[test]
fn case4_goodput_grows_with_size() {
    let case = case4();
    let sizes = [1u64 << 20, 4 << 20, 16 << 20];
    let pts = sweep_sizes(&case, &sizes, Mode::ViaDepot, 2, 31);
    assert!(pts[0].mean_bps < pts[1].mean_bps);
    assert!(pts[1].mean_bps < pts[2].mean_bps);
}

/// Determinism across the whole stack: identical seed ⇒ identical runs.
#[test]
fn whole_stack_determinism() {
    let case = case1();
    let cfg = RunConfig::builder(3 << 20, Mode::ViaDepot)
        .seed(123)
        .build();
    let a = run_transfer(&case, &cfg);
    let b = run_transfer(&case, &cfg);
    assert_eq!(a.duration_s, b.duration_s);
    assert_eq!(a.retransmissions, b.retransmissions);
}

/// The analytic model and the simulator agree on *direction* for both
/// regimes (model-vs-measurement cross-validation).
#[test]
fn model_and_simulation_agree_on_sign() {
    let case = case1();
    // Trace-calibrate the model inputs.
    let lsl = run_transfer(
        &case,
        &RunConfig::builder(2 << 20, Mode::ViaDepot)
            .seed(9)
            .trace()
            .build(),
    );
    let direct = run_transfer(
        &case,
        &RunConfig::builder(2 << 20, Mode::Direct)
            .seed(9)
            .trace()
            .build(),
    );
    let rtt1 = trace::mean_rtt(lsl.trace_first.as_ref().unwrap()).unwrap();
    let rtt2 = trace::mean_rtt(lsl.trace_second.as_ref().unwrap()).unwrap();
    let rtt_d = trace::mean_rtt(direct.trace_first.as_ref().unwrap()).unwrap();
    let loss = 1.8e-4;
    let m_direct = TcpPathModel::new(rtt_d, 100e6, loss);
    let m_cascade = CascadeModel::new(vec![
        TcpPathModel::new(rtt1, 100e6, loss / 2.0),
        TcpPathModel::new(rtt2, 100e6, loss / 2.0),
    ]);
    let init = 2 * 1460;

    let big = 16u64 << 20;
    let model_gain = (m_direct.handshake_time() + m_direct.transfer_time(big, init))
        / m_cascade.transfer_time(big, init);
    assert!(model_gain > 1.0, "model must predict LSL wins at 16MB");

    let small = 32u64 << 10;
    let model_small = (m_direct.handshake_time() + m_direct.transfer_time(small, init))
        / m_cascade.transfer_time(small, init);
    assert!(model_small < 1.0, "model must predict LSL loses at 32KB");
}

/// Digest integrity holds on every case.
#[test]
fn digests_verify_on_all_cases() {
    for case in [case1(), case2(), case3(), case4()] {
        let r = run_transfer(
            &case,
            &RunConfig::builder(1 << 20, Mode::ViaDepot).seed(77).build(),
        );
        assert_eq!(r.digest_ok, Some(true), "{}", case.name);
    }
}
