//! The workspace must audit clean: `cargo run -p lsl-audit` exiting 0 is
//! a CI gate (scripts/ci.sh), and this test pins the same property from
//! `cargo test` so a violation can't land through either door.

use std::path::Path;

#[test]
fn workspace_audits_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = lsl_audit::audit_workspace(root).expect("audit runs");
    assert!(
        findings.is_empty(),
        "lsl-audit found violations (fix them or justify in audit.toml):\n{}",
        findings
            .iter()
            .map(|f| format!(
                "  {}:{}:{}: [{}] {}",
                f.file,
                f.line,
                f.col,
                f.rule.name(),
                f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
