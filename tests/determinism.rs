//! Determinism regression: the same scenario under the same seed must
//! produce *byte-identical* trace output, not merely equal aggregate
//! numbers. This is the property the whole workspace is built around
//! (and the one lsl-audit's wall-clock / hash-container rules protect),
//! so it gets its own end-to-end gate.

use lsl_trace::{ConnTrace, Dir};
use lsl_workloads::{case1, case3, run_transfer, Mode, RunConfig};

/// Serialize every captured segment record to a canonical text form —
/// any nondeterminism in event ordering, loss draws, or timer handling
/// shows up as a diff here.
fn render(trace: Option<&ConnTrace>) -> String {
    let Some(trace) = trace else {
        return String::from("(no trace)\n");
    };
    let mut out = format!("trace {} ({} records)\n", trace.label, trace.len());
    for r in &trace.records {
        out.push_str(&format!(
            "{} {} seq={} ack={} len={} syn={} fin={} ack_flag={} retx={}\n",
            r.t.0,
            match r.dir {
                Dir::Tx => "tx",
                Dir::Rx => "rx",
            },
            r.seq,
            r.ack,
            r.len,
            r.flags.syn,
            r.flags.fin,
            r.flags.ack,
            r.retx
        ));
    }
    out
}

fn run_rendered(mode: Mode, seed: u64) -> String {
    let res = run_transfer(
        &case1(),
        &RunConfig::builder(1 << 20, mode).seed(seed).trace().build(),
    );
    format!(
        "duration={:.9}\ngoodput={:.6}\nretx={}\n{}{}",
        res.duration_s,
        res.goodput_bps,
        res.retransmissions,
        render(res.trace_first.as_ref()),
        render(res.trace_second.as_ref())
    )
}

#[test]
fn same_seed_yields_byte_identical_traces() {
    for mode in [Mode::Direct, Mode::ViaDepot] {
        let a = run_rendered(mode, 1234);
        let b = run_rendered(mode, 1234);
        assert!(a == b, "{mode:?} runs diverged under the same seed");
        // Sanity: the rendering actually captured packet-level activity.
        assert!(a.lines().count() > 50, "{mode:?} trace suspiciously small");
    }
}

#[test]
fn different_seeds_diverge_on_a_lossy_path() {
    // case3's wireless edge makes loss draws (and thus traces) seed-
    // dependent; identical output across seeds would mean the seed is
    // ignored somewhere.
    let run = |seed| {
        let res = run_transfer(
            &case3(),
            &RunConfig::builder(4 << 20, Mode::Direct)
                .seed(seed)
                .trace()
                .build(),
        );
        render(res.trace_first.as_ref())
    };
    assert_ne!(run(21), run(22));
}
