//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest it uses: the `proptest!` macro with
//! `name(arg in strategy, ...)` signatures, `any::<T>()`, integer/float
//! range strategies, tuple strategies, `collection::vec`, `option::of`,
//! `sample::Index`, `Just`, `Strategy::prop_map`, the (unweighted)
//! `prop_oneof!` union macro, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports the seed/case number via
//!   the panic message; re-running is deterministic, so the failure
//!   reproduces exactly.
//! - **Deterministic generation.** Cases are derived from a fixed
//!   per-test seed (FNV hash of the test name) plus the case index.
//!   There is no `PROPTEST_CASES` env or persistence file.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    ///
    /// Upstream's `Strategy` produces value *trees* for shrinking; this
    /// subset just samples concrete values.
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f` (upstream's `prop_map`,
        /// minus the shrinking machinery).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives — the expansion of
    /// [`crate::prop_oneof!`] (upstream supports per-arm weights; this
    /// subset is unweighted).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    /// `Strategy` is implemented for `&S` so macro expansion can take
    /// strategies by reference without caring about ownership.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Finite values only (uniform sign/exponent-ish via mantissa mix
        /// would produce NaNs upstream too; keep it simple and finite).
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `collection::vec(strategy, len_range)` — a vector whose length is
    /// drawn from `len_range` and whose elements come from `strategy`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::new_value(&self.len, rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `option::of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

pub mod sample {
    use crate::strategy::Arbitrary;
    use crate::test_runner::TestRng;

    /// An abstract index into a collection of as-yet-unknown size:
    /// `idx.index(len)` maps it uniformly into `0..len`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64 over a seed derived from
    /// the test name and case index).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1) with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The main entry point: a block of property-test functions.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    // One indirection so `$body`'s trailing expression (if
                    // any) is dropped and panics carry the case number.
                    let __run = || $body;
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)).is_err() {
                        panic!(
                            "property '{}' failed at deterministic case {} of {} \
                             (re-run reproduces exactly)",
                            stringify!($name), __case, __config.cases
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_oneof![a, b, c]` — draw uniformly from one of several
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// `prop_assert!` — like `assert!`, reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_len_in_bounds(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_and_options(t in (0u64..10, any::<bool>()),
                              o in crate::option::of(any::<u16>())) {
            prop_assert!(t.0 < 10);
            let _ = (t.1, o);
        }

        #[test]
        fn index_maps_in_range(i in any::<crate::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }

        #[test]
        fn oneof_map_and_just(v in prop_oneof![
            Just(0u64),
            (1u64..100).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0u64 || (v % 2u64 == 0u64 && v < 200u64));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
