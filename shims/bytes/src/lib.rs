//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small slice of the `bytes` API it uses: [`Bytes`]
//! (cheaply cloneable, zero-copy sliceable, `Arc`-backed), [`BytesMut`]
//! (a growable builder that freezes into `Bytes`), and the [`BufMut`]
//! write trait (big-endian `put_*` like upstream).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::{Arc, OnceLock};

/// The one empty backing buffer every empty `Bytes` shares: protocol
/// hot paths construct `Bytes::new()` per pure-ACK segment, so the
/// empty case must not allocate.
fn shared_empty() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Construction from a `Vec` *moves* the vec behind the `Arc` (no byte
/// copy); clones and `slice`/`split_off` views share that one
/// allocation, and no byte copying happens after construction.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer (no allocation: all empties share one `Arc`).
    pub fn new() -> Bytes {
        Bytes {
            data: shared_empty(),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static slice. (Still copies into an `Arc`; upstream's
    /// no-copy static vtable is an optimisation we don't need.)
    pub fn from_static(s: &'static [u8]) -> Bytes {
        if s.is_empty() {
            return Bytes::new();
        }
        Bytes::from(s.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this buffer.
    ///
    /// Panics if the range is out of bounds, matching upstream.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice({lo}..{hi}) out of bounds (len {})",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the tail `[at, len)`, leaving `[0, at)`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Split off and return the head `[0, at)`, leaving `[at, len)`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Moves the vec behind the `Arc` — no byte copy. (`BytesMut::
    /// freeze` routes through here, so every encoded segment costs one
    /// `Arc` allocation, not an allocation plus a full copy.)
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

/// Write-side trait: big-endian integer appends, like upstream.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable, uniquely owned byte builder.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] (single move, no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let tail = mid.slice(2..);
        assert_eq!(&tail[..], &[4]);
        let mut c = b.clone();
        let t = c.split_off(2);
        assert_eq!(&c[..], &[1, 2]);
        assert_eq!(&t[..], &[3, 4, 5]);
    }

    #[test]
    fn bytesmut_roundtrip_and_put_endianness() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090A0B0C0D0E);
        m.extend_from_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xA, 0xB, 0xC, 0xD, 0xE, b'x', b'y']
        );
    }

    #[test]
    fn equality_and_slices() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, *b"hello");
        assert_eq!(b.slice(..0).len(), 0);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_vec_moves_without_copying() {
        let v = vec![9u8; 32];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), p, "From<Vec<u8>> must not copy");
        let mut m = BytesMut::with_capacity(8);
        m.put_u32(0xDEADBEEF);
        let p = m.as_ptr();
        assert_eq!(m.freeze().as_ref().as_ptr(), p, "freeze must not copy");
    }

    #[test]
    fn empty_bytes_share_one_backing_buffer() {
        let a = Bytes::new();
        let b = Bytes::default();
        let c = Bytes::from_static(&[]);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        assert_eq!(a.as_ref().as_ptr(), c.as_ref().as_ptr());
    }
}
