//! Offline, API-compatible subset of the `rand` crate (0.9 naming).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` it actually uses:
//! `SmallRng` (here: xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, `Rng::random`, and `Rng::random_range`.
//!
//! Everything is deterministic by construction: there is no OS entropy
//! source at all, which suits the simulator's reproducibility contract
//! (see `lsl-audit`'s determinism rules). Streams are stable across
//! platforms and releases of this workspace; they do NOT match upstream
//! `rand`'s streams, which is fine because nothing in the repo depends
//! on the exact draw sequence, only on it being fixed for a fixed seed.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`], mirroring upstream `rand 0.9` naming.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, good statistical quality, and fully
    /// deterministic from a `u64` seed (expanded via SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.random_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&x));
            let n = r.random_range(10u64..20);
            assert!((10..20).contains(&n));
            let s = r.random_range(3usize..=7);
            assert!((3..=7).contains(&s));
        }
    }
}
