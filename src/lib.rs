//! # lsl — The Logistical Session Layer
//!
//! A full Rust reproduction of *"Improving Throughput with Cascaded TCP
//! Connections: the Logistical Session Layer"* (Swany & Wolski, UCSB
//! TR 2002-24; the extended version of the 2001 LSL paper).
//!
//! LSL is a session layer above TCP: a transfer is carried over a
//! cascade of TCP "sublinks" through intermediate depots (`lsd`), each
//! providing a small short-lived relay buffer. Shorter per-sublink RTTs
//! let TCP's congestion control ramp and recover faster, raising
//! end-to-end throughput by ~40% on average in the paper's experiments,
//! while an end-to-end MD5 digest restores integrity above the cascade.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`netsim`] | deterministic discrete-event packet network simulator |
//! | [`tcp`] | user-level TCP (Reno/NewReno) over the simulator |
//! | [`session`] | **the LSL itself**: header, depots, endpoints, models, path selection |
//! | [`nws`] | Network Weather Service-style forecasting |
//! | [`obs`] | deterministic observability: sim-time spans, metrics, perfetto export |
//! | [`trace`] | tcpdump-equivalent capture + the paper's analysis pipeline |
//! | [`digest`] | MD5 (RFC 1321) |
//! | [`realnet`] | LSL over real kernel TCP — the deployable `lsd` daemon |
//! | [`workloads`] | the paper's calibrated experiment cases 1–4 and runners |
//!
//! ## Quickstart
//!
//! ```
//! use lsl::workloads::{case1, run_transfer, Mode, RunConfig};
//!
//! // One 256 KB transfer on the UCSB→UIUC case, direct vs via the depot.
//! let case = case1();
//! let direct = run_transfer(&case, &RunConfig::builder(256 << 10, Mode::Direct).seed(1).build());
//! let lsl = run_transfer(&case, &RunConfig::builder(256 << 10, Mode::ViaDepot).seed(1).build());
//! assert!(direct.goodput_bps > 0.0 && lsl.goodput_bps > 0.0);
//! ```

pub use lsl_digest as digest;
pub use lsl_netsim as netsim;
pub use lsl_nws as nws;
pub use lsl_obs as obs;
pub use lsl_realnet as realnet;
pub use lsl_session as session;
pub use lsl_tcp as tcp;
pub use lsl_trace as trace;
pub use lsl_workloads as workloads;
