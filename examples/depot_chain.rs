//! Ablation: how many depots should a path have?
//!
//! Builds a long six-segment WAN (total RTT ≈ 90 ms, random loss on each
//! segment) with a potential depot at every interior POP, then measures
//! an 8 MB transfer cascading through 0–4 evenly spaced depots. More
//! depots shorten each sublink's RTT (faster ramp/recovery) but add
//! session setup and store-and-forward overhead — the trade-off the
//! paper's future-work section poses.
//!
//! ```text
//! cargo run --release --example depot_chain
//! ```

use lsl::netsim::{Dur, LinkSpec, LossModel, NodeId, Topology, TopologyBuilder};
use lsl::session::endpoint::{SendMode, SenderState};
use lsl::session::{BulkSender, Depot, DepotConfig, Hop, LslPath, SessionId, SinkServer};
use lsl::tcp::{Net, TcpConfig};

const SEGMENTS: usize = 6;
const SINK_PORT: u16 = 5001;
const DEPOT_PORT: u16 = 7001;

fn build() -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let mut nodes = vec![b.node("src")];
    for i in 1..SEGMENTS {
        nodes.push(b.node(&format!("pop{i}")));
    }
    nodes.push(b.node("dst"));
    for w in 0..SEGMENTS {
        b.duplex(
            nodes[w],
            nodes[w + 1],
            LinkSpec::new(155_000_000, Dur::from_micros(7500))
                .with_loss(LossModel::bernoulli(4e-5)),
        );
    }
    (b.build(), nodes)
}

/// Interior node indices for `n` evenly spaced depots.
fn depot_positions(n: usize) -> Vec<usize> {
    (1..=n)
        .map(|k| (k * SEGMENTS / (n + 1)).clamp(1, SEGMENTS - 1))
        .collect()
}

fn run(n_depots: usize, seed: u64) -> f64 {
    let (topo, nodes) = build();
    let mut net = Net::new(topo.into_sim(seed));
    let tcp = TcpConfig {
        time_wait: Dur::from_millis(1),
        ..TcpConfig::default()
    };
    let positions = depot_positions(n_depots);
    let mut depots: Vec<Depot> = positions
        .iter()
        .map(|&p| {
            Depot::new(
                &mut net,
                nodes[p],
                DepotConfig {
                    port: DEPOT_PORT,
                    tcp: tcp.clone(),
                    ..DepotConfig::default()
                },
            )
        })
        .collect();
    let dst = *nodes.last().unwrap();
    let mut sink = SinkServer::new(&mut net, dst, SINK_PORT, n_depots > 0, tcp.clone());
    let (path, mode) = if n_depots == 0 {
        (
            LslPath::direct(Hop::new(dst, SINK_PORT)),
            SendMode::DirectTcp,
        )
    } else {
        (
            LslPath::via(
                positions
                    .iter()
                    .map(|&p| Hop::new(nodes[p], DEPOT_PORT))
                    .collect(),
                Hop::new(dst, SINK_PORT),
            ),
            SendMode::lsl(),
        )
    };
    let size = 8u64 << 20;
    let mut sender = BulkSender::start(
        &mut net,
        nodes[0],
        &path,
        SessionId(seed as u128),
        size,
        mode,
        tcp,
        None,
        None,
    );
    let started = sender.started_at;
    while let Some(ev) = net.poll() {
        if sender.handle(&mut net, &ev).consumed() || sink.handle(&mut net, &ev).consumed() {
            continue;
        }
        for d in &mut depots {
            if d.handle(&mut net, &ev).consumed() {
                break;
            }
        }
    }
    assert_eq!(sender.state(), SenderState::Done);
    let done = sink.take_outcomes();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].bytes, size);
    size as f64 * 8.0 / (done[0].completed_at - started).as_secs_f64()
}

fn main() {
    println!("Cascade-depth ablation: 8 MB over a ~90 ms lossy WAN\n");
    println!(
        "{:>7} {:>10} {:>16} {:>10}",
        "depots", "sublinks", "goodput Mbit/s", "vs direct"
    );
    let iters = 3u64;
    let mut baseline = 0.0;
    for n in 0..=4usize {
        let mean = (0..iters).map(|i| run(n, 300 + i)).sum::<f64>() / iters as f64;
        if n == 0 {
            baseline = mean;
        }
        println!(
            "{:>7} {:>10} {:>16.2} {:>+9.1}%",
            n,
            n + 1,
            mean / 1e6,
            (mean / baseline - 1.0) * 100.0
        );
    }
    println!(
        "\nEach added depot halves-ish the per-sublink RTT (better ramp and\n\
         recovery) but adds setup and relay overhead; gains saturate and\n\
         eventually reverse — the scalability trade-off of §VII."
    );
}
