//! Real kernel-TCP LSL on loopback: live `lsd` depots, a real cascade.
//!
//! Spawns two depot daemons, streams 8 MB through
//! client → lsd#1 → lsd#2 → sink over real sockets, and verifies the
//! end-to-end MD5 digest.
//!
//! ```text
//! cargo run --release --example real_relay
//! ```

use std::io::Write;
use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::time::Instant;

use lsl::realnet::{LsdServer, LslListener, LslStream};
use lsl::session::SessionId;

const SIZE: usize = 8 << 20;

fn main() {
    // Two depots and the sink, all on loopback ephemeral ports.
    let d1 = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).expect("spawn lsd #1");
    let d2 = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).expect("spawn lsd #2");
    let sink = LslListener::bind((Ipv4Addr::LOCALHOST, 0).into()).expect("bind sink");
    let sink_addr = sink.local_addr().unwrap();
    println!("lsd #1 on {}", d1.addr());
    println!("lsd #2 on {}", d2.addr());
    println!("sink   on {sink_addr}\n");

    let route = vec![d1.addr(), d2.addr()];
    let sender = std::thread::spawn(move || {
        let payload: Vec<u8> = (0..SIZE).map(|i| ((i * 131 + 7) % 251) as u8).collect();
        let start = Instant::now();
        let mut s = LslStream::connect(
            SessionId(0x1517_2001),
            &route,
            sink_addr,
            SIZE as u64,
            true, // MD5 digest
            true, // synchronous session establishment
        )
        .expect("session connect");
        s.write_all(&payload).expect("stream payload");
        s.finish().expect("finish session");
        start.elapsed()
    });

    let session = sink.accept().expect("accept session");
    println!(
        "sink: accepted session {} announcing {} bytes",
        session.session(),
        session.announced_length()
    );
    let (payload, digest_ok) = session.read_all().expect("read stream");
    let elapsed = sender.join().expect("sender thread");

    println!("sink: received {} bytes", payload.len());
    println!("sink: MD5 digest verified: {}", digest_ok == Some(true));
    println!(
        "depots relayed {} + {} bytes over {} sessions",
        d1.counters().bytes_relayed.load(Ordering::Relaxed),
        d2.counters().bytes_relayed.load(Ordering::Relaxed),
        d1.counters().sessions.load(Ordering::Relaxed)
            + d2.counters().sessions.load(Ordering::Relaxed),
    );
    println!(
        "throughput through the 3-sublink cascade: {:.1} Mbit/s ({:.3}s wall)",
        SIZE as f64 * 8.0 / elapsed.as_secs_f64() / 1e6,
        elapsed.as_secs_f64()
    );

    assert_eq!(payload.len(), SIZE);
    assert_eq!(digest_ok, Some(true));
    d1.shutdown();
    d2.shutdown();
    println!("\nAll depots shut down cleanly.");
}
