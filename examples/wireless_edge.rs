//! Wireless edge scenario (the paper's case 3, Figs 9–10, 27).
//!
//! A mobile node at UCSB sits behind an 802.11b hop with bursty loss;
//! the far end is UTK, ~100 ms away. The depot is placed at the campus
//! wired/wireless boundary — modelling "a wireless provider with
//! infrastructure willing to gateway LSL into TCP for users". LSL lets
//! wireless fades be recovered over the ~4 ms wireless sublink instead
//! of the full 100 ms path.
//!
//! ```text
//! cargo run --release --example wireless_edge
//! ```

use lsl::trace;
use lsl::workloads::{case3, run_transfer, Mode, RunConfig};

fn main() {
    let case = case3();
    println!("Wireless edge — {} (802.11b last hop)\n", case.name);

    // RTT decomposition, as in the paper's Fig 9.
    let traced = run_transfer(
        &case,
        &RunConfig::builder(4 << 20, Mode::ViaDepot)
            .seed(7)
            .trace()
            .build(),
    );
    let direct_traced = run_transfer(
        &case,
        &RunConfig::builder(4 << 20, Mode::Direct)
            .seed(7)
            .trace()
            .build(),
    );
    let rtt_ms = |t: &Option<trace::ConnTrace>| {
        t.as_ref()
            .and_then(trace::mean_rtt)
            .map_or(f64::NAN, |r| r * 1e3)
    };
    println!("Average observed TCP RTT (cf. Fig 9):");
    println!(
        "  sublink1 (wired UTK→edge): {:7.1} ms",
        rtt_ms(&traced.trace_first)
    );
    println!(
        "  sublink2 (wireless edge):  {:7.1} ms",
        rtt_ms(&traced.trace_second)
    );
    println!(
        "  direct end-to-end:         {:7.1} ms\n",
        rtt_ms(&direct_traced.trace_first)
    );

    // Bandwidth at growing sizes, as in Fig 10.
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "size", "direct (Mbit/s)", "LSL (Mbit/s)", "gain"
    );
    let iters = 3u64;
    let mut gains = Vec::new();
    for &size in &[1u64 << 20, 4 << 20, 16 << 20] {
        let mean = |mode| -> f64 {
            (0..iters)
                .map(|i| {
                    run_transfer(&case, &RunConfig::builder(size, mode).seed(40 + i).build())
                        .goodput_bps
                })
                .sum::<f64>()
                / iters as f64
        };
        let d = mean(Mode::Direct);
        let l = mean(Mode::ViaDepot);
        gains.push((l / d - 1.0) * 100.0);
        println!(
            "{:>7}M {:>16.2} {:>16.2} {:>+7.1}%",
            size >> 20,
            d / 1e6,
            l / 1e6,
            gains.last().unwrap()
        );
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!(
        "\nAverage LSL gain: {avg:+.1}% (the paper reports +13% for this case —\n\
         modest because the *wired* sublink is the bottleneck here, Fig 27)."
    );
}
