//! Quickstart: the LSL effect in one minute.
//!
//! Runs the paper's case 1 (UCSB → UIUC with a depot at the Denver POP)
//! at a few transfer sizes, comparing direct TCP against an LSL cascade
//! through the depot, and prints the throughput table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsl::workloads::{case1, run_transfer, Mode, RunConfig};

fn main() {
    let case = case1();
    println!("Logistical Session Layer quickstart — {}", case.name);
    println!("(simulated Abilene path; depot at the Denver POP)\n");
    println!(
        "{:>10} {:>16} {:>16} {:>8}",
        "size", "direct (Mbit/s)", "LSL (Mbit/s)", "gain"
    );

    for &size in &[64u64 << 10, 1 << 20, 8 << 20, 32 << 20] {
        let iters = 3u64;
        let mean = |mode| -> f64 {
            (0..iters)
                .map(|i| {
                    run_transfer(&case, &RunConfig::builder(size, mode).seed(100 + i).build())
                        .goodput_bps
                })
                .sum::<f64>()
                / iters as f64
        };
        let d = mean(Mode::Direct);
        let l = mean(Mode::ViaDepot);
        println!(
            "{:>9}B {:>16.2} {:>16.2} {:>+7.1}%",
            if size >= 1 << 20 {
                format!("{}M", size >> 20)
            } else {
                format!("{}K", size >> 10)
            },
            d / 1e6,
            l / 1e6,
            (l / d - 1.0) * 100.0
        );
    }

    println!(
        "\nSmall transfers pay LSL's session-setup cost; large transfers\n\
         gain from faster congestion-window growth and recovery on the\n\
         shorter-RTT sublinks (the paper's Figs 5–6)."
    );
}
