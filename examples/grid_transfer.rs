//! Grid-computing scenario: NWS-forecast-driven path selection.
//!
//! A Grid application must move result files from UCSB to UIUC and asks
//! the session layer to pick the best path. We (1) probe the direct path
//! and both depot sublinks with small measured transfers, (2) feed the
//! observations into the NWS-style forecaster registry, (3) rank the
//! candidate paths with the analytic cascade model, and (4) run the
//! actual transfer over the winner — exactly the decision loop §III of
//! the paper sketches.
//!
//! ```text
//! cargo run --release --example grid_transfer
//! ```

use lsl::nws::LinkRegistry;
use lsl::session::model::TcpPathModel;
use lsl::session::path::{rank_paths, Candidate};
use lsl::session::{Hop, LslPath};
use lsl::trace;
use lsl::workloads::{case1, run_transfer, Mode, RunConfig};

fn main() {
    let case = case1();
    println!("Grid transfer with NWS path selection — {}\n", case.name);

    // --- 1. Probe: repeated small measured transfers on each mode ----
    let mut registry = LinkRegistry::new();
    let probe_size = 512u64 << 10;
    for i in 0..5 {
        // Direct probe: trace gives us the end-to-end RTT; wall clock
        // gives bandwidth.
        let direct = run_transfer(
            &case,
            &RunConfig::builder(probe_size, Mode::Direct)
                .seed(500 + i)
                .trace()
                .build(),
        );
        let t = direct.trace_first.as_ref().expect("traced");
        if let Some(rtt) = trace::mean_rtt(t) {
            registry.observe_rtt(case.src.0, case.dst.0, rtt);
        }
        registry.observe_bandwidth(case.src.0, case.dst.0, direct.goodput_bps);

        // Depot probe: per-sublink RTTs from the two captured traces.
        let lsl = run_transfer(
            &case,
            &RunConfig::builder(probe_size, Mode::ViaDepot)
                .seed(500 + i)
                .trace()
                .build(),
        );
        let s1 = lsl.trace_first.as_ref().expect("sublink1");
        let s2 = lsl.trace_second.as_ref().expect("sublink2");
        if let Some(rtt) = trace::mean_rtt(s1) {
            registry.observe_rtt(case.src.0, case.depot.0, rtt);
        }
        if let Some(rtt) = trace::mean_rtt(s2) {
            registry.observe_rtt(case.depot.0, case.dst.0, rtt);
        }
    }

    let f_direct = registry
        .forecast(case.src.0, case.dst.0)
        .expect("direct path probed");
    let f_s1 = registry
        .forecast(case.src.0, case.depot.0)
        .expect("sublink1 probed");
    let f_s2 = registry
        .forecast(case.depot.0, case.dst.0)
        .expect("sublink2 probed");
    println!("NWS forecasts ({:?} confidence):", f_direct.confidence);
    println!(
        "  direct   rtt {:6.1} ms   measured bw {:6.2} Mbit/s",
        f_direct.rtt_s.unwrap() * 1e3,
        f_direct.bandwidth_bps.unwrap() / 1e6
    );
    println!("  sublink1 rtt {:6.1} ms", f_s1.rtt_s.unwrap() * 1e3);
    println!("  sublink2 rtt {:6.1} ms\n", f_s2.rtt_s.unwrap() * 1e3);

    // --- 2. Rank candidates with the analytic model -------------------
    // Loss is taken from the calibrated case description; in a live
    // deployment it would come from the TCP extended-statistics MIB.
    let loss = 1.8e-4;
    let bottleneck = 100e6;
    let direct_cand = Candidate::new(
        LslPath::direct(Hop::new(case.dst, 5001)),
        vec![TcpPathModel::new(f_direct.rtt_s.unwrap(), bottleneck, loss)],
    );
    let depot_cand = Candidate::new(
        LslPath::via(vec![Hop::new(case.depot, 7001)], Hop::new(case.dst, 5001)),
        vec![
            TcpPathModel::new(f_s1.rtt_s.unwrap(), bottleneck, loss / 2.0),
            TcpPathModel::new(f_s2.rtt_s.unwrap(), bottleneck, loss / 2.0),
        ],
    );

    let size = 32u64 << 20;
    println!("Ranking paths for a {}MB transfer:", size >> 20);
    let ranked = rank_paths(&[direct_cand, depot_cand], size, 2 * 1460);
    for (i, r) in ranked.iter().enumerate() {
        println!(
            "  #{} {} sublinks — predicted {:.2} Mbit/s ({:.2}s)",
            i + 1,
            r.path.num_sublinks(),
            r.predicted_bps / 1e6,
            r.predicted_time
        );
    }
    let winner = &ranked[0];
    let mode = if winner.path.num_sublinks() == 1 {
        Mode::Direct
    } else {
        Mode::ViaDepot
    };

    // --- 3. Run the chosen path ---------------------------------------
    let result = run_transfer(&case, &RunConfig::builder(size, mode).seed(999).build());
    println!(
        "\nChosen: {} sublinks → measured {:.2} Mbit/s in {:.2}s (predicted {:.2} Mbit/s)",
        winner.path.num_sublinks(),
        result.goodput_bps / 1e6,
        result.duration_s,
        winner.predicted_bps / 1e6
    );
    if let Some(ok) = result.digest_ok {
        println!("End-to-end MD5 digest verified: {ok}");
    }
}
