//! Property tests for the simulator engine.

use bytes::Bytes;
use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Output, Packet, TopologyBuilder};
use proptest::prelude::*;

fn pkt(src: NodeId, dst: NodeId, n: usize) -> Packet {
    Packet::tcp(src, dst, Bytes::new(), Bytes::from(vec![0u8; n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deliveries never move backwards in time, regardless of workload.
    #[test]
    fn time_is_monotone(sizes in proptest::collection::vec(1usize..3000, 1..100),
                        seed in any::<u64>()) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let r = b.node("r");
        let c = b.node("c");
        b.duplex(a, r, LinkSpec::new(10_000_000, Dur::from_millis(2)));
        b.duplex(r, c, LinkSpec::new(5_000_000, Dur::from_millis(7)));
        let mut sim = b.build().into_sim(seed);
        for &s in &sizes {
            sim.send(a, pkt(a, c, s));
        }
        let mut last = lsl_netsim::Time::ZERO;
        while sim.next().is_some() {
            prop_assert!(sim.now() >= last);
            last = sim.now();
        }
    }

    /// With no loss, every packet sent on a path is delivered exactly
    /// once, in FIFO order per source.
    #[test]
    fn lossless_path_delivers_all_in_order(n in 1usize..200, seed in any::<u64>()) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let r = b.node("r");
        let c = b.node("c");
        b.duplex(a, r, LinkSpec::new(10_000_000, Dur::from_millis(1)));
        b.duplex(r, c, LinkSpec::new(10_000_000, Dur::from_millis(1)));
        let mut sim = b.build().into_sim(seed);
        let mut ids = Vec::new();
        for _ in 0..n {
            ids.push(sim.send(a, pkt(a, c, 500)));
        }
        let mut got = Vec::new();
        while let Some(Output::Deliver { packet, .. }) = sim.next() {
            got.push(packet.id);
        }
        prop_assert_eq!(got, ids);
    }

    /// Conservation under loss: delivered + dropped == sent (equal-size
    /// packets, queue big enough to never overflow).
    #[test]
    fn loss_conservation(n in 1usize..300, p in 0.0f64..0.9, seed in any::<u64>()) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        let (ab, _) = b.duplex(
            a, c,
            LinkSpec::new(100_000_000, Dur::from_millis(1))
                .with_loss(LossModel::bernoulli(p))
                .with_queue_bytes(u64::MAX),
        );
        let mut sim = b.build().into_sim(seed);
        for _ in 0..n {
            sim.send(a, pkt(a, c, 1000));
        }
        let mut delivered = 0u64;
        while sim.next().is_some() {
            delivered += 1;
        }
        let stats = sim.link_stats(ab);
        prop_assert_eq!(delivered + stats.drops_loss, n as u64);
        prop_assert_eq!(stats.drops_queue, 0);
    }

    /// Same seed ⇒ identical delivery trace; the simulator is
    /// deterministic even with loss and queueing.
    #[test]
    fn deterministic_replay(n in 1usize..150, seed in any::<u64>()) {
        let run = || {
            let mut b = TopologyBuilder::new();
            let a = b.node("a");
            let c = b.node("c");
            b.duplex(
                a, c,
                LinkSpec::new(3_000_000, Dur::from_millis(4))
                    .with_loss(LossModel::bernoulli(0.1))
                    .with_queue_bytes(20_000),
            );
            let mut sim = b.build().into_sim(seed);
            for _ in 0..n {
                sim.send(a, pkt(a, c, 1200));
            }
            let mut trace = Vec::new();
            while let Some(Output::Deliver { packet, .. }) = sim.next() {
                trace.push((packet.id, sim.now().0));
            }
            trace
        };
        prop_assert_eq!(run(), run());
    }

    /// Throughput can never exceed the bottleneck link rate: delivering
    /// B wire bytes takes at least B*8/rate seconds.
    #[test]
    fn bottleneck_bounds_throughput(n in 10usize..200, seed in any::<u64>()) {
        let rate = 2_000_000u64; // 2 Mbit/s bottleneck
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let r = b.node("r");
        let c = b.node("c");
        b.duplex(a, r, LinkSpec::new(100_000_000, Dur::ZERO).with_queue_bytes(u64::MAX));
        b.duplex(r, c, LinkSpec::new(rate, Dur::ZERO).with_queue_bytes(u64::MAX));
        let mut sim = b.build().into_sim(seed);
        let mut wire_bytes = 0u64;
        for _ in 0..n {
            let p = pkt(a, c, 1000);
            wire_bytes += p.wire_len() as u64;
            sim.send(a, p);
        }
        while sim.next().is_some() {}
        let elapsed = sim.now().as_secs_f64();
        let min_time = wire_bytes as f64 * 8.0 / rate as f64;
        // Allow a tiny tolerance for the first packet's head start.
        prop_assert!(elapsed >= min_time * 0.99, "elapsed {elapsed} < {min_time}");
    }
}
