//! Model-equivalence property tests for the event scheduler.
//!
//! The hierarchical-wheel scheduler behind `Simulator` must be
//! observationally identical to the naive priority queue it replaced:
//! for any program of arm/cancel/advance operations, timers fire in
//! exactly the reference order — ascending `(time, arm-seq)` — at
//! exactly the reference times. These tests drive the *public*
//! `Simulator` API against a brute-force sorted model and also pin the
//! arena-leak invariant: every armed timer occupies exactly one live
//! scheduler entry, and cancels/fires release it immediately.

use bytes::Bytes;
use lsl_netsim::{Dur, LinkSpec, Output, Packet, Simulator, Time, TimerHandle, TopologyBuilder};
use proptest::prelude::*;

/// One armed timer in the reference model. `seq` is the global arm
/// order — the scheduler's tie-break for equal fire times.
struct ModelTimer {
    at: u64,
    seq: u64,
    token: u64,
    handle: TimerHandle,
}

/// Reference pop: index of the minimum `(at, seq)` live timer.
fn model_min(live: &[ModelTimer]) -> Option<usize> {
    live.iter()
        .enumerate()
        .min_by_key(|(_, t)| (t.at, t.seq))
        .map(|(i, _)| i)
}

/// Map a `(band, offset)` pair to a delay that lands in a specific
/// residence of the timer wheel (tick = 2^17 ns, 3 levels of 64 slots,
/// so the wheel spans 2^35 ns ≈ 34 s; anything longer overflows to the
/// far heap).
fn band_delay(band: u8, offset: u64) -> u64 {
    match band % 6 {
        0 => 0,                              // behind/at the cursor: run band
        1 => offset % (1 << 10),             // sub-tick: same-slot collisions
        2 => offset % (1 << 23),             // level 0 (< 64 ticks)
        3 => offset % (1 << 29),             // level 1 (< 64^2 ticks)
        4 => offset % (1 << 35),             // level 2 (full wheel span)
        _ => (1 << 35) + offset % (1 << 36), // beyond the wheel: far heap
    }
}

/// Check the fired timer against the reference model and remove it.
fn check_fire(live: &mut Vec<ModelTimer>, token: u64, now: Time) {
    let i = model_min(live).expect("simulator fired a timer the model does not have");
    let m = live.swap_remove(i);
    assert_eq!(token, m.token, "timer fired out of reference order");
    assert_eq!(now.0, m.at, "timer fired at the wrong time");
}

/// Armed timers must map 1:1 onto live scheduler entries — a stricter
/// check than `pending_timers()` because it walks the wheel structures
/// and arena, catching both leaks (cancel left a husk) and loss (an
/// armed timer's entry vanished).
fn check_no_leak(sim: &Simulator, live: &[ModelTimer]) {
    assert_eq!(sim.pending_timers(), live.len());
    assert_eq!(sim.debug_live_timer_entries(), live.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Timers-only programs: arm across every wheel band (run, sub-tick,
    /// each level, far heap), cancel at random, and advance — the fire
    /// sequence must be byte-identical to the sorted reference.
    #[test]
    fn timer_programs_match_reference_heap(
        ops in proptest::collection::vec(
            (0u8..8, any::<u8>(), any::<u64>(), any::<proptest::sample::Index>()),
            1..250,
        ),
    ) {
        let mut b = TopologyBuilder::new();
        let n = b.node("solo");
        let mut sim = b.build().into_sim(7);
        let mut live: Vec<ModelTimer> = Vec::new();
        let mut seq = 0u64;
        for (op, band, offset, idx) in ops {
            match op {
                // Arm (weight 4/8): every band, including duplicates of
                // an existing fire time (same `at`, later seq).
                0..=3 => {
                    let at = Time(sim.now().0 + band_delay(band, offset));
                    let handle = sim.set_timer(n, at, seq);
                    live.push(ModelTimer { at: at.0, seq, token: seq, handle });
                    seq += 1;
                }
                // Cancel (weight 2/8): purge must be immediate.
                4..=5 => {
                    if !live.is_empty() {
                        let m = live.swap_remove(idx.index(live.len()));
                        sim.cancel_timer(m.handle);
                        check_no_leak(&sim, &live);
                    }
                }
                // Advance (weight 2/8): pop a few events.
                _ => {
                    for _ in 0..=(band % 3) {
                        match sim.next() {
                            Some(Output::Timer { token, .. }) => {
                                check_fire(&mut live, token, sim.now());
                            }
                            Some(other) => panic!("unexpected output {other:?}"),
                            None => {
                                prop_assert!(live.is_empty(), "simulator dried up early");
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Drain: everything still armed fires in reference order.
        while let Some(out) = sim.next() {
            match out {
                Output::Timer { token, .. } => check_fire(&mut live, token, sim.now()),
                other => panic!("unexpected output {other:?}"),
            }
        }
        prop_assert!(live.is_empty(), "model retains timers the simulator lost");
        check_no_leak(&sim, &live);
    }

    /// Mixed traffic: packet events share the scheduler with timers, so
    /// the link calendar and timer wheel interleave — but the *timer*
    /// subsequence must still match the reference exactly, and no
    /// scheduler entries may leak.
    #[test]
    fn timers_keep_reference_order_under_traffic(
        ops in proptest::collection::vec(
            (0u8..8, any::<u8>(), any::<u64>(), any::<proptest::sample::Index>()),
            1..200,
        ),
        seed in any::<u64>(),
    ) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        b.duplex(a, c, LinkSpec::new(8_000_000, Dur::from_millis(3)));
        let mut sim = b.build().into_sim(seed);
        let mut live: Vec<ModelTimer> = Vec::new();
        let mut seq = 0u64;
        for (op, band, offset, idx) in ops {
            match op {
                0..=2 => {
                    let at = Time(sim.now().0 + band_delay(band, offset));
                    let handle = sim.set_timer(a, at, seq);
                    live.push(ModelTimer { at: at.0, seq, token: seq, handle });
                    seq += 1;
                }
                // Inject traffic: consumes scheduler sequence numbers
                // and populates the link calendar wheel.
                3..=4 => {
                    let size = 64 + (offset % 1400) as usize;
                    sim.send(a, Packet::tcp(a, c, Bytes::new(), Bytes::from(vec![0u8; size])));
                }
                5 => {
                    if !live.is_empty() {
                        let m = live.swap_remove(idx.index(live.len()));
                        sim.cancel_timer(m.handle);
                        check_no_leak(&sim, &live);
                    }
                }
                _ => {
                    for _ in 0..=(band % 3) {
                        match sim.next() {
                            Some(Output::Timer { token, .. }) => {
                                check_fire(&mut live, token, sim.now());
                            }
                            Some(_) => {} // deliveries just advance time
                            None => {
                                prop_assert!(live.is_empty(), "simulator dried up early");
                                break;
                            }
                        }
                    }
                }
            }
        }
        while let Some(out) = sim.next() {
            if let Output::Timer { token, .. } = out {
                check_fire(&mut live, token, sim.now());
            }
        }
        prop_assert!(live.is_empty(), "model retains timers the simulator lost");
        check_no_leak(&sim, &live);
    }
}
