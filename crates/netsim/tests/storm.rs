//! Property tests for chaos-storm generation: every generated storm is
//! a valid fault schedule whose entries fire exactly once when
//! installed into a live simulator.

use bytes::Bytes;
use lsl_netsim::{
    Dur, FaultStormGen, LinkSpec, NodeId, Packet, StormSpec, Topology, TopologyBuilder,
};
use proptest::prelude::*;

/// Source — router — two leaves: gives storms links on and off the
/// traffic path plus crashable intermediate nodes.
fn storm_topology() -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let a = b.node("a");
    let r = b.node("r");
    let c = b.node("c");
    let d = b.node("d");
    b.duplex(a, r, LinkSpec::new(10_000_000, Dur::from_millis(1)));
    b.duplex(r, c, LinkSpec::new(10_000_000, Dur::from_millis(2)));
    b.duplex(r, d, LinkSpec::new(10_000_000, Dur::from_millis(3)));
    (b.build(), vec![a, r, c, d])
}

fn storm_spec(topo: &Topology, nodes: &[NodeId]) -> StormSpec {
    let sim = topo.clone().into_sim(0);
    StormSpec::new(Dur::from_millis(500))
        .with_links(
            (0..sim.num_links())
                .map(|i| lsl_netsim::LinkId(i as u32))
                .collect(),
        )
        .with_crash_nodes(vec![nodes[1], nodes[2]])
        .with_rst_nodes(vec![nodes[0]])
        .with_atoms(1, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Installing any generated storm into a simulator with live
    /// traffic fires every scheduled fault entry exactly once and the
    /// run still quiesces.
    #[test]
    fn storm_entries_fire_exactly_once(seed in any::<u64>(), n_pkts in 1usize..40) {
        let (topo, nodes) = storm_topology();
        let spec = storm_spec(&topo, &nodes);
        let plan = FaultStormGen::new(spec).generate(seed);
        let fault_plan = plan.to_fault_plan();
        let installed = fault_plan.len();

        let mut sim = topo.into_sim(seed);
        sim.install_faults(fault_plan);
        for i in 0..n_pkts {
            let dst = nodes[2 + (i % 2)];
            sim.send(
                nodes[0],
                Packet::tcp(nodes[0], dst, Bytes::new(), Bytes::from(vec![0u8; 700])),
            );
        }
        prop_assert_eq!(sim.faults_installed(), installed);
        let mut fired_outputs = 0usize;
        while let Some(out) = sim.next() {
            if matches!(out, lsl_netsim::Output::Fault { .. }) {
                fired_outputs += 1;
            }
        }
        prop_assert_eq!(sim.faults_fired(), installed);
        prop_assert_eq!(fired_outputs, installed);
    }

    /// The generator is a pure function of its seed even across
    /// separately constructed generators.
    #[test]
    fn storm_generation_is_reproducible(seed in any::<u64>()) {
        let (topo, nodes) = storm_topology();
        let a = FaultStormGen::new(storm_spec(&topo, &nodes)).generate(seed);
        let b = FaultStormGen::new(storm_spec(&topo, &nodes)).generate(seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.drill(), b.drill());
    }
}
