//! Golden-trace pin: a fixed scenario under a fixed seed must produce
//! exactly the event stream it produced when this file was recorded.
//! Aggregate-equality tests (`determinism_same_seed_same_trace`) only
//! prove a run equals *itself*; this test proves the engine's behaviour
//! is unchanged across refactors of its internals — the contract the
//! hot-path data-structure work (dense route table, generation-stamped
//! timer slots, allocation reuse) must preserve byte for byte.

use bytes::Bytes;
use lsl_netsim::{
    Dur, FaultKind, FaultPlan, LinkId, LinkSpec, LossModel, NodeId, Output, Packet, Time,
    TopologyBuilder,
};

/// FNV-1a over the externally visible event stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Mix a fault event into the stream hash: kind discriminant + subject id.
fn push_fault(hash: &mut Fnv, kind: FaultKind) {
    let (tag, id) = match kind {
        FaultKind::LinkDown(l) => (1, l.0 as u64),
        FaultKind::LinkUp(l) => (2, l.0 as u64),
        FaultKind::NodeDown(n) => (3, n.0 as u64),
        FaultKind::NodeUp(n) => (4, n.0 as u64),
        FaultKind::SublinkRst(n) => (5, n.0 as u64),
    };
    hash.push(tag);
    hash.push(id);
}

/// A lossy two-hop forwarding path with interleaved timers: exercises
/// the route lookup on every relayed segment, the loss RNG, and both
/// the fire and cancel sides of the timer machinery.
fn run_scenario(seed: u64) -> (u64, u64, u64, u64) {
    run_scenario_with(seed, FaultPlan::new())
}

fn run_scenario_with(seed: u64, plan: FaultPlan) -> (u64, u64, u64, u64) {
    let mut b = TopologyBuilder::new();
    let a = b.node("a");
    let r = b.node("r");
    let z = b.node("z");
    b.duplex(a, r, LinkSpec::new(8_000_000, Dur::from_millis(5)));
    b.duplex(
        r,
        z,
        LinkSpec::new(8_000_000, Dur::from_millis(7)).with_loss(LossModel::bernoulli(0.05)),
    );
    let mut sim = b.build().into_sim(seed);

    for i in 0..300 {
        sim.send(
            a,
            Packet::tcp(a, z, Bytes::new(), Bytes::from(vec![0u8; 64 + i])),
        );
    }
    let mut handles = Vec::new();
    for i in 0..50u64 {
        let h = sim.set_timer(r, Time::ZERO + Dur::from_millis(3 * i + 1), 1000 + i);
        handles.push(h);
    }
    // Cancel every third timer before anything fires.
    for h in handles.iter().step_by(3) {
        sim.cancel_timer(*h);
    }
    sim.install_faults(plan);

    let mut hash = Fnv::new();
    let mut delivered = 0u64;
    let mut fired = 0u64;
    while let Some(out) = sim.next() {
        match out {
            Output::Deliver { node, packet } => {
                hash.push(1);
                hash.push(node.0 as u64);
                hash.push(packet.id);
                hash.push(packet.data.len() as u64);
                hash.push(sim.now().0);
                delivered += 1;
            }
            Output::Timer { node, token } => {
                hash.push(2);
                hash.push(node.0 as u64);
                hash.push(token);
                hash.push(sim.now().0);
                fired += 1;
            }
            Output::Fault(ev) => {
                hash.push(3);
                push_fault(&mut hash, ev.kind);
                hash.push(sim.now().0);
            }
        }
    }
    assert_eq!(sim.route(a, z), Some(sim.route(a, r).expect("route a->r")));
    assert_eq!(NodeId(1), r);
    (hash.0, delivered, fired, sim.now().0)
}

#[test]
fn golden_trace_is_pinned() {
    let (hash, delivered, fired, end) = run_scenario(42);
    // Values recorded from the engine before the hot-path refactor
    // (BTreeMap route table, BTreeSet timer registry). Any divergence
    // means same-seed runs are no longer reproducible across versions.
    println!("golden: hash={hash:#018x} delivered={delivered} fired={fired} end={end}");
    assert_eq!(
        fired, 33,
        "50 timers armed, 17 cancelled (indices 0,3,…,48)"
    );
    assert_eq!((hash, delivered, end), GOLDEN_SEED42);
}

#[test]
fn golden_differs_across_seeds() {
    assert_ne!(run_scenario(42).0, run_scenario(43).0);
}

/// The same scenario with faults layered on: the relay's forward link
/// flaps mid-burst (flushing its queue, losing the serializing frame),
/// then the relay itself crashes and restarts. Pins that fault schedules
/// are part of the deterministic trace — same plan + same seed must
/// stay byte-identical forever.
fn fault_plan() -> FaultPlan {
    let t = |ms| Time::ZERO + Dur::from_millis(ms);
    FaultPlan::new()
        // Link 2 is r->z (links are allocated in duplex pairs: 0 a->r,
        // 1 r->a, 2 r->z, 3 z->r).
        .link_flap(t(20), LinkId(2), Dur::from_millis(15))
        .node_crash(t(60), NodeId(1), Dur::from_millis(10))
        .sublink_rst(t(90), NodeId(2))
}

#[test]
fn golden_fault_trace_is_pinned() {
    let (hash, delivered, fired, end) = run_scenario_with(42, fault_plan());
    println!("golden-fault: hash={hash:#018x} delivered={delivered} fired={fired} end={end}");
    assert_eq!(fired, 33, "faults must not disturb the timer machinery");
    assert!(
        delivered < GOLDEN_SEED42.1,
        "the outage and crash must cost deliveries"
    );
    assert_eq!((hash, delivered, end), GOLDEN_FAULT_SEED42);
}

#[test]
fn golden_fault_trace_differs_across_seeds() {
    assert_ne!(
        run_scenario_with(42, fault_plan()).0,
        run_scenario_with(43, fault_plan()).0
    );
}

/// `(event-stream hash, delivered count, quiescence time ns)` for seed
/// 42, recorded from the pre-refactor engine (BTreeMap routes, BTreeSet
/// timer registry) and required of every engine since.
const GOLDEN_SEED42: (u64, u64, u64) = (0xa866_ab40_b44d_52d9, 287, 148_000_000);

/// Same shape for the fault scenario ([`fault_plan`] + seed 42),
/// recorded when fault injection landed: the flap and crash cost 90 of
/// the 287 deliveries but leave quiescence time and timer count alone.
const GOLDEN_FAULT_SEED42: (u64, u64, u64) = (0x2c97_3573_1a17_ed3f, 197, 148_000_000);
