//! Golden-trace pin: a fixed scenario under a fixed seed must produce
//! exactly the event stream it produced when this file was recorded.
//! Aggregate-equality tests (`determinism_same_seed_same_trace`) only
//! prove a run equals *itself*; this test proves the engine's behaviour
//! is unchanged across refactors of its internals — the contract the
//! hot-path data-structure work (dense route table, generation-stamped
//! timer slots, allocation reuse) must preserve byte for byte.

use bytes::Bytes;
use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Output, Packet, Time, TopologyBuilder};

/// FNV-1a over the externally visible event stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A lossy two-hop forwarding path with interleaved timers: exercises
/// the route lookup on every relayed segment, the loss RNG, and both
/// the fire and cancel sides of the timer machinery.
fn run_scenario(seed: u64) -> (u64, u64, u64, u64) {
    let mut b = TopologyBuilder::new();
    let a = b.node("a");
    let r = b.node("r");
    let z = b.node("z");
    b.duplex(a, r, LinkSpec::new(8_000_000, Dur::from_millis(5)));
    b.duplex(
        r,
        z,
        LinkSpec::new(8_000_000, Dur::from_millis(7)).with_loss(LossModel::bernoulli(0.05)),
    );
    let mut sim = b.build().into_sim(seed);

    for i in 0..300 {
        sim.send(
            a,
            Packet::tcp(a, z, Bytes::new(), Bytes::from(vec![0u8; 64 + i])),
        );
    }
    let mut handles = Vec::new();
    for i in 0..50u64 {
        let h = sim.set_timer(r, Time::ZERO + Dur::from_millis(3 * i + 1), 1000 + i);
        handles.push(h);
    }
    // Cancel every third timer before anything fires.
    for h in handles.iter().step_by(3) {
        sim.cancel_timer(*h);
    }

    let mut hash = Fnv::new();
    let mut delivered = 0u64;
    let mut fired = 0u64;
    while let Some(out) = sim.next() {
        match out {
            Output::Deliver { node, packet } => {
                hash.push(1);
                hash.push(node.0 as u64);
                hash.push(packet.id);
                hash.push(packet.data.len() as u64);
                hash.push(sim.now().0);
                delivered += 1;
            }
            Output::Timer { node, token } => {
                hash.push(2);
                hash.push(node.0 as u64);
                hash.push(token);
                hash.push(sim.now().0);
                fired += 1;
            }
        }
    }
    assert_eq!(sim.route(a, z), Some(sim.route(a, r).expect("route a->r")));
    assert_eq!(NodeId(1), r);
    (hash.0, delivered, fired, sim.now().0)
}

#[test]
fn golden_trace_is_pinned() {
    let (hash, delivered, fired, end) = run_scenario(42);
    // Values recorded from the engine before the hot-path refactor
    // (BTreeMap route table, BTreeSet timer registry). Any divergence
    // means same-seed runs are no longer reproducible across versions.
    println!("golden: hash={hash:#018x} delivered={delivered} fired={fired} end={end}");
    assert_eq!(
        fired, 33,
        "50 timers armed, 17 cancelled (indices 0,3,…,48)"
    );
    assert_eq!((hash, delivered, end), GOLDEN_SEED42);
}

#[test]
fn golden_differs_across_seeds() {
    assert_ne!(run_scenario(42).0, run_scenario(43).0);
}

/// `(event-stream hash, delivered count, quiescence time ns)` for seed
/// 42, recorded from the pre-refactor engine (BTreeMap routes, BTreeSet
/// timer registry) and required of every engine since.
const GOLDEN_SEED42: (u64, u64, u64) = (0xa866_ab40_b44d_52d9, 287, 148_000_000);
