//! The discrete-event engine.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::link::{Enqueue, Link};
use crate::packet::{LinkId, NodeId, Packet};
use crate::sched::{Class, Scheduler};
use crate::stats::LinkStats;
use crate::time::{Dur, Time};

/// What the simulator hands back to the protocol layer.
#[derive(Debug)]
pub enum Output {
    /// `packet` reached its destination node.
    Deliver { node: NodeId, packet: Packet },
    /// A timer armed with [`Simulator::set_timer`] fired.
    Timer { node: NodeId, token: u64 },
    /// A scheduled [`FaultPlan`] entry fired. The simulator has already
    /// applied its own side of the fault (link/node state, queue
    /// flushes); the protocol layer applies its side (killing sockets,
    /// starting recovery).
    Fault(FaultEvent),
}

/// What a measurement-plane probe of a forwarding path observes — the
/// raw material for NWS-style bandwidth/RTT/loss forecasts. Computed
/// from current simulator state by [`Simulator::probe_path`], so it is
/// deterministic for a given event history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathProbe {
    /// Narrowest configured link rate on the forward path, bits/s.
    pub bandwidth_bps: u64,
    /// Round-trip propagation plus the standing queue wait ahead of
    /// the probe, both directions.
    pub rtt: Dur,
    /// Combined mean stochastic loss across the forward path.
    pub loss: f64,
    /// Every node and link on both directions currently up.
    pub up: bool,
}

/// Handle for cancelling a pending timer. Generation-stamped: the
/// handle names a `(slot, generation)` pair, so a handle kept past its
/// timer's firing can never cancel an unrelated timer that later
/// reused the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    slot: u32,
    gen: u32,
}

/// State of one timer slot. A slot is live from `set_timer` until the
/// timer fires or is cancelled; both retire it immediately (cancel
/// purges the scheduler entry — there is no "dead entry waiting to
/// pop" state). Retirement bumps the generation and returns the slot
/// to the free list, invalidating outstanding handles.
#[derive(Clone, Copy)]
struct TimerSlot {
    gen: u32,
    armed: bool,
    /// Scheduler arena slot of the pending `Event::Timer`, so cancel
    /// can purge it without a search.
    sched_slot: u32,
}

/// A scheduled occurrence. Kept `Copy` and small (≤ 32 bytes, pinned
/// by a test): the scheduler moves these through its arena; anything
/// bulky — the packet payload — lives in the simulator's packet arena
/// and is named here by slot id.
#[derive(Clone, Copy)]
enum Event {
    /// The packet at the head of the link finished serializing.
    TxDone(LinkId),
    /// The packet in arena slot `.1` arrives at the receiving end of
    /// link `.0`.
    Arrive(LinkId, u32),
    Timer {
        node: NodeId,
        token: u64,
        slot: u32,
        gen: u32,
    },
    /// A scheduled fault (index into `Simulator::faults`) takes effect.
    Fault(u32),
}

/// Home for in-flight packet payloads: `Event::Arrive` carries a slot
/// id instead of the ~100-byte `Packet`, keeping scheduler entries at
/// 24 bytes. Slots are recycled through a free list; each is occupied
/// for exactly one propagation interval.
#[derive(Default)]
struct PacketArena {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
}

impl PacketArena {
    fn put(&mut self, p: Packet) -> u32 {
        match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                debug_assert!(s.is_none(), "free-listed packet slot still occupied");
                *s = Some(p);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Some(p));
                i
            }
        }
    }

    fn take(&mut self, i: u32) -> Packet {
        let p = self.slots[i as usize]
            .take()
            .expect("arrival names an empty packet slot");
        self.free.push(i);
        p
    }
}

/// The network simulator: nodes, links, routes, timers, and the event
/// scheduler. Construct via [`crate::TopologyBuilder`].
pub struct Simulator {
    now: Time,
    sched: Scheduler<Event>,
    packets: PacketArena,
    pub(crate) links: Vec<Link>,
    num_nodes: usize,
    /// Dense next-hop table, `routes[node * num_nodes + dst]` = raw
    /// outgoing link id, [`NO_ROUTE`] if absent. The route lookup is on
    /// the per-segment forwarding path, so it is a flat indexed load
    /// rather than a `BTreeMap` walk.
    routes: Vec<u32>,
    rng: SmallRng,
    next_packet_id: u64,
    timer_slots: Vec<TimerSlot>,
    free_slots: Vec<u32>,
    armed_timers: usize,
    /// Installed fault schedule; `Event::Fault` indexes into this.
    faults: Vec<FaultEvent>,
    /// One flag per fault entry: set when it fires (each fires once).
    faults_fired: Vec<bool>,
    /// Per-node up/down state; all nodes start up.
    node_up: Vec<bool>,
    /// Pops since the last timer-accounting audit (feature `invariants`).
    #[cfg(feature = "invariants")]
    pops_since_audit: u32,
}

/// Sentinel for "no next hop" in the dense route table.
const NO_ROUTE: u32 = u32::MAX;

/// How many event pops between timer-accounting audits (feature
/// `invariants`): the audit walks every scheduler bucket, so it runs
/// amortized, not per event.
#[cfg(feature = "invariants")]
const TIMER_AUDIT_PERIOD: u32 = 4096;

impl Simulator {
    pub(crate) fn new(num_nodes: usize, links: Vec<Link>, seed: u64) -> Simulator {
        Simulator {
            now: Time::ZERO,
            sched: Scheduler::new(),
            packets: PacketArena::default(),
            links,
            num_nodes,
            routes: vec![NO_ROUTE; num_nodes * num_nodes],
            rng: SmallRng::seed_from_u64(seed),
            next_packet_id: 1,
            timer_slots: Vec::with_capacity(64),
            free_slots: Vec::with_capacity(64),
            armed_timers: 0,
            faults: Vec::new(),
            faults_fired: Vec::new(),
            node_up: vec![true; num_nodes],
            #[cfg(feature = "invariants")]
            pops_since_audit: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Install a static next-hop route: traffic at `node` destined for
    /// `dst` leaves on `link`.
    pub fn set_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        let l = &self.links[link.0 as usize];
        assert_eq!(l.from, node, "route's link does not originate at node");
        self.routes[node.0 as usize * self.num_nodes + dst.0 as usize] = link.0;
    }

    /// Next-hop lookup (exposed for diagnostics).
    pub fn route(&self, node: NodeId, dst: NodeId) -> Option<LinkId> {
        match self.routes[node.0 as usize * self.num_nodes + dst.0 as usize] {
            NO_ROUTE => None,
            l => Some(LinkId(l)),
        }
    }

    /// Install a fault schedule. Every entry is scheduled immediately,
    /// so it interleaves deterministically with traffic and fires
    /// exactly once at its scheduled time. May be called more than
    /// once; entries accumulate. Panics on out-of-range link/node ids or
    /// times in the past — a malformed plan is an experiment bug.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for ev in plan.into_entries() {
            assert!(ev.at >= self.now, "fault scheduled in the past: {ev:?}");
            match ev.kind {
                FaultKind::LinkDown(l) | FaultKind::LinkUp(l) => {
                    assert!((l.0 as usize) < self.links.len(), "unknown link in {ev:?}");
                }
                FaultKind::NodeDown(n) | FaultKind::NodeUp(n) | FaultKind::SublinkRst(n) => {
                    assert!((n.0 as usize) < self.num_nodes, "unknown node in {ev:?}");
                }
            }
            let idx = self.faults.len() as u32;
            self.faults.push(ev);
            self.faults_fired.push(false);
            self.schedule(ev.at, Event::Fault(idx));
        }
    }

    /// Number of installed fault entries that have fired so far.
    pub fn faults_fired(&self) -> usize {
        self.faults_fired.iter().filter(|f| **f).count()
    }

    /// Number of installed fault entries.
    pub fn faults_installed(&self) -> usize {
        self.faults.len()
    }

    /// Whether a node is currently up (not crashed).
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.node_up[node.0 as usize]
    }

    /// Whether a link is currently up (carrying traffic).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link.0 as usize].is_up()
    }

    /// Inject a packet at `from` (its origin or a forwarding node). The
    /// packet is routed hop by hop toward `packet.dst`. Returns the
    /// unique packet id assigned.
    ///
    /// Panics if no route exists — a misconfigured topology is a bug in
    /// the experiment, not a runtime condition to tolerate. A send from
    /// a crashed node is silently discarded (the host is dead; any
    /// straggling protocol action there produces nothing).
    pub fn send(&mut self, from: NodeId, mut packet: Packet) -> u64 {
        if packet.id == 0 {
            packet.id = self.next_packet_id;
            self.next_packet_id += 1;
        }
        let id = packet.id;
        if !self.node_up[from.0 as usize] {
            return id;
        }
        let raw = self.routes[from.0 as usize * self.num_nodes + packet.dst.0 as usize];
        if raw == NO_ROUTE {
            panic!("no route from {:?} to {:?}", from, packet.dst);
        }
        self.offer_to_link(LinkId(raw), packet);
        id
    }

    fn offer_to_link(&mut self, link_id: LinkId, packet: Packet) {
        let link = &mut self.links[link_id.0 as usize];
        match link.enqueue(packet) {
            Enqueue::Started(d) => self.schedule(self.now + d, Event::TxDone(link_id)),
            Enqueue::Queued | Enqueue::Dropped => {}
        }
    }

    /// Arm a timer at absolute time `at`. The returned handle cancels it.
    pub fn set_timer(&mut self, node: NodeId, at: Time, token: u64) -> TimerHandle {
        assert!(at >= self.now, "timer set in the past");
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let next = self.timer_slots.len() as u32;
                self.timer_slots.push(TimerSlot {
                    gen: 0,
                    armed: false,
                    sched_slot: 0,
                });
                next
            }
        };
        let s = &mut self.timer_slots[slot as usize];
        debug_assert!(!s.armed, "free timer slot was still armed");
        s.armed = true;
        let gen = s.gen;
        self.armed_timers += 1;
        let sched_slot = self.sched.insert(
            at,
            Class::Timer,
            Event::Timer {
                node,
                token,
                slot,
                gen,
            },
        );
        self.timer_slots[slot as usize].sched_slot = sched_slot;
        TimerHandle { slot, gen }
    }

    /// Cancel a pending timer: the scheduler entry is purged on the
    /// spot, so a cancelled timer is never revisited at pop time, and
    /// the slot is retired immediately. Cancelling an already-fired or
    /// already-cancelled timer is a no-op: the handle's generation no
    /// longer matches its slot, so it cannot touch a reused slot.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        if let Some(s) = self.timer_slots.get_mut(handle.slot as usize) {
            if s.gen == handle.gen && s.armed {
                s.armed = false;
                s.gen = s.gen.wrapping_add(1);
                let sched_slot = s.sched_slot;
                self.free_slots.push(handle.slot);
                self.armed_timers -= 1;
                let purged = self.sched.cancel(sched_slot);
                debug_assert!(
                    matches!(purged, Some(Event::Timer { .. })),
                    "armed timer's scheduler entry was missing"
                );
            }
        }
    }

    /// Number of timers armed and not yet fired/cancelled.
    pub fn pending_timers(&self) -> usize {
        self.armed_timers
    }

    /// Live `Timer` entries actually resident in the scheduler — the
    /// leak probe behind the timer-accounting assertion. Walks every
    /// scheduler bucket: for tests and audits, not the hot path.
    #[doc(hidden)]
    pub fn debug_live_timer_entries(&self) -> usize {
        self.sched
            .count_live_where(|e| matches!(e, Event::Timer { .. }))
    }

    /// Snapshot of a link's counters.
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.links[link.0 as usize].stats
    }

    /// Endpoints of a link as `(from, to)`.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        let l = &self.links[link.0 as usize];
        (l.from, l.to)
    }

    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Bytes currently waiting in a link's queue (excludes the packet
    /// being serialized).
    pub fn link_queued_bytes(&self, link: LinkId) -> u64 {
        self.links[link.0 as usize].queued_bytes()
    }

    /// Whether a link is currently transmitting.
    pub fn link_busy(&self, link: LinkId) -> bool {
        self.links[link.0 as usize].is_busy()
    }

    /// The chain of links a packet from `node` to `dst` traverses, by
    /// walking the static next-hop table. `None` when no route exists.
    /// Bounded by the link count, so a cyclic routing misconfiguration
    /// reads as "no path" rather than a hang.
    pub fn path_links(&self, node: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        let mut at = node;
        let mut chain = Vec::new();
        while at != dst {
            if chain.len() > self.links.len() {
                return None; // routing loop
            }
            let l = self.route(at, dst)?;
            chain.push(l);
            at = self.links[l.0 as usize].to;
        }
        Some(chain)
    }

    /// A measurement-plane probe of the forwarding path `src → dst`:
    /// the observables an NWS-style sensor would extract from a small
    /// probe exchange, computed from current simulator state (so it
    /// sees congestion queues and injected faults, deterministically).
    /// `None` when either direction has no route.
    pub fn probe_path(&self, src: NodeId, dst: NodeId) -> Option<PathProbe> {
        let fwd = self.path_links(src, dst)?;
        let rev = self.path_links(dst, src)?;
        let mut up = self.node_is_up(src) && self.node_is_up(dst);
        let mut bandwidth_bps = u64::MAX;
        let mut rtt_ns = 0u64;
        let mut pass = 1.0f64;
        for (dir, links) in [(true, &fwd), (false, &rev)] {
            for &l in links {
                let link = &self.links[l.0 as usize];
                up = up && link.is_up() && self.node_is_up(link.to);
                rtt_ns = rtt_ns.saturating_add(link.spec.prop_delay.0);
                // Standing queue ahead of the probe.
                let rate = link.spec.bandwidth_bps.max(1);
                let wait = (link.queued_bytes() as u128 * 8 * 1_000_000_000) / rate as u128;
                rtt_ns = rtt_ns.saturating_add(u64::try_from(wait).unwrap_or(u64::MAX));
                if dir {
                    // Data flows forward; bandwidth and loss are
                    // forward-direction properties.
                    bandwidth_bps = bandwidth_bps.min(link.spec.bandwidth_bps);
                    pass *= 1.0 - link.spec.loss.mean_loss();
                }
            }
        }
        Some(PathProbe {
            bandwidth_bps,
            rtt: Dur(rtt_ns),
            loss: 1.0 - pass,
            up,
        })
    }

    /// Apply the simulator-side effects of a fault. Upper-layer effects
    /// (socket teardown, relay-state flush) happen when the caller sees
    /// the returned [`Output::Fault`].
    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown(l) => {
                self.links[l.0 as usize].set_down(
                    #[cfg(feature = "invariants")]
                    self.now,
                );
            }
            FaultKind::LinkUp(l) => self.links[l.0 as usize].set_up(),
            FaultKind::NodeDown(n) => {
                self.node_up[n.0 as usize] = false;
                // A crashed host's NIC queues die with it: flush waiting
                // packets on every outgoing link. (The frame currently
                // serializing is discarded at its TxDone; arrivals are
                // discarded on delivery.)
                for link in &mut self.links {
                    if link.from == n {
                        link.flush_queue(
                            #[cfg(feature = "invariants")]
                            self.now,
                        );
                    }
                }
            }
            FaultKind::NodeUp(n) => self.node_up[n.0 as usize] = true,
            // Purely an upper-layer signal; no simulator state changes.
            FaultKind::SublinkRst(_) => {}
        }
    }

    fn schedule(&mut self, at: Time, event: Event) {
        debug_assert!(at >= self.now);
        let class = match event {
            Event::TxDone(_) | Event::Arrive(..) => Class::Link,
            Event::Timer { .. } | Event::Fault(_) => Class::Timer,
        };
        self.sched.insert(at, class, event);
    }

    /// Advance the simulation to the next externally visible event and
    /// return it; `None` when no events remain. Deliberately not an
    /// `Iterator`: callers inject new packets between calls, which an
    /// iterator borrow would forbid.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Output> {
        while let Some((at, event)) = self.sched.pop() {
            #[cfg(feature = "invariants")]
            crate::invariant!(
                at >= self.now,
                self.now,
                "netsim::sim",
                "event-time-monotonic",
                "popped event at {:?} behind current time {:?}",
                at,
                self.now
            );
            debug_assert!(
                at >= self.now,
                "event queue went backwards: popped {at:?} with now {:?}",
                self.now
            );
            self.now = at;
            #[cfg(feature = "invariants")]
            self.audit_timer_accounting();
            match event {
                Event::TxDone(link_id) => {
                    // One link resolution covers the whole completion:
                    // drain, fault check, loss draw, and ledger updates
                    // all go through the same borrow.
                    let link = &mut self.links[link_id.0 as usize];
                    let (packet, next_tx) = link.tx_done();
                    // A fault between tx start and tx end kills the frame:
                    // the transmitter is gone (node crash) or the medium is
                    // (link down).
                    let faulted = !link.is_up() || !self.node_up[link.from.0 as usize];
                    let mut arrive_after = None;
                    if faulted {
                        link.stats.on_drop_fault();
                        #[cfg(feature = "invariants")]
                        {
                            link.lost_bytes += packet.wire_len() as u64;
                            link.check_conservation(self.now);
                        }
                    } else {
                        // Loss is drawn when the packet leaves the
                        // transmitter: it occupied serialization time
                        // either way.
                        let lost = link.spec.loss.sample(&mut self.rng);
                        if lost {
                            link.stats.on_drop_loss();
                        }
                        #[cfg(feature = "invariants")]
                        {
                            let wire = packet.wire_len() as u64;
                            if lost {
                                link.lost_bytes += wire;
                            } else {
                                link.inflight_bytes += wire;
                            }
                            link.check_conservation(self.now);
                        }
                        if !lost {
                            arrive_after = Some(link.spec.prop_delay);
                        }
                    }
                    // Scheduling order (next TxDone before Arrive) is a
                    // determinism contract: it fixes the seq numbers.
                    if let Some(d) = next_tx {
                        self.schedule(self.now + d, Event::TxDone(link_id));
                    }
                    if let Some(prop) = arrive_after {
                        let pslot = self.packets.put(packet);
                        self.schedule(self.now + prop, Event::Arrive(link_id, pslot));
                    }
                }
                Event::Arrive(link_id, pslot) => {
                    let packet = self.packets.take(pslot);
                    let link = &mut self.links[link_id.0 as usize];
                    let to = link.to;
                    // Arrival at a crashed node (destination or forwarder):
                    // the bits reached a dead host and vanish.
                    if !self.node_up[to.0 as usize] {
                        link.stats.on_drop_fault();
                        #[cfg(feature = "invariants")]
                        {
                            let wire = packet.wire_len() as u64;
                            link.inflight_bytes -= wire;
                            link.lost_bytes += wire;
                            link.check_conservation(self.now);
                        }
                        continue;
                    }
                    #[cfg(feature = "invariants")]
                    {
                        let wire = packet.wire_len() as u64;
                        link.inflight_bytes -= wire;
                        link.delivered_bytes += wire;
                        link.check_conservation(self.now);
                    }
                    if to == packet.dst {
                        return Some(Output::Deliver { node: to, packet });
                    }
                    // Forward through an intermediate router.
                    let raw = self.routes[to.0 as usize * self.num_nodes + packet.dst.0 as usize];
                    if raw == NO_ROUTE {
                        panic!("router {:?} has no route to {:?}", to, packet.dst);
                    }
                    self.offer_to_link(LinkId(raw), packet);
                }
                Event::Timer {
                    node,
                    token,
                    slot,
                    gen,
                } => {
                    // Cancelled timers are purged at cancel time, so a
                    // popped timer always fires. Retire the slot.
                    let s = &mut self.timer_slots[slot as usize];
                    debug_assert_eq!(s.gen, gen, "timer slot retired before its event popped");
                    debug_assert!(s.armed, "popped timer was not armed");
                    s.armed = false;
                    s.gen = s.gen.wrapping_add(1);
                    self.free_slots.push(slot);
                    self.armed_timers -= 1;
                    return Some(Output::Timer { node, token });
                }
                Event::Fault(idx) => {
                    let ev = self.faults[idx as usize];
                    debug_assert!(
                        !self.faults_fired[idx as usize],
                        "fault entry fired twice: {ev:?}"
                    );
                    self.faults_fired[idx as usize] = true;
                    self.apply_fault(ev.kind);
                    // Rare event, off the per-packet path: telemetry here
                    // cannot perturb the events/sec budget.
                    lsl_obs::instant(self.now.0, "netsim.fault", ev.kind.index());
                    lsl_obs::counter_add("netsim.fault.fired", ev.kind.index(), 1);
                    return Some(Output::Fault(ev));
                }
            }
        }
        None
    }

    /// Amortized audit (feature `invariants`): the armed-timer counter
    /// must equal the live `Timer` entries resident in the scheduler.
    /// Any drift means a cancel leaked its entry or a purge went to the
    /// wrong bucket.
    #[cfg(feature = "invariants")]
    fn audit_timer_accounting(&mut self) {
        self.pops_since_audit += 1;
        if self.pops_since_audit < TIMER_AUDIT_PERIOD {
            return;
        }
        self.pops_since_audit = 0;
        let live = self.debug_live_timer_entries();
        crate::invariant!(
            live == self.armed_timers,
            self.now,
            "netsim::sim",
            "timer-accounting",
            "{} live timer entries in the scheduler but {} timers armed",
            live,
            self.armed_timers
        );
    }

    /// Export every link's end-of-run counters into the `lsl-obs`
    /// metrics registry (gauges keyed by the link's cached raw id).
    /// Called once at the end of an instrumented run — keeping this out
    /// of the event loop keeps telemetry off the per-packet hot path.
    pub fn record_obs_link_metrics(&self) {
        if !lsl_obs::is_enabled() {
            return;
        }
        for link in &self.links {
            link.stats.export_obs(u64::from(link.id.0));
        }
    }

    /// Drain events until the queue is empty or the next event lies
    /// past `deadline`. Returns outputs that occurred (used by tests;
    /// real protocol loops call [`Simulator::next`] directly).
    pub fn run_collect(&mut self, deadline: Time) -> Vec<Output> {
        let mut out = Vec::new();
        while let Some(at) = self.sched.peek_time() {
            if at > deadline {
                break;
            }
            if let Some(o) = self.next() {
                out.push(o);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::loss::LossModel;
    use crate::time::Dur;
    use crate::topo::TopologyBuilder;
    use bytes::Bytes;

    fn two_node_sim(loss: LossModel) -> (Simulator, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        b.duplex(
            a,
            c,
            LinkSpec::new(8_000_000, Dur::from_millis(5)).with_loss(loss),
        );
        let topo = b.build();
        (topo.into_sim(1), a, c)
    }

    fn pkt(src: NodeId, dst: NodeId, n: usize) -> Packet {
        Packet::tcp(src, dst, Bytes::new(), Bytes::from(vec![0u8; n]))
    }

    #[test]
    fn event_fits_hot_size_budget() {
        // Scheduler entries carry `Event` through the arena; payloads
        // (packets) must stay out-of-line for the wheels to be cheap.
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event grew past 32 bytes: {}",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn delivery_timing_is_serialization_plus_prop() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        // 962 wire bytes at 8 Mbit/s = 962 us, plus 5 ms prop.
        sim.send(a, pkt(a, c, 962 - 38));
        match sim.next() {
            Some(Output::Deliver { node, .. }) => {
                assert_eq!(node, c);
                assert_eq!(sim.now(), Time::ZERO + Dur::from_micros(962 + 5000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fifo_delivery_order() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        for i in 0..10 {
            sim.send(a, pkt(a, c, 100 + i));
        }
        let mut sizes = Vec::new();
        while let Some(Output::Deliver { packet, .. }) = sim.next() {
            sizes.push(packet.data.len());
        }
        assert_eq!(sizes, (0..10).map(|i| 100 + i).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let (mut sim, a, _c) = two_node_sim(LossModel::None);
        let h1 = sim.set_timer(a, Time::ZERO + Dur::from_millis(10), 1);
        let _h2 = sim.set_timer(a, Time::ZERO + Dur::from_millis(5), 2);
        let _h3 = sim.set_timer(a, Time::ZERO + Dur::from_millis(15), 3);
        sim.cancel_timer(h1);
        let mut tokens = Vec::new();
        while let Some(Output::Timer { token, .. }) = sim.next() {
            tokens.push(token);
        }
        assert_eq!(tokens, vec![2, 3]);
        assert_eq!(sim.pending_timers(), 0);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let (mut sim, a, _c) = two_node_sim(LossModel::None);
        let h = sim.set_timer(a, Time::ZERO + Dur::from_millis(1), 9);
        assert!(sim.next().is_some());
        sim.cancel_timer(h); // already fired: no panic
    }

    #[test]
    fn cancel_purges_scheduler_entry_immediately() {
        let (mut sim, a, _c) = two_node_sim(LossModel::None);
        let mut handles = Vec::new();
        for i in 0..100 {
            handles.push(sim.set_timer(a, Time::ZERO + Dur::from_millis(1 + i), i));
        }
        assert_eq!(sim.debug_live_timer_entries(), 100);
        for h in handles.iter().step_by(2) {
            sim.cancel_timer(*h);
        }
        // Purge-on-cancel: the entries are gone *now*, not at pop time.
        assert_eq!(sim.pending_timers(), 50);
        assert_eq!(sim.debug_live_timer_entries(), 50);
        let mut fired = 0;
        while sim.next().is_some() {
            fired += 1;
        }
        assert_eq!(fired, 50);
        assert_eq!(sim.pending_timers(), 0);
        assert_eq!(
            sim.debug_live_timer_entries(),
            0,
            "scheduler leaked entries"
        );
    }

    #[test]
    #[should_panic(expected = "timer set in the past")]
    fn past_timer_panics() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        sim.send(a, pkt(a, c, 10));
        let _ = sim.next(); // advances now
        sim.set_timer(a, Time::ZERO, 0);
    }

    #[test]
    fn loss_drops_packets_and_counts() {
        let (mut sim, a, c) = two_node_sim(LossModel::bernoulli(0.5));
        for _ in 0..1000 {
            sim.send(a, pkt(a, c, 100));
        }
        let mut delivered = 0;
        while sim.next().is_some() {
            delivered += 1;
        }
        let stats = sim.link_stats(LinkId(0));
        assert_eq!(stats.drops_loss + delivered, 1000);
        assert!(delivered > 350 && delivered < 650, "delivered {delivered}");
    }

    #[test]
    fn forwarding_through_router() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let r = b.node("r");
        let c = b.node("c");
        b.duplex(a, r, LinkSpec::new(8_000_000, Dur::from_millis(2)));
        b.duplex(r, c, LinkSpec::new(8_000_000, Dur::from_millis(3)));
        let mut sim = b.build().into_sim(1);
        sim.send(a, pkt(a, c, 962 - 38));
        match sim.next() {
            Some(Output::Deliver { node, packet }) => {
                assert_eq!(node, c);
                assert_eq!(packet.src, a);
                // Two serializations (store-and-forward) + both prop delays.
                assert_eq!(sim.now(), Time::ZERO + Dur::from_micros(2 * 962 + 5000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let (_, a, c) = two_node_sim(LossModel::bernoulli(0.2));
            let mut sim = {
                // rebuild with chosen seed
                let mut b = TopologyBuilder::new();
                let a2 = b.node("a");
                let c2 = b.node("c");
                b.duplex(
                    a2,
                    c2,
                    LinkSpec::new(8_000_000, Dur::from_millis(5))
                        .with_loss(LossModel::bernoulli(0.2)),
                );
                assert_eq!((a2, c2), (a, c));
                b.build().into_sim(seed)
            };
            for _ in 0..200 {
                sim.send(a, pkt(a, c, 100));
            }
            let mut trace = Vec::new();
            while let Some(Output::Deliver { packet, .. }) = sim.next() {
                trace.push((packet.id, sim.now()));
            }
            trace
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn same_timestamp_events_dispatch_in_insertion_order() {
        let (mut sim, a, _c) = two_node_sim(LossModel::None);
        let t = Time::ZERO + Dur::from_millis(1);
        for token in 0..50 {
            sim.set_timer(a, t, token);
        }
        let mut tokens = Vec::new();
        while let Some(Output::Timer { token, .. }) = sim.next() {
            tokens.push(token);
        }
        assert_eq!(tokens, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fault_entries_fire_exactly_once_at_their_tick() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        let t = |ms| Time::ZERO + Dur::from_millis(ms);
        sim.install_faults(
            FaultPlan::new()
                .link_flap(t(10), LinkId(0), Dur::from_millis(5))
                .node_crash(t(30), c, Dur::from_millis(2))
                .sublink_rst(t(40), a),
        );
        assert_eq!(sim.faults_installed(), 5);
        let mut seen = Vec::new();
        while let Some(out) = sim.next() {
            if let Output::Fault(ev) = out {
                assert_eq!(ev.at, sim.now(), "fault fired off its scheduled tick");
                seen.push(ev);
            }
        }
        assert_eq!(sim.faults_fired(), 5, "each entry fires exactly once");
        assert_eq!(seen.len(), 5);
        assert_eq!(
            seen[0],
            FaultEvent {
                at: t(10),
                kind: FaultKind::LinkDown(LinkId(0))
            }
        );
        assert_eq!(
            seen[1],
            FaultEvent {
                at: t(15),
                kind: FaultKind::LinkUp(LinkId(0))
            }
        );
        assert_eq!(
            seen[2],
            FaultEvent {
                at: t(30),
                kind: FaultKind::NodeDown(c)
            }
        );
        assert_eq!(
            seen[3],
            FaultEvent {
                at: t(32),
                kind: FaultKind::NodeUp(c)
            }
        );
        assert_eq!(
            seen[4],
            FaultEvent {
                at: t(40),
                kind: FaultKind::SublinkRst(a)
            }
        );
    }

    #[test]
    fn down_link_drops_offers_and_flushes_queue() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        // Queue several packets, then take the link down at t=0.5 ms —
        // mid-serialization of the first (962 us) packet.
        for _ in 0..5 {
            sim.send(a, pkt(a, c, 962 - 38));
        }
        sim.install_faults(
            FaultPlan::new().link_down(Time::ZERO + Dur::from_micros(500), LinkId(0)),
        );
        let mut delivered = 0;
        while let Some(out) = sim.next() {
            if matches!(out, Output::Deliver { .. }) {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 0, "nothing survives a mid-serialization outage");
        // 1 serializing + 4 flushed = 5 fault drops; offers after the
        // outage are also counted.
        assert_eq!(sim.link_stats(LinkId(0)).drops_fault, 5);
        assert!(!sim.link_is_up(LinkId(0)));
        sim.send(a, pkt(a, c, 100));
        assert!(sim.next().is_none());
        assert_eq!(sim.link_stats(LinkId(0)).drops_fault, 6);
    }

    #[test]
    fn link_comes_back_after_flap() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        sim.install_faults(FaultPlan::new().link_flap(Time::ZERO, LinkId(0), Dur::from_millis(5)));
        // Drain the two fault events.
        assert!(matches!(sim.next(), Some(Output::Fault(_))));
        assert!(matches!(sim.next(), Some(Output::Fault(_))));
        assert!(sim.link_is_up(LinkId(0)));
        sim.send(a, pkt(a, c, 100));
        assert!(matches!(sim.next(), Some(Output::Deliver { .. })));
    }

    #[test]
    fn crashed_node_discards_arrivals_until_restart() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        sim.install_faults(FaultPlan::new().node_crash(Time::ZERO, c, Dur::from_millis(1)));
        assert!(matches!(sim.next(), Some(Output::Fault(_)))); // NodeDown
        assert!(!sim.node_is_up(c));
        sim.send(a, pkt(a, c, 100)); // arrives ~5.138 ms, after restart
        sim.send(c, pkt(c, a, 100)); // send from crashed node: discarded
        let mut delivered = Vec::new();
        while let Some(out) = sim.next() {
            if let Output::Deliver { node, .. } = out {
                delivered.push(node);
            }
        }
        assert!(sim.node_is_up(c));
        assert_eq!(
            delivered,
            vec![c],
            "post-restart arrival delivered; dead-node send lost"
        );
    }

    #[test]
    fn arrival_during_crash_window_is_dropped() {
        let (mut sim, a, c) = two_node_sim(LossModel::None);
        // Packet arrives at 962 us + 5 ms ≈ 5.96 ms; crash covers [1, 10] ms.
        sim.send(a, pkt(a, c, 962 - 38));
        sim.install_faults(FaultPlan::new().node_crash(
            Time::ZERO + Dur::from_millis(1),
            c,
            Dur::from_millis(9),
        ));
        let mut delivered = 0;
        while let Some(out) = sim.next() {
            if matches!(out, Output::Deliver { .. }) {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 0);
        assert_eq!(sim.link_stats(LinkId(0)).drops_fault, 1);
    }

    #[test]
    fn run_collect_does_not_overshoot_deadline() {
        let (mut sim, a, _c) = two_node_sim(LossModel::None);
        for i in 0..10 {
            sim.set_timer(a, Time::ZERO + Dur::from_millis(i), i);
        }
        let out = sim.run_collect(Time::ZERO + Dur::from_millis(4));
        assert_eq!(out.len(), 5, "timers at 0..=4 ms only");
        assert!(sim.now() <= Time::ZERO + Dur::from_millis(4));
        assert_eq!(sim.pending_timers(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn fault_plan_unknown_link_rejected() {
        let (mut sim, _a, _c) = two_node_sim(LossModel::None);
        sim.install_faults(FaultPlan::new().link_down(Time::ZERO, LinkId(99)));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        b.duplex(a, c, LinkSpec::new(8_000_000, Dur::from_millis(1)));
        let mut sim = b.build().into_sim_without_routes(1);
        sim.send(a, pkt(a, c, 10));
    }

    /// a —10Mbit/5ms— b —2Mbit/20ms— c, with Bernoulli loss on the
    /// second hop.
    fn chain_sim() -> (Simulator, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let m = b.node("b");
        let c = b.node("c");
        b.duplex(a, m, LinkSpec::new(10_000_000, Dur::from_millis(5)));
        b.duplex(
            m,
            c,
            LinkSpec::new(2_000_000, Dur::from_millis(20)).with_loss(LossModel::bernoulli(0.01)),
        );
        (b.build().into_sim(1), a, m, c)
    }

    #[test]
    fn path_links_walks_next_hop_chain() {
        let (sim, a, m, c) = chain_sim();
        let chain = sim.path_links(a, c).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(sim.path_links(a, a).unwrap(), vec![]);
        assert_eq!(sim.path_links(a, m).unwrap().len(), 1);

        // No routing table at all: an honest miss, not a panic.
        let mut b = TopologyBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.duplex(x, y, LinkSpec::new(8_000_000, Dur::from_millis(1)));
        let bare = b.build().into_sim_without_routes(1);
        assert_eq!(bare.path_links(x, y), None);
    }

    #[test]
    fn probe_path_reports_static_path_properties() {
        let (sim, a, _m, c) = chain_sim();
        let p = sim.probe_path(a, c).unwrap();
        assert_eq!(p.bandwidth_bps, 2_000_000, "narrowest forward hop");
        assert_eq!(p.rtt, Dur::from_millis(2 * (5 + 20)), "idle path: 2x prop");
        assert!((p.loss - 0.01).abs() < 1e-12, "forward mean loss");
        assert!(p.up);
    }

    #[test]
    fn probe_path_sees_queues_and_faults() {
        let (mut sim, a, _m, c) = chain_sim();
        // Five queued kB-ish packets behind the probe add queue wait to
        // the observed RTT.
        let idle_rtt = sim.probe_path(a, c).unwrap().rtt;
        for _ in 0..5 {
            sim.send(a, pkt(a, c, 962 - 38));
        }
        let busy = sim.probe_path(a, c).unwrap();
        assert!(busy.rtt > idle_rtt, "standing queue inflates probe RTT");

        // A down link on the reverse path flips the reachability bit.
        sim.install_faults(FaultPlan::new().link_down(Time::ZERO, LinkId(1)));
        while sim.next().is_some() {}
        let down = sim.probe_path(a, c).unwrap();
        assert!(!down.up);
    }
}
