//! Stochastic packet-loss models.
//!
//! Wide-area paths in the paper lose packets roughly independently
//! (congestion events elsewhere on Abilene), which [`LossModel::Bernoulli`]
//! captures. The 802.11b wireless edge of case 3 exhibits *bursty* loss:
//! fades corrupt several consecutive frames. The two-state Gilbert–Elliott
//! chain is the standard model for that behaviour.

use rand::Rng;

/// A per-packet loss process. Cloning yields an independent copy with the
/// same parameters and current state.
#[derive(Clone, Debug)]
pub enum LossModel {
    /// No stochastic loss (queue overflow can still drop).
    None,
    /// Each packet is lost independently with probability `p`.
    Bernoulli { p: f64 },
    /// Two-state Markov chain: in `Good` packets are lost with `loss_good`,
    /// in `Bad` with `loss_bad`; the chain moves Good→Bad with `p_gb` and
    /// Bad→Good with `p_bg` per packet.
    GilbertElliott {
        p_gb: f64,
        p_bg: f64,
        loss_good: f64,
        loss_bad: f64,
        /// Current state; `true` = Bad.
        in_bad: bool,
    },
}

impl LossModel {
    /// Convenience constructor validating `p`.
    pub fn bernoulli(p: f64) -> LossModel {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        if p > 0.0 {
            LossModel::Bernoulli { p }
        } else {
            LossModel::None
        }
    }

    /// Gilbert–Elliott starting in the Good state.
    pub fn gilbert_elliott(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> LossModel {
        for v in [p_gb, p_bg, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&v), "probability out of range");
        }
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// Advance the process by one packet and report whether it is lost.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.random::<f64>() < *p,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
                in_bad,
            } => {
                // State transition first, then loss draw in the new state.
                if *in_bad {
                    if rng.random::<f64>() < *p_bg {
                        *in_bad = false;
                    }
                } else if rng.random::<f64>() < *p_gb {
                    *in_bad = true;
                }
                let p = if *in_bad { *loss_bad } else { *loss_good };
                rng.random::<f64>() < p
            }
        }
    }

    /// Long-run average loss probability of the process.
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
                ..
            } => {
                if *p_gb + *p_bg <= 0.0 {
                    return *loss_good; // chain never leaves Good
                }
                // Stationary distribution of the two-state chain.
                let pi_bad = p_gb / (p_gb + p_bg);
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_loses() {
        let mut m = LossModel::None;
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..10_000).all(|_| !m.sample(&mut rng)));
    }

    #[test]
    fn bernoulli_zero_collapses_to_none() {
        assert!(matches!(LossModel::bernoulli(0.0), LossModel::None));
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut m = LossModel::bernoulli(0.05);
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200_000;
        let losses = (0..n).filter(|_| m.sample(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_p() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    fn gilbert_elliott_mean_matches_stationary() {
        let mut m = LossModel::gilbert_elliott(0.01, 0.2, 0.0005, 0.3);
        let want = m.mean_loss();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 500_000;
        let losses = (0..n).filter(|_| m.sample(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!(
            (rate - want).abs() < 0.01,
            "empirical {rate} vs stationary {want}"
        );
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Burst (consecutive-loss run) lengths should exceed Bernoulli's
        // at the same mean loss.
        let mut ge = LossModel::gilbert_elliott(0.005, 0.1, 0.0, 0.5);
        let mean = ge.mean_loss();
        let mut be = LossModel::bernoulli(mean);
        let mut rng = SmallRng::seed_from_u64(11);

        let mean_burst = |m: &mut LossModel, rng: &mut SmallRng| {
            let (mut bursts, mut losses, mut in_burst) = (0u64, 0u64, false);
            for _ in 0..400_000 {
                if m.sample(rng) {
                    losses += 1;
                    if !in_burst {
                        bursts += 1;
                        in_burst = true;
                    }
                } else {
                    in_burst = false;
                }
            }
            losses as f64 / bursts.max(1) as f64
        };
        let ge_burst = mean_burst(&mut ge, &mut rng);
        let be_burst = mean_burst(&mut be, &mut rng);
        assert!(
            ge_burst > be_burst * 1.3,
            "GE bursts {ge_burst} not longer than Bernoulli {be_burst}"
        );
    }

    #[test]
    fn ge_degenerate_never_transitions() {
        let m = LossModel::gilbert_elliott(0.0, 0.0, 0.01, 0.9);
        // Stays in Good forever: mean loss equals loss_good.
        assert!((m.mean_loss() - 0.01).abs() < 1e-12);
    }
}
