//! Per-link counters, exposed for experiment reporting and assertions.
//!
//! All mutation goes through saturating helpers: a counter that pegs at
//! `u64::MAX` in a pathological soak is a readable artifact, while a
//! wrapping counter silently corrupts every report derived from it.

/// Counters accumulated by a link over a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted for transmission (started or queued).
    pub tx_packets: u64,
    /// Wire bytes accepted for transmission.
    pub tx_bytes: u64,
    /// Packets dropped by drop-tail queue overflow.
    pub drops_queue: u64,
    /// Packets dropped by the stochastic loss model.
    pub drops_loss: u64,
    /// Packets discarded by fault injection: offered to a down link,
    /// flushed from a failed link/node queue, mid-serialization when the
    /// fault hit, or arriving at a crashed node.
    pub drops_fault: u64,
    /// High-water mark of queued (waiting) bytes.
    pub max_queue_bytes: u64,
    /// High-water mark of queued (waiting) packets — the queue-depth
    /// signal the observability plane exports per link.
    pub max_queue_pkts: u64,
}

impl LinkStats {
    /// Record a packet accepted for transmission (saturating).
    pub fn on_accept(&mut self, wire_bytes: u64) {
        self.tx_packets = self.tx_packets.saturating_add(1);
        self.tx_bytes = self.tx_bytes.saturating_add(wire_bytes);
    }

    /// Record a drop-tail queue overflow (saturating).
    pub fn on_drop_queue(&mut self) {
        self.drops_queue = self.drops_queue.saturating_add(1);
    }

    /// Record a stochastic loss (saturating).
    pub fn on_drop_loss(&mut self) {
        self.drops_loss = self.drops_loss.saturating_add(1);
    }

    /// Record a fault-injection discard (saturating).
    pub fn on_drop_fault(&mut self) {
        self.drops_fault = self.drops_fault.saturating_add(1);
    }

    /// Raise the queue-depth high-watermarks to the current occupancy.
    pub fn observe_queue_depth(&mut self, queued_bytes: u64, queued_pkts: u64) {
        self.max_queue_bytes = self.max_queue_bytes.max(queued_bytes);
        self.max_queue_pkts = self.max_queue_pkts.max(queued_pkts);
    }

    /// Total drops from any cause (saturating).
    pub fn drops(&self) -> u64 {
        self.drops_queue
            .saturating_add(self.drops_loss)
            .saturating_add(self.drops_fault)
    }

    /// Fraction of accepted packets that were lost in flight.
    pub fn loss_rate(&self) -> f64 {
        if self.tx_packets == 0 {
            0.0
        } else {
            self.drops_loss as f64 / self.tx_packets as f64
        }
    }

    /// Export the counters as end-of-run `lsl-obs` gauges keyed by the
    /// link's raw id. Lives next to the counters it publishes so the
    /// metric set and the struct stay in lockstep.
    pub fn export_obs(&self, link_key: u64) {
        lsl_obs::gauge_set(
            "netsim.link.queue_bytes_hwm",
            link_key,
            self.max_queue_bytes,
        );
        lsl_obs::gauge_set("netsim.link.queue_pkts_hwm", link_key, self.max_queue_pkts);
        lsl_obs::gauge_set("netsim.link.tx_packets", link_key, self.tx_packets);
        lsl_obs::gauge_set("netsim.link.drops_queue", link_key, self.drops_queue);
        lsl_obs::gauge_set("netsim.link.drops_loss", link_key, self.drops_loss);
        lsl_obs::gauge_set("netsim.link.drops_fault", link_key, self.drops_fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_sum() {
        let s = LinkStats {
            drops_queue: 3,
            drops_loss: 4,
            drops_fault: 2,
            ..Default::default()
        };
        assert_eq!(s.drops(), 9);
    }

    #[test]
    fn drops_saturate_instead_of_wrapping() {
        let s = LinkStats {
            drops_queue: u64::MAX,
            drops_loss: 4,
            drops_fault: 2,
            ..Default::default()
        };
        assert_eq!(s.drops(), u64::MAX);
    }

    #[test]
    fn mutation_helpers_saturate() {
        let mut s = LinkStats {
            tx_packets: u64::MAX,
            tx_bytes: u64::MAX - 1,
            drops_fault: u64::MAX,
            ..Default::default()
        };
        s.on_accept(10);
        s.on_drop_fault();
        assert_eq!(s.tx_packets, u64::MAX);
        assert_eq!(s.tx_bytes, u64::MAX);
        assert_eq!(s.drops_fault, u64::MAX);
    }

    #[test]
    fn queue_depth_high_watermarks() {
        let mut s = LinkStats::default();
        s.observe_queue_depth(100, 2);
        s.observe_queue_depth(300, 5);
        s.observe_queue_depth(50, 1);
        assert_eq!(s.max_queue_bytes, 300);
        assert_eq!(s.max_queue_pkts, 5);
    }

    #[test]
    fn loss_rate_handles_zero_traffic() {
        assert_eq!(LinkStats::default().loss_rate(), 0.0);
        let s = LinkStats {
            tx_packets: 100,
            drops_loss: 5,
            ..Default::default()
        };
        assert!((s.loss_rate() - 0.05).abs() < 1e-12);
    }
}
