//! Per-link counters, exposed for experiment reporting and assertions.

/// Counters accumulated by a link over a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted for transmission (started or queued).
    pub tx_packets: u64,
    /// Wire bytes accepted for transmission.
    pub tx_bytes: u64,
    /// Packets dropped by drop-tail queue overflow.
    pub drops_queue: u64,
    /// Packets dropped by the stochastic loss model.
    pub drops_loss: u64,
    /// Packets discarded by fault injection: offered to a down link,
    /// flushed from a failed link/node queue, mid-serialization when the
    /// fault hit, or arriving at a crashed node.
    pub drops_fault: u64,
    /// High-water mark of queued (waiting) bytes.
    pub max_queue_bytes: u64,
}

impl LinkStats {
    /// Total drops from any cause.
    pub fn drops(&self) -> u64 {
        self.drops_queue + self.drops_loss + self.drops_fault
    }

    /// Fraction of accepted packets that were lost in flight.
    pub fn loss_rate(&self) -> f64 {
        if self.tx_packets == 0 {
            0.0
        } else {
            self.drops_loss as f64 / self.tx_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_sum() {
        let s = LinkStats {
            drops_queue: 3,
            drops_loss: 4,
            drops_fault: 2,
            ..Default::default()
        };
        assert_eq!(s.drops(), 9);
    }

    #[test]
    fn loss_rate_handles_zero_traffic() {
        assert_eq!(LinkStats::default().loss_rate(), 0.0);
        let s = LinkStats {
            tx_packets: 100,
            drops_loss: 5,
            ..Default::default()
        };
        assert!((s.loss_rate() - 0.05).abs() < 1e-12);
    }
}
