//! Unidirectional store-and-forward links with drop-tail queues.

use std::collections::VecDeque;

use crate::loss::LossModel;
use crate::packet::{LinkId, NodeId, Packet};
use crate::stats::LinkStats;
use crate::time::Dur;

/// Default drop-tail queue capacity: 256 KB, roughly 170 full-size
/// segments — a plausible router buffer for the paper's era.
pub const DEFAULT_QUEUE_BYTES: u64 = 256 * 1024;

/// Static description of a unidirectional link.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: Dur,
    /// Drop-tail FIFO capacity in bytes (queued, not counting the packet
    /// currently serializing).
    pub queue_bytes: u64,
    /// Stochastic loss process applied per transmitted packet.
    pub loss: LossModel,
}

impl LinkSpec {
    /// A clean link with the default queue and no stochastic loss.
    pub fn new(bandwidth_bps: u64, prop_delay: Dur) -> LinkSpec {
        LinkSpec {
            bandwidth_bps,
            prop_delay,
            queue_bytes: DEFAULT_QUEUE_BYTES,
            loss: LossModel::None,
        }
    }

    /// Builder-style loss model override.
    pub fn with_loss(mut self, loss: LossModel) -> LinkSpec {
        self.loss = loss;
        self
    }

    /// Builder-style queue capacity override.
    pub fn with_queue_bytes(mut self, bytes: u64) -> LinkSpec {
        self.queue_bytes = bytes;
        self
    }
}

/// Outcome of offering a packet to a link.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Enqueue {
    /// Link was idle: transmission starts now and completes after the
    /// returned serialization delay.
    Started(Dur),
    /// Packet queued behind others; a `TxDone` chain will reach it.
    Queued,
    /// Drop-tail overflow; packet discarded.
    Dropped,
}

/// Runtime state of a link inside the simulator.
pub(crate) struct Link {
    /// The link's own id, cached at construction so per-event stats/obs
    /// recording never re-derives it from a table position.
    pub id: LinkId,
    pub from: NodeId,
    pub to: NodeId,
    pub spec: LinkSpec,
    pub stats: LinkStats,
    /// FIFO of packets; front element is the one currently serializing
    /// when `busy` is true.
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    busy: bool,
    /// Fault-injection state: a down link accepts nothing and loses the
    /// frame it was serializing when the outage hit.
    up: bool,
    /// Conservation ledger (feature `invariants`): every wire byte a link
    /// accepts must be exactly one of delivered, lost, propagating, or
    /// still held (queued/serializing).
    #[cfg(feature = "invariants")]
    pub(crate) delivered_bytes: u64,
    #[cfg(feature = "invariants")]
    pub(crate) lost_bytes: u64,
    #[cfg(feature = "invariants")]
    pub(crate) inflight_bytes: u64,
}

impl Link {
    pub fn new(id: LinkId, from: NodeId, to: NodeId, spec: LinkSpec) -> Link {
        assert!(spec.bandwidth_bps > 0, "link bandwidth must be positive");
        Link {
            id,
            from,
            to,
            spec,
            stats: LinkStats::default(),
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            up: true,
            #[cfg(feature = "invariants")]
            delivered_bytes: 0,
            #[cfg(feature = "invariants")]
            lost_bytes: 0,
            #[cfg(feature = "invariants")]
            inflight_bytes: 0,
        }
    }

    /// Offer a packet. Queue accounting counts only *waiting* packets, so
    /// an idle link always accepts (matching a router that can always put
    /// one packet on the wire).
    pub fn enqueue(&mut self, packet: Packet) -> Enqueue {
        if !self.up {
            self.stats.on_drop_fault();
            return Enqueue::Dropped;
        }
        let size = packet.wire_len() as u64;
        if !self.busy {
            debug_assert!(self.queue.is_empty());
            self.busy = true;
            self.queue.push_back(packet);
            self.stats.on_accept(size);
            Enqueue::Started(Dur::serialization(size, self.spec.bandwidth_bps))
        } else if self.queued_bytes + size > self.spec.queue_bytes {
            self.stats.on_drop_queue();
            Enqueue::Dropped
        } else {
            self.queued_bytes += size;
            self.queue.push_back(packet);
            self.stats.on_accept(size);
            // Waiting packets only: the queue front is serializing.
            self.stats
                .observe_queue_depth(self.queued_bytes, (self.queue.len() - 1) as u64);
            Enqueue::Queued
        }
    }

    /// Current serialization finished: pop the transmitted packet and, if
    /// more are waiting, start the next one (returning its serialization
    /// delay).
    pub fn tx_done(&mut self) -> (Packet, Option<Dur>) {
        debug_assert!(self.busy);
        let done = self.queue.pop_front().expect("tx_done with empty queue");
        if let Some(next) = self.queue.front() {
            let size = next.wire_len() as u64;
            self.queued_bytes -= size;
            (
                done,
                Some(Dur::serialization(size, self.spec.bandwidth_bps)),
            )
        } else {
            self.busy = false;
            (done, None)
        }
    }

    /// Bytes currently waiting (excludes the serializing packet).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Byte conservation: accepted wire bytes must equal the sum of
    /// delivered, lost, propagating, and held bytes. Any drift means a
    /// packet was duplicated or silently vanished inside the engine.
    #[cfg(feature = "invariants")]
    pub(crate) fn check_conservation(&self, now: crate::time::Time) {
        let serializing = if self.busy {
            self.queue.front().map_or(0, |p| p.wire_len() as u64)
        } else {
            0
        };
        let accounted = self.delivered_bytes
            + self.lost_bytes
            + self.inflight_bytes
            + self.queued_bytes
            + serializing;
        crate::invariant!(
            self.stats.tx_bytes == accounted,
            now,
            "netsim::sim",
            "link-byte-conservation",
            "link {:?}->{:?}: accepted {} B but accounted {} B \
             (delivered {} + lost {} + in flight {} + held {})",
            self.from,
            self.to,
            self.stats.tx_bytes,
            accounted,
            self.delivered_bytes,
            self.lost_bytes,
            self.inflight_bytes,
            self.queued_bytes + serializing
        );
    }

    pub fn is_busy(&self) -> bool {
        self.busy
    }

    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Fault injection: the link goes down. Waiting packets are flushed
    /// (counted as `drops_fault`); the frame currently serializing stays
    /// at the queue front so its pending `TxDone` event finds it — the
    /// simulator discards it there because the link is down.
    pub(crate) fn set_down(&mut self, #[cfg(feature = "invariants")] now: crate::time::Time) {
        self.up = false;
        self.flush_queue(
            #[cfg(feature = "invariants")]
            now,
        );
    }

    /// Fault injection: the link carries traffic again.
    pub(crate) fn set_up(&mut self) {
        self.up = true;
    }

    /// Discard every *waiting* packet (the serializing one, if any, is
    /// owned by its pending `TxDone` event and must stay at the front).
    pub(crate) fn flush_queue(&mut self, #[cfg(feature = "invariants")] now: crate::time::Time) {
        let keep = usize::from(self.busy);
        while self.queue.len() > keep {
            let p = self.queue.pop_back().expect("len > keep");
            self.stats.on_drop_fault();
            #[cfg(feature = "invariants")]
            {
                self.lost_bytes += p.wire_len() as u64;
            }
            let _ = p;
        }
        self.queued_bytes = 0;
        #[cfg(feature = "invariants")]
        self.check_conservation(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(n: usize) -> Packet {
        Packet::tcp(
            NodeId(0),
            NodeId(1),
            Bytes::new(),
            Bytes::from(vec![0u8; n]),
        )
    }

    fn link(queue_bytes: u64) -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            LinkSpec::new(8_000_000, Dur::from_millis(1)).with_queue_bytes(queue_bytes),
        )
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = link(1000);
        // 962-byte wire packet at 8 Mbit/s = 962 us.
        match l.enqueue(pkt(962 - 38)) {
            Enqueue::Started(d) => assert_eq!(d, Dur::from_micros(962)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(l.is_busy());
        assert_eq!(l.queued_bytes(), 0);
    }

    #[test]
    fn fifo_order_and_tx_chain() {
        let mut l = link(1 << 20);
        assert!(matches!(l.enqueue(pkt(100)), Enqueue::Started(_)));
        assert_eq!(l.enqueue(pkt(200)), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(300)), Enqueue::Queued);
        let (p1, next) = l.tx_done();
        assert_eq!(p1.data.len(), 100);
        assert!(next.is_some());
        let (p2, next) = l.tx_done();
        assert_eq!(p2.data.len(), 200);
        assert!(next.is_some());
        let (p3, next) = l.tx_done();
        assert_eq!(p3.data.len(), 300);
        assert!(next.is_none());
        assert!(!l.is_busy());
    }

    #[test]
    fn drop_tail_overflow() {
        let mut l = link(500);
        assert!(matches!(l.enqueue(pkt(100)), Enqueue::Started(_)));
        // 400-byte payload → 438 wire bytes fits in 500.
        assert_eq!(l.enqueue(pkt(400)), Enqueue::Queued);
        // Next packet would exceed the 500-byte queue: dropped.
        assert_eq!(l.enqueue(pkt(100)), Enqueue::Dropped);
        assert_eq!(l.stats.drops_queue, 1);
        assert_eq!(l.stats.tx_packets, 2);
    }

    #[test]
    fn queue_bytes_tracks_waiting_only() {
        let mut l = link(1 << 20);
        l.enqueue(pkt(62)); // serializing, not queued
        assert_eq!(l.queued_bytes(), 0);
        l.enqueue(pkt(62)); // 100 wire bytes waiting
        assert_eq!(l.queued_bytes(), 100);
        l.tx_done();
        assert_eq!(l.queued_bytes(), 0);
    }

    #[test]
    fn stats_max_queue_high_water() {
        let mut l = link(1 << 20);
        l.enqueue(pkt(62));
        l.enqueue(pkt(62));
        l.enqueue(pkt(62));
        assert_eq!(l.stats.max_queue_bytes, 200);
        assert_eq!(l.stats.max_queue_pkts, 2, "serializing packet not counted");
        l.tx_done();
        l.enqueue(pkt(62));
        // High-water marks persist.
        assert_eq!(l.stats.max_queue_bytes, 200);
        assert_eq!(l.stats.max_queue_pkts, 2);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(LinkId(0), NodeId(0), NodeId(1), LinkSpec::new(0, Dur::ZERO));
    }
}
