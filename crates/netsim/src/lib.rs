//! Deterministic discrete-event packet network simulator.
//!
//! This crate is the substrate that replaces the paper's physical testbed
//! (Abilene paths between UCSB, UIUC, UF, OSU and UTK). It models:
//!
//! * **store-and-forward links** with a transmission rate (serialization
//!   delay), propagation delay and a bounded drop-tail FIFO queue,
//! * **stochastic loss** (Bernoulli for wide-area paths, Gilbert–Elliott
//!   for the bursty 802.11b wireless edge of the paper's case 3),
//! * **nodes** with static routing tables (hosts and routers), and
//! * **timers** for protocols built on top (TCP RTO, delayed ACK, ...).
//!
//! The simulator is *pull-driven*: protocol stacks call [`Simulator::next`]
//! in a loop and receive [`Output`] values (packet deliveries and timer
//! expiries) to act on, then inject new packets with [`Simulator::send`].
//! This inversion keeps the simulator free of callbacks and lets the TCP
//! and LSL layers own their state without `RefCell` webs.
//!
//! Determinism: all randomness (loss draws) comes from a single seeded
//! PRNG, and events at equal timestamps are dispatched in insertion
//! order, so a given (topology, workload, seed) triple always produces a
//! bit-identical execution.

#[cfg(feature = "invariants")]
pub mod invariants;

mod fault;
mod link;
mod loss;
mod packet;
mod sched;
mod sim;
mod stats;
mod storm;
mod time;
mod topo;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use link::{LinkSpec, DEFAULT_QUEUE_BYTES};
pub use loss::LossModel;
pub use packet::{LinkId, NodeId, Packet, PROTO_TCP};
pub use sim::{Output, PathProbe, Simulator, TimerHandle};
pub use stats::LinkStats;
pub use storm::{fault_kind_name, fault_plan_of, FaultStormGen, StormAtom, StormPlan, StormSpec};
pub use time::{Dur, Time};
pub use topo::{Topology, TopologyBuilder};
