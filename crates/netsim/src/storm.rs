//! Seeded chaos-storm synthesis: arbitrary *valid* fault schedules.
//!
//! A [`FaultStormGen`] turns a `u64` seed into a [`StormPlan`] — a
//! random but well-formed combination of link flaps, depot
//! crash/restarts, and sublink resets drawn from a [`StormSpec`]'s
//! target sets. Validity is *by construction*, not by filtering: each
//! [`StormAtom`] pairs an outage with its repair (or explicitly marks
//! it permanent), so a lowered [`FaultPlan`] can never contain an
//! orphaned `LinkUp`, a repair that precedes its failure, or an entry
//! that fires more than once.
//!
//! The same seed always yields the same storm (the generator uses the
//! workspace's deterministic `SmallRng`), which is what makes chaos
//! soaks reproducible: a failing seed *is* the bug report, and
//! [`StormPlan::drill`] renders any storm — including a shrunk one — as
//! a paste-able `FaultPlan` builder chain for a regression drill.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultKind, FaultPlan};
use crate::packet::{LinkId, NodeId};
use crate::time::{Dur, Time};

/// What a storm is allowed to break: the target sets and the
/// temporal/size envelope every generated storm stays inside.
#[derive(Clone, Debug)]
pub struct StormSpec {
    /// Links eligible for flaps and permanent outages.
    pub links: Vec<LinkId>,
    /// Nodes eligible for crash/restart (typically depots).
    pub crash_nodes: Vec<NodeId>,
    /// Nodes whose established connections may be reset (typically the
    /// session endpoints — the paper's "sublink RST").
    pub rst_nodes: Vec<NodeId>,
    /// Every atom fires within `[0, horizon)` of simulation start.
    pub horizon: Dur,
    /// Ceiling for transient outage / downtime durations.
    pub max_outage: Dur,
    /// Atom count range (inclusive).
    pub min_atoms: usize,
    pub max_atoms: usize,
    /// Probability an outage is permanent (no paired repair).
    pub permanent_p: f64,
}

impl StormSpec {
    /// A spec with an empty target set and drill-scale defaults: up to
    /// four atoms in a 2-second window, outages up to 500 ms, one in
    /// four permanent. Add targets with the `with_*` methods.
    pub fn new(horizon: Dur) -> StormSpec {
        StormSpec {
            links: Vec::new(),
            crash_nodes: Vec::new(),
            rst_nodes: Vec::new(),
            horizon,
            max_outage: Dur::from_millis(500),
            min_atoms: 1,
            max_atoms: 4,
            permanent_p: 0.25,
        }
    }

    pub fn with_links(mut self, links: Vec<LinkId>) -> StormSpec {
        self.links = links;
        self
    }

    pub fn with_crash_nodes(mut self, nodes: Vec<NodeId>) -> StormSpec {
        self.crash_nodes = nodes;
        self
    }

    pub fn with_rst_nodes(mut self, nodes: Vec<NodeId>) -> StormSpec {
        self.rst_nodes = nodes;
        self
    }

    pub fn with_max_outage(mut self, d: Dur) -> StormSpec {
        self.max_outage = d;
        self
    }

    pub fn with_atoms(mut self, min: usize, max: usize) -> StormSpec {
        self.min_atoms = min;
        self.max_atoms = max;
        self
    }

    pub fn with_permanent_p(mut self, p: f64) -> StormSpec {
        self.permanent_p = p;
        self
    }
}

/// One storm action. Failure and repair travel as a single atom —
/// `outage`/`downtime` of `None` means the damage is permanent — so a
/// storm can be cut apart (for shrinking) without ever separating a
/// `Down` from its `Up`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StormAtom {
    /// Link goes down at `at`; back up `outage` later (never, if None).
    LinkFlap {
        link: LinkId,
        at: Dur,
        outage: Option<Dur>,
    },
    /// Node crashes at `at`; restarts `downtime` later (never, if None).
    NodeCrash {
        node: NodeId,
        at: Dur,
        downtime: Option<Dur>,
    },
    /// The node's established connections are reset at `at`.
    SublinkRst { node: NodeId, at: Dur },
}

impl StormAtom {
    /// When the atom's (first) fault fires, relative to sim start.
    pub fn at(&self) -> Dur {
        match *self {
            StormAtom::LinkFlap { at, .. }
            | StormAtom::NodeCrash { at, .. }
            | StormAtom::SublinkRst { at, .. } => at,
        }
    }

    /// Append this atom's entries to a [`FaultPlan`] under construction.
    fn lower(&self, plan: FaultPlan) -> FaultPlan {
        let t = |d: Dur| Time::ZERO + d;
        match *self {
            StormAtom::LinkFlap {
                link,
                at,
                outage: Some(outage),
            } => plan.link_flap(t(at), link, outage),
            StormAtom::LinkFlap {
                link,
                at,
                outage: None,
            } => plan.link_down(t(at), link),
            StormAtom::NodeCrash {
                node,
                at,
                downtime: Some(downtime),
            } => plan.node_crash(t(at), node, downtime),
            StormAtom::NodeCrash {
                node,
                at,
                downtime: None,
            } => plan.node_down(t(at), node),
            StormAtom::SublinkRst { node, at } => plan.sublink_rst(t(at), node),
        }
    }

    /// The builder-call rendering used by [`StormPlan::drill`].
    fn drill_call(&self) -> String {
        let t = |d: Dur| format!("Time::ZERO + Dur::from_nanos({})", d.0);
        let dur = |d: Dur| format!("Dur::from_nanos({})", d.0);
        match *self {
            StormAtom::LinkFlap {
                link,
                at,
                outage: Some(o),
            } => format!(".link_flap({}, LinkId({}), {})", t(at), link.0, dur(o)),
            StormAtom::LinkFlap {
                link,
                at,
                outage: None,
            } => format!(".link_down({}, LinkId({}))", t(at), link.0),
            StormAtom::NodeCrash {
                node,
                at,
                downtime: Some(d),
            } => format!(".node_crash({}, NodeId({}), {})", t(at), node.0, dur(d)),
            StormAtom::NodeCrash {
                node,
                at,
                downtime: None,
            } => format!(".node_down({}, NodeId({}))", t(at), node.0),
            StormAtom::SublinkRst { node, at } => {
                format!(".sublink_rst({}, NodeId({}))", t(at), node.0)
            }
        }
    }
}

/// A generated storm: the seed it came from plus its atoms, ordered by
/// fire time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StormPlan {
    pub seed: u64,
    pub atoms: Vec<StormAtom>,
}

impl StormPlan {
    /// Lower the atoms to an installable [`FaultPlan`].
    pub fn to_fault_plan(&self) -> FaultPlan {
        fault_plan_of(&self.atoms)
    }

    /// The distinct [`FaultKind`] names this storm exercises (after
    /// lowering — a flap contributes both `LinkDown` and `LinkUp`).
    pub fn kinds(&self) -> BTreeSet<&'static str> {
        self.to_fault_plan()
            .entries()
            .iter()
            .map(|e| fault_kind_name(e.kind))
            .collect()
    }

    /// Paste-able regression drill: a `FaultPlan` builder chain
    /// reproducing exactly this storm's fault schedule.
    pub fn drill(&self) -> String {
        let mut s = format!("// storm seed {}\nFaultPlan::new()", self.seed);
        for atom in &self.atoms {
            s.push_str("\n    ");
            s.push_str(&atom.drill_call());
        }
        s
    }
}

/// Lower a slice of atoms to a [`FaultPlan`] — the shrinker works on
/// atom subsets, so lowering is exposed independently of [`StormPlan`].
pub fn fault_plan_of(atoms: &[StormAtom]) -> FaultPlan {
    atoms
        .iter()
        .fold(FaultPlan::new(), |plan, atom| atom.lower(plan))
}

/// Stable name of a [`FaultKind`] variant, for coverage accounting.
pub fn fault_kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::LinkDown(_) => "LinkDown",
        FaultKind::LinkUp(_) => "LinkUp",
        FaultKind::NodeDown(_) => "NodeDown",
        FaultKind::NodeUp(_) => "NodeUp",
        FaultKind::SublinkRst(_) => "SublinkRst",
    }
}

/// Which atom categories a spec can draw from.
#[derive(Clone, Copy)]
enum Category {
    Link,
    Crash,
    Rst,
}

/// Seeded storm generator over a [`StormSpec`].
pub struct FaultStormGen {
    spec: StormSpec,
}

impl FaultStormGen {
    /// # Panics
    ///
    /// On specs that cannot generate anything: no targets at all, an
    /// empty or inverted atom range, a zero horizon, or a permanence
    /// probability outside `[0, 1]`.
    pub fn new(spec: StormSpec) -> FaultStormGen {
        assert!(
            !(spec.links.is_empty() && spec.crash_nodes.is_empty() && spec.rst_nodes.is_empty()),
            "storm spec has no fault targets"
        );
        assert!(
            spec.min_atoms >= 1 && spec.min_atoms <= spec.max_atoms,
            "storm atom range must satisfy 1 <= min <= max"
        );
        assert!(!spec.horizon.is_zero(), "storm horizon must be non-zero");
        assert!(
            (0.0..=1.0).contains(&spec.permanent_p),
            "permanence probability must be in [0, 1]"
        );
        FaultStormGen { spec }
    }

    pub fn spec(&self) -> &StormSpec {
        &self.spec
    }

    /// Generate the storm for `seed`: deterministic, valid by
    /// construction, atoms ordered by fire time.
    pub fn generate(&self, seed: u64) -> StormPlan {
        let spec = &self.spec;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut categories = Vec::new();
        if !spec.links.is_empty() {
            categories.push(Category::Link);
        }
        if !spec.crash_nodes.is_empty() {
            categories.push(Category::Crash);
        }
        if !spec.rst_nodes.is_empty() {
            categories.push(Category::Rst);
        }
        let n = rng.random_range(spec.min_atoms..=spec.max_atoms);
        let mut atoms = Vec::with_capacity(n);
        for _ in 0..n {
            let at = Dur::from_nanos(rng.random_range(0..spec.horizon.0));
            let cat = categories[rng.random_range(0..categories.len())];
            atoms.push(match cat {
                Category::Link => {
                    let link = spec.links[rng.random_range(0..spec.links.len())];
                    let outage = Self::repair(&mut rng, spec);
                    StormAtom::LinkFlap { link, at, outage }
                }
                Category::Crash => {
                    let node = spec.crash_nodes[rng.random_range(0..spec.crash_nodes.len())];
                    let downtime = Self::repair(&mut rng, spec);
                    StormAtom::NodeCrash { node, at, downtime }
                }
                Category::Rst => StormAtom::SublinkRst {
                    node: spec.rst_nodes[rng.random_range(0..spec.rst_nodes.len())],
                    at,
                },
            });
        }
        atoms.sort_by_key(StormAtom::at);
        StormPlan { seed, atoms }
    }

    /// Draw a repair delay, or `None` for permanent damage.
    fn repair(rng: &mut SmallRng, spec: &StormSpec) -> Option<Dur> {
        if rng.random_bool(spec.permanent_p) {
            None
        } else {
            Some(Dur::from_nanos(rng.random_range(1..=spec.max_outage.0)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StormSpec {
        StormSpec::new(Dur::from_secs(2))
            .with_links(vec![LinkId(0), LinkId(1), LinkId(2)])
            .with_crash_nodes(vec![NodeId(3), NodeId(4)])
            .with_rst_nodes(vec![NodeId(0)])
            .with_atoms(1, 5)
    }

    #[test]
    fn same_seed_same_storm() {
        let g = FaultStormGen::new(spec());
        for seed in 0..32 {
            assert_eq!(g.generate(seed), g.generate(seed));
        }
    }

    #[test]
    fn seeds_produce_distinct_storms() {
        let g = FaultStormGen::new(spec());
        let distinct: BTreeSet<String> = (0..64).map(|s| format!("{:?}", g.generate(s))).collect();
        assert!(
            distinct.len() > 48,
            "only {} distinct storms in 64 seeds",
            distinct.len()
        );
    }

    #[test]
    fn atoms_respect_the_spec_envelope() {
        let g = FaultStormGen::new(spec());
        let s = g.spec().clone();
        for seed in 0..256 {
            let plan = g.generate(seed);
            assert!((s.min_atoms..=s.max_atoms).contains(&plan.atoms.len()));
            assert!(plan.atoms.windows(2).all(|w| w[0].at() <= w[1].at()));
            for atom in &plan.atoms {
                assert!(atom.at() < s.horizon);
                match *atom {
                    StormAtom::LinkFlap { link, outage, .. } => {
                        assert!(s.links.contains(&link));
                        assert!(outage.is_none_or(|o| !o.is_zero() && o <= s.max_outage));
                    }
                    StormAtom::NodeCrash { node, downtime, .. } => {
                        assert!(s.crash_nodes.contains(&node));
                        assert!(downtime.is_none_or(|d| !d.is_zero() && d <= s.max_outage));
                    }
                    StormAtom::SublinkRst { node, .. } => {
                        assert!(s.rst_nodes.contains(&node));
                    }
                }
            }
        }
    }

    #[test]
    fn lowering_pairs_every_repair_with_its_failure() {
        let g = FaultStormGen::new(spec());
        for seed in 0..256 {
            let fp = g.generate(seed).to_fault_plan();
            // Scan entries: every Up must have a pending Down for the
            // same target, scheduled no later than the Up.
            let mut pending_down: Vec<(FaultKind, Time)> = Vec::new();
            for e in fp.entries() {
                match e.kind {
                    FaultKind::LinkUp(l) => {
                        let i = pending_down
                            .iter()
                            .position(|(k, _)| *k == FaultKind::LinkDown(l))
                            .expect("LinkUp without LinkDown");
                        assert!(pending_down.remove(i).1 <= e.at);
                    }
                    FaultKind::NodeUp(nd) => {
                        let i = pending_down
                            .iter()
                            .position(|(k, _)| *k == FaultKind::NodeDown(nd))
                            .expect("NodeUp without NodeDown");
                        assert!(pending_down.remove(i).1 <= e.at);
                    }
                    k @ (FaultKind::LinkDown(_) | FaultKind::NodeDown(_)) => {
                        pending_down.push((k, e.at));
                    }
                    FaultKind::SublinkRst(_) => {}
                }
            }
        }
    }

    #[test]
    fn drill_renders_every_atom_as_a_builder_call() {
        let g = FaultStormGen::new(spec());
        let plan = g.generate(7);
        let drill = plan.drill();
        assert!(drill.contains("seed 7"));
        assert!(drill.contains("FaultPlan::new()"));
        let calls = drill.matches("\n    .").count();
        assert_eq!(calls, plan.atoms.len());
    }

    #[test]
    fn kinds_accounts_for_lowered_entries() {
        let plan = StormPlan {
            seed: 0,
            atoms: vec![
                StormAtom::LinkFlap {
                    link: LinkId(0),
                    at: Dur::from_millis(1),
                    outage: Some(Dur::from_millis(2)),
                },
                StormAtom::NodeCrash {
                    node: NodeId(1),
                    at: Dur::from_millis(3),
                    downtime: None,
                },
                StormAtom::SublinkRst {
                    node: NodeId(0),
                    at: Dur::from_millis(4),
                },
            ],
        };
        let kinds = plan.kinds();
        assert!(kinds.contains("LinkDown"));
        assert!(kinds.contains("LinkUp"));
        assert!(kinds.contains("NodeDown"));
        assert!(!kinds.contains("NodeUp"), "permanent crash has no NodeUp");
        assert!(kinds.contains("SublinkRst"));
    }

    #[test]
    #[should_panic(expected = "no fault targets")]
    fn empty_spec_rejected() {
        let _ = FaultStormGen::new(StormSpec::new(Dur::from_secs(1)));
    }

    #[test]
    #[should_panic(expected = "atom range")]
    fn inverted_atom_range_rejected() {
        let _ = FaultStormGen::new(
            StormSpec::new(Dur::from_secs(1))
                .with_links(vec![LinkId(0)])
                .with_atoms(3, 2),
        );
    }
}
