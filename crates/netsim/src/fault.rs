//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seed-independent schedule of failure events —
//! link outages, node crashes/restarts, and sublink-reset signals —
//! installed into a [`crate::Simulator`] before the run starts. Each
//! entry is scheduled on the ordinary event scheduler, so faults interleave
//! with traffic in the same deterministic `(time, insertion-seq)` order
//! as everything else: the same plan against the same seed yields a
//! byte-identical trace, faults included.
//!
//! Every entry fires **exactly once** at its scheduled time and is
//! surfaced to the protocol layer as [`crate::Output::Fault`], so upper
//! layers (TCP stacks, the LSL session recovery driver) can react — kill
//! sockets on a crash, start reconnect backoff on a flap — without the
//! simulator knowing anything about them.

use crate::packet::{LinkId, NodeId};
use crate::time::{Dur, Time};

/// What kind of failure (or repair) happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The link stops carrying traffic: waiting packets are discarded,
    /// the packet mid-serialization is lost at its `TxDone`, and new
    /// offers are dropped until a matching [`FaultKind::LinkUp`].
    /// Packets already propagating (past the transmitter) still arrive —
    /// the bits were on the wire.
    LinkDown(LinkId),
    /// The link carries traffic again.
    LinkUp(LinkId),
    /// The node crashes: packets arriving at it (as destination or
    /// forwarder) are discarded, its outgoing queues are flushed, and it
    /// neither sends nor forwards until [`FaultKind::NodeUp`]. Volatile
    /// state (TCP stacks, relay buffers) is the upper layers' to kill —
    /// they observe the fault via [`crate::Output::Fault`].
    NodeDown(NodeId),
    /// The node restarts with empty volatile state.
    NodeUp(NodeId),
    /// An abrupt reset signal for the node's established transport
    /// connections (the paper's "sublink RST"). The simulator's own
    /// state is untouched; the TCP layer acts on the surfaced event.
    SublinkRst(NodeId),
}

impl FaultKind {
    /// Stable small index per variant, used as the metric key for
    /// per-kind telemetry tallies (`lsl-obs` counters are keyed by a
    /// static name plus a `u64` index).
    pub fn index(self) -> u64 {
        match self {
            FaultKind::LinkDown(_) => 0,
            FaultKind::LinkUp(_) => 1,
            FaultKind::NodeDown(_) => 2,
            FaultKind::NodeUp(_) => 3,
            FaultKind::SublinkRst(_) => 4,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: Time,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, built up in fluent style and
/// installed with [`crate::Simulator::install_faults`]. Entries fire in
/// `(time, insertion-order)` order, each exactly once.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    entries: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule an arbitrary fault.
    pub fn at(mut self, at: Time, kind: FaultKind) -> FaultPlan {
        self.entries.push(FaultEvent { at, kind });
        self
    }

    /// Link goes down at `at` and stays down.
    pub fn link_down(self, at: Time, link: LinkId) -> FaultPlan {
        self.at(at, FaultKind::LinkDown(link))
    }

    /// Link comes (back) up at `at`.
    pub fn link_up(self, at: Time, link: LinkId) -> FaultPlan {
        self.at(at, FaultKind::LinkUp(link))
    }

    /// Transient outage: down at `at`, up again `outage` later.
    pub fn link_flap(self, at: Time, link: LinkId, outage: Dur) -> FaultPlan {
        self.link_down(at, link).link_up(at + outage, link)
    }

    /// Node crashes at `at` and stays down.
    pub fn node_down(self, at: Time, node: NodeId) -> FaultPlan {
        self.at(at, FaultKind::NodeDown(node))
    }

    /// Node restarts at `at`.
    pub fn node_up(self, at: Time, node: NodeId) -> FaultPlan {
        self.at(at, FaultKind::NodeUp(node))
    }

    /// Crash at `at`, restart `downtime` later.
    pub fn node_crash(self, at: Time, node: NodeId, downtime: Dur) -> FaultPlan {
        self.node_down(at, node).node_up(at + downtime, node)
    }

    /// Reset the node's established transport connections at `at`.
    pub fn sublink_rst(self, at: Time, node: NodeId) -> FaultPlan {
        self.at(at, FaultKind::SublinkRst(node))
    }

    /// Scheduled entries in insertion order.
    pub fn entries(&self) -> &[FaultEvent] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn into_entries(self) -> Vec<FaultEvent> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_insertion_order() {
        let t = |ms| Time::ZERO + Dur::from_millis(ms);
        let plan = FaultPlan::new()
            .link_flap(t(10), LinkId(3), Dur::from_millis(5))
            .node_crash(t(2), NodeId(1), Dur::from_millis(100))
            .sublink_rst(t(7), NodeId(2));
        let kinds: Vec<FaultKind> = plan.entries().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::LinkDown(LinkId(3)),
                FaultKind::LinkUp(LinkId(3)),
                FaultKind::NodeDown(NodeId(1)),
                FaultKind::NodeUp(NodeId(1)),
                FaultKind::SublinkRst(NodeId(2)),
            ]
        );
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.entries()[1].at, t(15));
    }

    #[test]
    fn empty_plan() {
        assert!(FaultPlan::new().is_empty());
    }
}
