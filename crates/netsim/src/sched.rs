//! The two-tier event scheduler: hierarchical timer wheels over a
//! generation-stamped payload arena.
//!
//! The engine's old scheduler was a single `BinaryHeap` whose entries
//! carried the full event payload: every push/pop memmoved ~96 bytes
//! per sift step, cancelled timers sat in the heap until popped, and
//! cost grew O(log n) with *total* pending events — the structure that
//! capped ROADMAP's million-session ambitions. This module replaces it
//! with:
//!
//! * an **arena**: payloads live in generation-stamped slots
//!   ([`Scheduler::insert`] hands back the slot id); everything the
//!   ordering structures move is a 24-byte [`Entry`] `(time, seq,
//!   slot, gen)`.
//! * two **hierarchical timer wheels** (one per [`Class`]): 64-bucket
//!   levels of power-of-two tick width, each level 64× coarser than
//!   the one below. Inserts are O(1); the cursor advances lazily to
//!   the next occupied bucket via per-level occupancy bitmaps, pouring
//!   coarse buckets into finer ones as their window opens (cascade).
//!   The `Timer` wheel is tuned for RTO-scale delays (131 µs ticks,
//!   3 levels ≈ 34 s span); the `Link` wheel is the near-horizon
//!   *calendar* for serialization/propagation events (16 µs ticks,
//!   2 levels ≈ 67 ms span).
//! * a per-wheel **overflow heap** for entries beyond the wheel's
//!   span; batches are pulled into the wheel as the cursor reaches
//!   them. Only far-future entries (long fault schedules, idle
//!   watchdogs) ever touch it.
//!
//! **Cancellation is purge-on-cancel**: [`Scheduler::cancel`] removes
//! the entry from its bucket (or the sorted drain run) immediately and
//! frees the arena slot, so cancelled timers cost nothing at pop time.
//! Entries in the overflow heap are the one lazy case — they are
//! dropped, generation-mismatched, when the cursor would pull them.
//!
//! **Determinism.** Pop order is exactly global `(time, seq)` order —
//! byte-identical to the old heap (the golden FNV-1a traces pin this):
//!
//! 1. Bucket ranges partition time, and the cursor visits them in
//!    increasing order, so cross-bucket order is time order.
//! 2. A drained bucket is sorted by `(time, seq)` before its entries
//!    are surfaced; `seq` is a single global insertion counter shared
//!    by both wheels, so same-time entries keep insertion order.
//! 3. An insert at or before the cursor (always `>= now`) binary-
//!    inserts into the sorted drain run at its `(time, seq)` position.
//! 4. [`Scheduler::pop`] takes the smaller `(time, seq)` head of the
//!    two wheels, so classes interleave exactly as they did in one
//!    heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Buckets per wheel level; also the fan-out between levels.
const SLOTS: u64 = 64;
/// log2(SLOTS): bits of tick consumed per level.
const LEVEL_BITS: u32 = 6;

/// Event class, selecting which wheel an entry lives in. The split
/// lets each class get a tick size matched to its delay distribution
/// instead of one compromise granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Class {
    /// Protocol timers and scheduled faults: RTO-scale and longer.
    Timer = 0,
    /// Link serialization/propagation completions: µs–ms horizon.
    Link = 1,
}

/// The 24-byte hot entry the wheels and heaps actually move. `slot` /
/// `gen` name the arena cell holding the payload; a generation
/// mismatch at use time means the entry was cancelled (possible only
/// for overflow-heap residents — bucket entries are removed eagerly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Entry {
    at: u64,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Where an arena slot's entry currently sits, so cancellation can
/// remove it without a search through every structure. Kept current by
/// insert, cascade, overflow pull, and bucket drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    Bucket { wheel: u8, level: u8, idx: u8 },
    Run { wheel: u8 },
    Far { wheel: u8 },
}

struct ArenaSlot<T> {
    gen: u32,
    loc: Loc,
    val: Option<T>,
}

struct Level {
    /// Bit i set ⇔ `buckets[i]` is non-empty.
    occ: u64,
    buckets: [Vec<Entry>; SLOTS as usize],
}

impl Level {
    fn new() -> Level {
        Level {
            occ: 0,
            buckets: std::array::from_fn(|_| Vec::new()),
        }
    }
}

struct Wheel {
    /// log2 of the level-0 tick width in nanoseconds.
    shift: u32,
    levels: Vec<Level>,
    /// Entries beyond the wheel span; pulled in batches as the cursor
    /// reaches them. Cancelled members are dropped at pull time.
    far: BinaryHeap<Reverse<Entry>>,
    /// The drained front, sorted by `(time, seq)` **descending** so
    /// the minimum pops from the end.
    run: Vec<Entry>,
    /// Next level-0 tick not yet drained. All bucket entries have
    /// `tick >= cur`; run entries have `tick <= cur`.
    cur: u64,
    /// Live entries in buckets + run + far (cancelled far residents
    /// excluded: their count drops at cancel, the husk at pull).
    count: usize,
    /// Reusable cascade buffer.
    scratch: Vec<Entry>,
}

impl Wheel {
    fn new(shift: u32, num_levels: usize) -> Wheel {
        Wheel {
            shift,
            levels: (0..num_levels).map(|_| Level::new()).collect(),
            far: BinaryHeap::new(),
            run: Vec::new(),
            cur: 0,
            count: 0,
            scratch: Vec::new(),
        }
    }

    /// Ticks covered by the wheel levels before the overflow heap.
    #[inline]
    fn span(&self) -> u64 {
        SLOTS.pow(self.levels.len() as u32)
    }

    fn insert(&mut self, e: Entry, w: u8) -> Loc {
        self.count += 1;
        let tick = e.at >> self.shift;
        if tick <= self.cur {
            // At or behind the cursor (but always >= now): it belongs
            // in the sorted front. Entries equal to the cursor tick
            // could also use the level-0 bucket; the run keeps them
            // adjacent to the entries they'll pop among.
            let pos = self.run.partition_point(|x| x.key() > e.key());
            self.run.insert(pos, e);
            return Loc::Run { wheel: w };
        }
        let delta = tick - self.cur;
        let mut span = SLOTS;
        for (l, level) in self.levels.iter_mut().enumerate() {
            if delta < span {
                let shift_l = LEVEL_BITS * l as u32;
                let vt = tick >> shift_l;
                let idx = (vt % SLOTS) as usize;
                level.occ |= 1u64 << idx;
                level.buckets[idx].push(e);
                return Loc::Bucket {
                    wheel: w,
                    level: l as u8,
                    idx: idx as u8,
                };
            }
            span *= SLOTS;
        }
        self.far.push(Reverse(e));
        Loc::Far { wheel: w }
    }

    /// Fill `run` with the next due bucket (sorted), advancing the
    /// cursor, cascading coarse levels and pulling overflow batches as
    /// needed. No-op if the wheel is empty.
    fn refill<T>(&mut self, arena: &mut [ArenaSlot<T>], w: u8) {
        debug_assert!(self.run.is_empty());
        loop {
            // (a) Overflow entries whose tick the cursor has reached are
            // due *now*: merge them into the run (insert binary-places
            // them by (time, seq)) before anything surfaces, so they
            // interleave correctly with a bucket drained at the same
            // tick. Cancelled residents show up as generation
            // mismatches — drop the husks.
            while let Some(Reverse(top)) = self.far.peek() {
                if arena[top.slot as usize].gen != top.gen {
                    self.far.pop();
                    continue;
                }
                if top.at >> self.shift > self.cur {
                    break;
                }
                let Some(Reverse(e)) = self.far.pop() else {
                    unreachable!()
                };
                self.count -= 1; // re-insert re-counts
                let loc = self.insert(e, w);
                debug_assert!(matches!(loc, Loc::Run { .. }));
                arena[e.slot as usize].loc = loc;
            }
            // (b) Surface whatever a drain, cascade, or merge produced.
            if !self.run.is_empty() || self.count == 0 {
                return;
            }
            // (c) Candidate = earliest occupied bucket across levels;
            // ties prefer the coarsest level so it cascades before a
            // finer bucket at the same start tick is drained.
            let mut best: Option<(u64, usize)> = None;
            for (l, level) in self.levels.iter().enumerate() {
                if level.occ == 0 {
                    continue;
                }
                let shift_l = LEVEL_BITS * l as u32;
                // Window of level l in its own tick units: level 0
                // covers [cur, cur+64), coarser levels (cur_l, cur_l+64].
                let wl = if l == 0 {
                    self.cur
                } else {
                    (self.cur >> shift_l) + 1
                };
                let rot = level.occ.rotate_right((wl % 64) as u32);
                let off = u64::from(rot.trailing_zeros());
                let vt = wl + off;
                let tick = vt << shift_l;
                if best.is_none_or(|(bt, _)| tick <= bt) {
                    best = Some((tick, l));
                }
            }
            // (d) The overflow heap competes with the levels: an entry
            // that was far-future at insert time becomes *near*-future
            // as the cursor approaches, and must be pulled before the
            // cursor can step over it to a later bucket. Pull only when
            // *strictly* earlier than the best bucket: on a tie the
            // bucket is processed first (keeping every occupied bucket
            // strictly ahead of the cursor's window base), and step (a)
            // merges the same-tick overflow entries right after.
            let far_tick = self.far.peek().map(|Reverse(e)| e.at >> self.shift);
            if let Some(ft) = far_tick {
                if best.is_none_or(|(bt, _)| ft < bt) {
                    debug_assert!(ft > self.cur, "due overflow entry missed by merge");
                    self.cur = ft;
                    let horizon = self.cur.saturating_add(self.span());
                    while let Some(Reverse(top)) = self.far.peek() {
                        if top.at >> self.shift >= horizon {
                            break;
                        }
                        let Some(Reverse(e)) = self.far.pop() else {
                            unreachable!()
                        };
                        if arena[e.slot as usize].gen != e.gen {
                            continue; // cancelled while far
                        }
                        self.count -= 1; // re-insert re-counts
                        let loc = self.insert(e, w);
                        arena[e.slot as usize].loc = loc;
                    }
                    continue;
                }
            }
            let Some((tick, _)) = best else {
                // Levels and overflow both empty, yet count != 0: an
                // entry leaked out of every structure.
                debug_assert_eq!(self.count, 0, "live entries unreachable");
                return;
            };
            // (e) Advance to the due tick and open *every* bucket
            // anchored exactly there, coarsest first: a coarse bucket
            // cascades into finer levels, whose same-start buckets are
            // then opened in turn. Processing only one level would
            // strand a same-start bucket at another level behind the
            // cursor's window base. Entries landing exactly on `tick`
            // go to the run; the final sort restores (time, seq) order
            // across all sources.
            self.cur = tick;
            for l in (0..self.levels.len()).rev() {
                let shift_l = LEVEL_BITS * l as u32;
                let vt = tick >> shift_l;
                if vt << shift_l != tick {
                    continue; // no level-l bucket starts at this tick
                }
                let idx = (vt % SLOTS) as usize;
                if self.levels[l].occ & (1u64 << idx) == 0 {
                    continue;
                }
                self.levels[l].occ &= !(1u64 << idx);
                if l == 0 {
                    self.run.append(&mut self.levels[0].buckets[idx]);
                } else {
                    let mut s = std::mem::take(&mut self.scratch);
                    s.append(&mut self.levels[l].buckets[idx]);
                    for e in s.drain(..) {
                        self.count -= 1; // re-insert re-counts
                        let loc = self.insert(e, w);
                        arena[e.slot as usize].loc = loc;
                    }
                    self.scratch = s;
                }
            }
            // Descending, so the (time, seq) minimum is at the end;
            // keys are unique, unstable sort is safe.
            self.run.sort_unstable_by_key(|e| Reverse(e.key()));
            for e in &self.run {
                arena[e.slot as usize].loc = Loc::Run { wheel: w };
            }
            // Back to (a): overflow entries at this tick merge before
            // the run surfaces.
        }
    }

    /// `(time, seq)` of this wheel's earliest entry, refilling the run
    /// if needed.
    fn peek_key<T>(&mut self, arena: &mut [ArenaSlot<T>], w: u8) -> Option<(u64, u64)> {
        if self.run.is_empty() {
            self.refill(arena, w);
        }
        self.run.last().map(Entry::key)
    }

    /// Pop the head entry. Caller must have just seen it via
    /// [`Wheel::peek_key`].
    fn pop_head(&mut self) -> Entry {
        let e = self.run.pop().expect("pop_head after successful peek");
        self.count -= 1;
        e
    }

    /// Live entries whose arena payload satisfies `pred` (diagnostics:
    /// walks every structure).
    fn count_live_where<T>(&self, arena: &[ArenaSlot<T>], pred: &impl Fn(&T) -> bool) -> usize {
        let live = |e: &Entry| {
            let s = &arena[e.slot as usize];
            s.gen == e.gen && s.val.as_ref().is_some_and(pred)
        };
        let mut n = self.run.iter().filter(|e| live(e)).count();
        for level in &self.levels {
            for b in &level.buckets {
                n += b.iter().filter(|e| live(e)).count();
            }
        }
        n += self.far.iter().filter(|Reverse(e)| live(e)).count();
        n
    }
}

/// The scheduler: two wheels over one shared arena and one global
/// insertion-sequence counter.
pub(crate) struct Scheduler<T> {
    arena: Vec<ArenaSlot<T>>,
    free: Vec<u32>,
    wheels: [Wheel; 2],
    seq: u64,
}

/// Timer wheel: 2^17 ns ≈ 131 µs ticks, 3 levels ≈ 34.4 s span.
const TIMER_SHIFT: u32 = 17;
const TIMER_LEVELS: usize = 3;
/// Link calendar: 2^14 ns ≈ 16.4 µs ticks, 2 levels ≈ 67 ms span.
const LINK_SHIFT: u32 = 14;
const LINK_LEVELS: usize = 2;

impl<T> Scheduler<T> {
    pub fn new() -> Scheduler<T> {
        Scheduler {
            arena: Vec::with_capacity(256),
            free: Vec::with_capacity(64),
            wheels: [
                Wheel::new(TIMER_SHIFT, TIMER_LEVELS),
                Wheel::new(LINK_SHIFT, LINK_LEVELS),
            ],
            seq: 0,
        }
    }

    /// Schedule `val` at absolute time `at`. Returns the arena slot id
    /// (needed only by callers that may [`Scheduler::cancel`]).
    pub fn insert(&mut self, at: Time, class: Class, val: T) -> u32 {
        let slot = match self.free.pop() {
            Some(i) => {
                let s = &mut self.arena[i as usize];
                debug_assert!(s.val.is_none(), "free-listed arena slot still occupied");
                s.val = Some(val);
                i
            }
            None => {
                let i = self.arena.len() as u32;
                self.arena.push(ArenaSlot {
                    gen: 0,
                    loc: Loc::Far { wheel: 0 }, // placeholder, set below
                    val: Some(val),
                });
                i
            }
        };
        let gen = self.arena[slot as usize].gen;
        let e = Entry {
            at: at.0,
            seq: self.seq,
            slot,
            gen,
        };
        self.seq += 1;
        let w = class as usize;
        let loc = self.wheels[w].insert(e, w as u8);
        self.arena[slot as usize].loc = loc;
        slot
    }

    /// Purge-on-cancel: remove the slot's entry from its bucket or the
    /// drain run immediately and free the arena cell. Entries resident
    /// in an overflow heap are generation-invalidated instead and
    /// dropped when the cursor would pull them. Returns the payload;
    /// `None` if the slot is already vacant (fired or cancelled).
    pub fn cancel(&mut self, slot: u32) -> Option<T> {
        let s = &mut self.arena[slot as usize];
        let val = s.val.take()?;
        let loc = s.loc;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        match loc {
            Loc::Run { wheel } => {
                let wl = &mut self.wheels[wheel as usize];
                let pos = wl
                    .run
                    .iter()
                    .position(|e| e.slot == slot)
                    .expect("cancelled entry missing from run");
                wl.run.remove(pos); // keeps the run sorted
                wl.count -= 1;
            }
            Loc::Bucket { wheel, level, idx } => {
                let wl = &mut self.wheels[wheel as usize];
                let b = &mut wl.levels[level as usize].buckets[idx as usize];
                let pos = b
                    .iter()
                    .position(|e| e.slot == slot)
                    .expect("cancelled entry missing from bucket");
                b.swap_remove(pos); // bucket order is irrelevant until drain-sort
                if b.is_empty() {
                    wl.levels[level as usize].occ &= !(1u64 << idx);
                }
                wl.count -= 1;
            }
            Loc::Far { wheel } => {
                self.wheels[wheel as usize].count -= 1;
            }
        }
        Some(val)
    }

    /// Pop the globally earliest `(time, seq)` event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let (wheels, arena) = (&mut self.wheels, &mut self.arena);
        let [w0, w1] = wheels;
        let ka = w0.peek_key(arena, 0);
        let kb = w1.peek_key(arena, 1);
        let w = match (ka, kb) {
            (None, None) => return None,
            (Some(_), None) => 0,
            (None, Some(_)) => 1,
            (Some(a), Some(b)) => usize::from(a > b),
        };
        let e = wheels[w].pop_head();
        let s = &mut self.arena[e.slot as usize];
        debug_assert_eq!(s.gen, e.gen, "popped a stale entry");
        let val = s.val.take().expect("popped entry has no payload");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(e.slot);
        Some((Time(e.at), val))
    }

    /// Time of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<Time> {
        let (wheels, arena) = (&mut self.wheels, &mut self.arena);
        let [w0, w1] = wheels;
        let ka = w0.peek_key(arena, 0);
        let kb = w1.peek_key(arena, 1);
        match (ka, kb) {
            (None, None) => None,
            (Some(a), None) => Some(Time(a.0)),
            (None, Some(b)) => Some(Time(b.0)),
            (Some(a), Some(b)) => Some(Time(a.min(b).0)),
        }
    }

    /// Live scheduled entries (cancelled ones excluded).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.wheels[0].count + self.wheels[1].count
    }

    /// Live entries whose payload satisfies `pred` — the accounting
    /// probe behind the timer-leak assertion. Walks every bucket; for
    /// tests and periodic invariant checks, not the hot path.
    pub fn count_live_where(&self, pred: impl Fn(&T) -> bool) -> usize {
        self.wheels
            .iter()
            .map(|w| w.count_live_where(&self.arena, &pred))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time(ns)
    }

    /// Reference: drain the scheduler fully, returning payloads in pop
    /// order with their times.
    fn drain(s: &mut Scheduler<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, v)) = s.pop() {
            out.push((at.0, v));
        }
        out
    }

    /// Drain exactly `n` entries (asserts they exist).
    fn drain_n(s: &mut Scheduler<u64>, n: usize) -> Vec<(u64, u64)> {
        (0..n)
            .map(|_| {
                let (at, v) = s.pop().expect("drain_n underflow");
                (at.0, v)
            })
            .collect()
    }

    #[test]
    fn entry_is_24_bytes() {
        // The whole point of the arena split: the structures sift
        // 24-byte entries, never payloads.
        assert_eq!(std::mem::size_of::<Entry>(), 24);
    }

    #[test]
    fn pops_in_time_then_seq_order_across_classes() {
        let mut s = Scheduler::new();
        s.insert(t(5_000), Class::Link, 1u64);
        s.insert(t(5_000), Class::Timer, 2);
        s.insert(t(1_000), Class::Timer, 3);
        s.insert(t(5_000), Class::Link, 4);
        s.insert(t(200_000_000), Class::Timer, 5);
        assert_eq!(
            drain(&mut s),
            vec![
                (1_000, 3),
                (5_000, 1),
                (5_000, 2),
                (5_000, 4),
                (200_000_000, 5)
            ]
        );
    }

    #[test]
    fn spans_all_levels_and_far_heap() {
        let mut s = Scheduler::new();
        // level 0, level 1, level 2, and beyond-span (far) for the
        // timer wheel; plus a calendar event in between.
        let times = [
            100u64,            // level 0
            10_000_000,        // 10 ms: level 1
            2_000_000_000,     // 2 s: level 2
            60_000_000_000,    // 60 s: far (span ≈ 34 s)
            3_600_000_000_000, // 1 h: far
        ];
        for (i, &at) in times.iter().enumerate() {
            s.insert(t(at), Class::Timer, i as u64);
        }
        s.insert(t(500_000_000), Class::Link, 99);
        let got = drain(&mut s);
        assert_eq!(
            got,
            vec![
                (100, 0),
                (10_000_000, 1),
                (500_000_000, 99),
                (2_000_000_000, 2),
                (60_000_000_000, 3),
                (3_600_000_000_000, 4)
            ]
        );
    }

    #[test]
    fn cancel_purges_from_bucket_run_and_far() {
        let mut s = Scheduler::new();
        let a = s.insert(t(1_000), Class::Timer, 0u64); // near bucket
        let b = s.insert(t(1_000_000), Class::Timer, 1); // bucket
        let c = s.insert(t(90_000_000_000), Class::Timer, 2); // far
        let _d = s.insert(t(1_000), Class::Timer, 3); // same tick as a
        assert_eq!(s.len(), 4);
        assert_eq!(s.cancel(b), Some(1));
        assert_eq!(s.cancel(c), Some(2));
        assert_eq!(s.len(), 2);
        // Peek forces a into the run; cancelling there must also work.
        assert_eq!(s.peek_time(), Some(t(1_000)));
        assert_eq!(s.cancel(a), Some(0));
        assert_eq!(s.len(), 1);
        assert_eq!(drain(&mut s), vec![(1_000, 3)]);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn cancel_is_idempotent_and_slot_reuse_is_safe() {
        let mut s = Scheduler::new();
        let a = s.insert(t(1_000), Class::Timer, 7u64);
        assert_eq!(s.cancel(a), Some(7));
        assert_eq!(s.cancel(a), None, "second cancel is a no-op");
        // The freed slot is reused; cancelling the *old* id hits the
        // new entry only through the same slot — callers guard with
        // their own generation (the sim's TimerSlot gen); here we just
        // verify the arena recycles.
        let b = s.insert(t(2_000), Class::Timer, 8);
        assert_eq!(a, b, "slot free-list reuses the cell");
        assert_eq!(drain(&mut s), vec![(2_000, 8)]);
    }

    #[test]
    fn insert_behind_cursor_lands_in_sorted_run() {
        let mut s = Scheduler::new();
        s.insert(t(10_000_000), Class::Timer, 0u64);
        // Advance the wheel: peek pulls tick(10ms) into the run.
        assert_eq!(s.peek_time(), Some(t(10_000_000)));
        // Now insert earlier entries (>= now is the caller's contract;
        // the cursor is already past their ticks).
        s.insert(t(9_999_000), Class::Timer, 1);
        s.insert(t(9_998_000), Class::Timer, 2);
        s.insert(t(10_000_000), Class::Timer, 3); // same time, later seq
        assert_eq!(
            drain(&mut s),
            vec![
                (9_998_000, 2),
                (9_999_000, 1),
                (10_000_000, 0),
                (10_000_000, 3)
            ]
        );
    }

    #[test]
    fn far_pull_respects_order_and_drops_cancelled() {
        let mut s = Scheduler::new();
        let span_ns = 1u64 << (TIMER_SHIFT + 18); // beyond 34 s
        let a = s.insert(t(span_ns + 1_000), Class::Timer, 0u64);
        s.insert(t(span_ns + 2_000), Class::Timer, 1);
        s.insert(t(2 * span_ns), Class::Timer, 2);
        assert_eq!(s.cancel(a), Some(0));
        assert_eq!(drain(&mut s), vec![(span_ns + 2_000, 1), (2 * span_ns, 2)]);
    }

    #[test]
    fn count_live_where_sees_every_residence() {
        let mut s = Scheduler::new();
        s.insert(t(1_000), Class::Timer, 0u64);
        s.insert(t(50_000_000), Class::Timer, 1);
        s.insert(t(90_000_000_000), Class::Timer, 2); // far
        s.insert(t(2_000), Class::Link, 3);
        let f = s.insert(t(91_000_000_000), Class::Timer, 4); // far
        s.cancel(f);
        assert_eq!(s.count_live_where(|_| true), 4);
        assert_eq!(s.count_live_where(|v| *v >= 2), 2);
        s.peek_time(); // force runs to fill
        assert_eq!(s.count_live_where(|_| true), 4);
    }

    #[test]
    fn same_tick_split_across_levels_merges_in_order() {
        // Regression: an entry inserted early lands in a coarse level;
        // another inserted later (cursor closer) lands in level 0 of
        // the *same* tick. Opening only one of the two same-start
        // buckets strands the other behind the cursor window and pops
        // it out of order.
        let link_tick = 1u64 << LINK_SHIFT;
        let mut s = Scheduler::new();
        s.insert(t(143 * link_tick), Class::Link, 0u64);
        assert_eq!(drain_n(&mut s, 1), vec![(143 * link_tick, 0)]); // cur → 143
        let late = 448 * link_tick + 12_000;
        s.insert(t(late), Class::Link, 1); // delta 305 ticks → level 1
        s.insert(t(390 * link_tick), Class::Link, 2);
        assert_eq!(drain_n(&mut s, 1), vec![(390 * link_tick, 2)]); // cur → 390
        let early = 448 * link_tick + 100;
        s.insert(t(early), Class::Link, 3); // delta 58 ticks → level 0, same tick
        assert_eq!(drain(&mut s), vec![(early, 3), (late, 1)]);
    }

    #[test]
    fn dense_same_time_burst_keeps_insertion_order() {
        let mut s = Scheduler::new();
        for i in 0..500u64 {
            s.insert(t(1_000_000), Class::Timer, i);
        }
        let got = drain(&mut s);
        assert_eq!(got.len(), 500);
        for (i, (at, v)) in got.iter().enumerate() {
            assert_eq!((*at, *v), (1_000_000, i as u64));
        }
    }

    /// Model equivalence at the scheduler level: random programs of
    /// inserts (delays spanning every level and the far heap, including
    /// zero/equal times) and cancels must pop in exactly the reference
    /// heap's (time, seq) order.
    #[test]
    fn random_programs_match_reference_heap() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let mut s: Scheduler<u64> = Scheduler::new();
            let mut reference: Vec<(u64, u64, u64)> = Vec::new(); // (at, seq, token)
            let mut live: Vec<(u32, u64)> = Vec::new(); // (slot, seq)
            let mut seq = 0u64;
            let mut now = 0u64;
            let ops = 200 + round * 10;
            for _ in 0..ops {
                match rng() % 10 {
                    // Insert with a delay drawn from a level-spanning band.
                    0..=5 => {
                        let band = rng() % 6;
                        let delay = match band {
                            0 => 0,
                            1 => rng() % 1_000,
                            2 => rng() % 1_000_000,
                            3 => rng() % 100_000_000,
                            4 => rng() % 10_000_000_000,
                            _ => rng() % 100_000_000_000,
                        };
                        let at = now + delay;
                        let class = if rng() % 2 == 0 {
                            Class::Timer
                        } else {
                            Class::Link
                        };
                        let slot = s.insert(Time(at), class, seq);
                        reference.push((at, seq, seq));
                        live.push((slot, seq));
                        seq += 1;
                    }
                    // Cancel a random live entry.
                    6..=7 if !live.is_empty() => {
                        let i = (rng() % live.len() as u64) as usize;
                        let (slot, tok) = live.swap_remove(i);
                        assert_eq!(s.cancel(slot), Some(tok));
                        reference.retain(|&(_, _, t)| t != tok);
                    }
                    // Pop one event and advance `now`.
                    _ => {
                        reference.sort();
                        let expect = if reference.is_empty() {
                            None
                        } else {
                            Some(reference.remove(0))
                        };
                        match (s.pop(), expect) {
                            (Some((at, tok)), Some((eat, _, etok))) => {
                                assert_eq!((at.0, tok), (eat, etok), "round {round}");
                                now = at.0;
                                live.retain(|&(_, t)| t != tok);
                            }
                            (None, None) => {}
                            (got, want) => panic!("round {round}: {got:?} vs {want:?}"),
                        }
                    }
                }
            }
            // Full drain must match the remaining reference exactly.
            reference.sort();
            for (eat, _, etok) in reference {
                let (at, tok) = s.pop().expect("scheduler drained early");
                assert_eq!((at.0, tok), (eat, etok), "round {round} drain");
            }
            assert!(s.pop().is_none());
            assert_eq!(s.len(), 0);
        }
    }
}
