//! Topology construction and automatic shortest-path routing.

use std::collections::BinaryHeap;

use crate::link::{Link, LinkSpec};
use crate::packet::{LinkId, NodeId};
use crate::sim::Simulator;
use crate::time::Dur;

/// Incrementally describes a network; [`TopologyBuilder::build`] freezes
/// it into a [`Topology`] from which seeded simulators are minted.
#[derive(Default)]
pub struct TopologyBuilder {
    names: Vec<String>,
    links: Vec<(NodeId, NodeId, LinkSpec)>,
}

impl TopologyBuilder {
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Add a named node and return its id.
    pub fn node(&mut self, name: &str) -> NodeId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_string());
        id
    }

    /// Add a unidirectional link and return its id.
    pub fn simplex(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        assert_ne!(from, to, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push((from, to, spec));
        id
    }

    /// Add a symmetric pair of links and return `(a→b, b→a)`.
    pub fn duplex(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        let ab = self.simplex(a, b, spec.clone());
        let ba = self.simplex(b, a, spec);
        (ab, ba)
    }

    /// Asymmetric duplex: different specs per direction (used for the
    /// wireless edge where up/down differ).
    pub fn duplex_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        ab_spec: LinkSpec,
        ba_spec: LinkSpec,
    ) -> (LinkId, LinkId) {
        (self.simplex(a, b, ab_spec), self.simplex(b, a, ba_spec))
    }

    pub fn build(self) -> Topology {
        Topology {
            names: self.names,
            links: self.links,
        }
    }
}

/// A frozen network description. Seeded simulators are created with
/// [`Topology::into_sim`]; the topology itself can be reused across runs.
#[derive(Clone)]
pub struct Topology {
    names: Vec<String>,
    links: Vec<(NodeId, NodeId, LinkSpec)>,
}

impl Topology {
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Look up a node id by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Create a simulator with shortest-propagation-delay routes
    /// installed between every node pair (Dijkstra; each hop also charges
    /// a fixed per-hop cost so delay ties break toward fewer hops).
    pub fn into_sim(&self, seed: u64) -> Simulator {
        let mut sim = self.into_sim_without_routes(seed);
        let n = self.num_nodes();
        // adjacency: node -> [(neighbor, link, weight)]
        let mut adj: Vec<Vec<(usize, LinkId, u64)>> = vec![Vec::new(); n];
        for (idx, (from, to, spec)) in self.links.iter().enumerate() {
            // Weight: propagation delay plus 1us per hop tiebreaker.
            let w = spec.prop_delay.0 + 1_000;
            adj[from.0 as usize].push((to.0 as usize, LinkId(idx as u32), w));
        }
        for src in 0..n {
            // Dijkstra from src, keeping parent links so each node's
            // first hop can be recovered by walking back to src.
            let mut parent_link = vec![None; n];
            let mut dist2 = vec![u64::MAX; n];
            let mut heap = BinaryHeap::new();
            dist2[src] = 0;
            heap.push(std::cmp::Reverse((0u64, src)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                if d > dist2[u] {
                    continue;
                }
                for &(v, link, w) in &adj[u] {
                    let nd = d.saturating_add(w);
                    if nd < dist2[v] {
                        dist2[v] = nd;
                        parent_link[v] = Some((u, link));
                        heap.push(std::cmp::Reverse((nd, v)));
                    }
                }
            }
            for (dst, &dist) in dist2.iter().enumerate() {
                if dst == src || dist == u64::MAX {
                    continue;
                }
                // Walk back from dst to src to find the first hop.
                let mut cur = dst;
                let mut first = None;
                while cur != src {
                    let (prev, link) = parent_link[cur].expect("reachable node has parent");
                    first = Some(link);
                    cur = prev;
                }
                sim.set_route(
                    NodeId(src as u32),
                    NodeId(dst as u32),
                    first.expect("nonempty path"),
                );
            }
        }
        sim
    }

    /// Simulator with no routes (callers install them manually — used to
    /// model the paper's loose-source-route experiments and in tests).
    pub fn into_sim_without_routes(&self, seed: u64) -> Simulator {
        let links = self
            .links
            .iter()
            .enumerate()
            .map(|(i, (from, to, spec))| Link::new(LinkId(i as u32), *from, *to, spec.clone()))
            .collect();
        Simulator::new(self.num_nodes(), links, seed)
    }

    /// Sum of propagation delays along the currently shortest path
    /// (useful for calibration assertions in workloads).
    pub fn path_prop_delay(&self, src: NodeId, dst: NodeId) -> Option<Dur> {
        let n = self.num_nodes();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for (from, to, spec) in &self.links {
            adj[from.0 as usize].push((to.0 as usize, spec.prop_delay.0 + 1_000));
        }
        let mut dist = vec![u64::MAX; n];
        let mut prop = vec![0u64; n];
        let mut heap = BinaryHeap::new();
        dist[src.0 as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, src.0 as usize)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &adj[u] {
                let nd = d.saturating_add(w);
                if nd < dist[v] {
                    dist[v] = nd;
                    prop[v] = prop[u] + (w - 1_000);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        if dist[dst.0 as usize] == u64::MAX {
            None
        } else {
            Some(Dur(prop[dst.0 as usize]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;

    #[test]
    fn names_and_lookup() {
        let mut b = TopologyBuilder::new();
        let a = b.node("ucsb");
        let c = b.node("uiuc");
        b.duplex(a, c, LinkSpec::new(1_000_000, Dur::from_millis(1)));
        let t = b.build();
        assert_eq!(t.find("ucsb"), Some(a));
        assert_eq!(t.find("uiuc"), Some(c));
        assert_eq!(t.find("nope"), None);
        assert_eq!(t.node_name(a), "ucsb");
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut b = TopologyBuilder::new();
        b.node("x");
        b.node("x");
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        b.simplex(a, a, LinkSpec::new(1, Dur::ZERO));
    }

    #[test]
    fn dijkstra_prefers_lower_delay() {
        // a - b - c with a slow detour a - d - c.
        let mut b = TopologyBuilder::new();
        let na = b.node("a");
        let nb = b.node("b");
        let nc = b.node("c");
        let nd = b.node("d");
        let (ab, _) = b.duplex(na, nb, LinkSpec::new(1_000_000, Dur::from_millis(1)));
        b.duplex(nb, nc, LinkSpec::new(1_000_000, Dur::from_millis(1)));
        let (ad, _) = b.duplex(na, nd, LinkSpec::new(1_000_000, Dur::from_millis(50)));
        b.duplex(nd, nc, LinkSpec::new(1_000_000, Dur::from_millis(50)));
        let t = b.build();
        let sim = t.into_sim(1);
        assert_eq!(sim.route(na, nc), Some(ab));
        assert_eq!(sim.route(na, nd), Some(ad));
        assert_eq!(t.path_prop_delay(na, nc), Some(Dur::from_millis(2)));
    }

    #[test]
    fn unreachable_has_no_path() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        let d = b.node("island");
        b.duplex(a, c, LinkSpec::new(1_000_000, Dur::from_millis(1)));
        let t = b.build();
        assert_eq!(t.path_prop_delay(a, d), None);
        // into_sim must not panic on the disconnected node.
        let sim = t.into_sim(1);
        assert_eq!(sim.route(a, d), None);
    }

    #[test]
    fn asymmetric_duplex_links() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        let (ab, ba) = b.duplex_asym(
            a,
            c,
            LinkSpec::new(11_000_000, Dur::from_millis(3)),
            LinkSpec::new(1_000_000, Dur::from_millis(3)).with_loss(LossModel::bernoulli(0.1)),
        );
        let t = b.build();
        let sim = t.into_sim(1);
        assert_eq!(sim.link_endpoints(ab), (a, c));
        assert_eq!(sim.link_endpoints(ba), (c, a));
    }
}
