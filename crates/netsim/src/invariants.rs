//! Runtime invariant auditor (cargo feature `invariants`).
//!
//! The static linter (`lsl-audit`) catches determinism hazards at the
//! source level; this module catches *dynamic* ones. Simulation layers
//! assert structural invariants — monotonic event time and per-link byte
//! conservation here in netsim, sequence-space and cwnd bounds in
//! lsl-tcp, relay-buffer conservation in lsl-session — through the
//! [`invariant!`] macro. A failed check records a structured
//! [`Violation`] in a thread-local registry (each simulation runs on one
//! thread, so registries never mix across parallel tests) and then trips
//! a `debug_assert!`, so debug builds stop at the fault while release
//! audits collect a full report (formatted by `lsl-trace`).

use std::cell::RefCell;

use crate::time::Time;

/// One recorded invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Simulated time at which the check failed.
    pub at: Time,
    /// Layer that owns the invariant, e.g. `netsim::sim`, `tcp::socket`.
    pub component: &'static str,
    /// Stable rule identifier, e.g. `event-time-monotonic`.
    pub rule: &'static str,
    /// Human-readable specifics (observed values).
    pub detail: String,
}

thread_local! {
    static REGISTRY: RefCell<Vec<Violation>> = const { RefCell::new(Vec::new()) };
}

/// Record a violation. Usually reached via [`invariant!`], not directly.
pub fn record(at: Time, component: &'static str, rule: &'static str, detail: String) {
    REGISTRY.with(|r| {
        r.borrow_mut().push(Violation {
            at,
            component,
            rule,
            detail,
        })
    });
}

/// Drain and return every violation recorded on this thread.
pub fn take() -> Vec<Violation> {
    REGISTRY.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

/// Number of violations currently recorded on this thread.
pub fn count() -> usize {
    REGISTRY.with(|r| r.borrow().len())
}

/// Check a runtime invariant: on failure, record a [`Violation`] and trip
/// a `debug_assert!`. Compiled only under the `invariants` feature, so
/// call sites carry their own `#[cfg(feature = "invariants")]`.
#[macro_export]
macro_rules! invariant {
    ($cond:expr, $at:expr, $component:expr, $rule:expr, $($fmt:tt)+) => {
        if !$cond {
            let detail = format!($($fmt)+);
            $crate::invariants::record($at, $component, $rule, detail.clone());
            debug_assert!(false, "invariant [{}/{}] violated: {}", $component, $rule, detail);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_records_and_drains() {
        assert_eq!(count(), 0);
        record(Time(5), "test", "rule-a", "x = 3".to_string());
        record(Time(9), "test", "rule-b", "y = 4".to_string());
        assert_eq!(count(), 2);
        let v = take();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, "rule-a");
        assert_eq!(v[1].at, Time(9));
        assert_eq!(count(), 0, "take() drains");
    }

    #[test]
    fn passing_invariant_records_nothing() {
        let _ = take();
        invariant!(1 + 1 == 2, Time::ZERO, "test", "arith", "impossible");
        assert_eq!(count(), 0);
    }
}
