//! Simulated time: a nanosecond counter from simulation start.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);
    /// The far future; used as an "unset timer" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Seconds as floating point (for reporting and plotting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Millseconds as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Build from floating-point seconds, rounding to the nearest ns.
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        Dur((s * 1e9).round() as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Serialization delay for `bytes` at `bits_per_sec`, rounded up so a
    /// nonempty packet on a finite link always takes nonzero time.
    pub fn serialization(bytes: u64, bits_per_sec: u64) -> Dur {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes * 8;
        // ns = bits / bps * 1e9, computed without overflow via u128.
        let ns = ((bits as u128) * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
        Dur(ns as u64)
    }

    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float (for RTO backoff factors etc.).
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(k >= 0.0 && k.is_finite());
        Dur((self.0 as f64 * k).round() as u64)
    }

    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Dur::from_secs(1), Dur::from_millis(1000));
        assert_eq!(Dur::from_millis(1), Dur::from_micros(1000));
        assert_eq!(Dur::from_micros(1), Dur::from_nanos(1000));
        assert_eq!(Dur::from_secs_f64(0.25), Dur::from_millis(250));
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Dur::from_millis(5);
        assert_eq!(t - Time::ZERO, Dur::from_millis(5));
        assert_eq!(t.since(Time::ZERO), Dur::from_millis(5));
        // since() saturates instead of panicking.
        assert_eq!(Time::ZERO.since(t), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn sub_past_zero_panics() {
        let _ = Time::ZERO - (Time::ZERO + Dur::from_nanos(1));
    }

    #[test]
    fn serialization_delay() {
        // 1500 bytes at 100 Mbit/s = 120 us.
        assert_eq!(Dur::serialization(1500, 100_000_000), Dur::from_micros(120));
        // 1 byte on a 1 Tbit/s link still takes >0 time.
        assert!(Dur::serialization(1, 1_000_000_000_000).0 > 0);
        // 0 bytes takes zero time.
        assert_eq!(Dur::serialization(0, 1_000_000), Dur::ZERO);
    }

    #[test]
    fn serialization_no_overflow_large() {
        // 1 GB at 1 kbit/s: would overflow u64 bit-ns math without u128.
        let d = Dur::serialization(1 << 30, 1000);
        assert!((d.as_secs_f64() - (1u64 << 33) as f64 / 1000.0).abs() < 1.0);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Dur::from_nanos(10).mul_f64(1.25), Dur::from_nanos(13));
        assert_eq!(Dur::from_millis(100).mul_f64(2.0), Dur::from_millis(200));
    }

    #[test]
    fn display_seconds() {
        let t = Time::ZERO + Dur::from_millis(1500);
        assert_eq!(format!("{t}"), "1.500000");
    }
}
