//! Packets and the identifiers for nodes and links.

use bytes::Bytes;
use std::fmt;

/// Identifies a node (host or router) in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies a unidirectional link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// IP protocol number for TCP; the only protocol the stacks above use,
/// but kept as a field so probes/other protocols can coexist.
pub const PROTO_TCP: u8 = 6;

/// Fixed per-packet network+link overhead charged on the wire, in bytes
/// (20 B IP header + a nominal 18 B of framing). TCP header bytes are
/// part of `header` and counted separately.
pub const WIRE_OVERHEAD: u32 = 38;

/// A packet in flight.
///
/// The transport header travels as real serialized bytes in `header`
/// (encode/decode is exercised on every hop); bulk payload is carried in
/// `data` as a cheaply-cloneable [`Bytes`] so retransmissions and relay
/// buffering never copy.
#[derive(Clone)]
pub struct Packet {
    pub src: NodeId,
    pub dst: NodeId,
    pub proto: u8,
    /// Serialized transport header.
    pub header: Bytes,
    /// Transport payload.
    pub data: Bytes,
    /// Unique id assigned by the simulator at send time (for tracing).
    pub id: u64,
}

impl Packet {
    /// New TCP packet; `id` is assigned by [`crate::Simulator::send`].
    pub fn tcp(src: NodeId, dst: NodeId, header: Bytes, data: Bytes) -> Packet {
        Packet {
            src,
            dst,
            proto: PROTO_TCP,
            header,
            data,
            id: 0,
        }
    }

    /// Total size charged on the wire, in bytes.
    pub fn wire_len(&self) -> u32 {
        WIRE_OVERHEAD + self.header.len() as u32 + self.data.len() as u32
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("src", &self.src.0)
            .field("dst", &self.dst.0)
            .field("proto", &self.proto)
            .field("hdr_len", &self.header.len())
            .field("data_len", &self.data.len())
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_counts_header_data_and_overhead() {
        let p = Packet::tcp(
            NodeId(0),
            NodeId(1),
            Bytes::from_static(&[0u8; 20]),
            Bytes::from_static(&[0u8; 100]),
        );
        assert_eq!(p.wire_len(), WIRE_OVERHEAD + 120);
    }

    #[test]
    fn clone_is_shallow_for_data() {
        let data = Bytes::from(vec![7u8; 1460]);
        let p = Packet::tcp(NodeId(0), NodeId(1), Bytes::new(), data.clone());
        let q = p.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(q.data.as_ptr(), data.as_ptr());
    }
}
