//! The simulated `lsd` depot: a user-level, unprivileged relay process.
//!
//! A depot accepts an LSL sublink, reads the header, opens the next-hop
//! sublink from the loose source route, forwards the (shortened) header
//! and then performs a transport-to-transport binding: bytes are pumped
//! between the two TCP connections through a **small, short-lived relay
//! buffer** (the paper's defining contrast with long-lived logistical
//! storage allocations). When the buffer is full the depot simply stops
//! reading, so TCP flow control propagates backpressure hop by hop.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use lsl_netsim::{Dur, FaultKind, NodeId, Time};
use lsl_tcp::{AppEvent, Net, SockEvent, SockId, TcpConfig};

use crate::client::CLIENT_TIMER_TAG;
use crate::endpoint::SINK_TIMER_TAG;
use crate::error::Handled;
use crate::header::LslHeader;
use crate::route::Hop;

/// Depot tuning.
#[derive(Clone, Debug)]
pub struct DepotConfig {
    /// Listening port.
    pub port: u16,
    /// Relay buffer cap per direction, bytes. The paper's depots use
    /// small, short-lived buffers; 256 KB default.
    pub relay_buf: usize,
    /// TCP configuration for both the accepted and onward sublinks.
    pub tcp: TcpConfig,
    /// Session-setup processing time: the gap between parsing an LSL
    /// header and initiating the onward sublink. The paper's `lsd` is an
    /// unprivileged user-level daemon; per-session costs (scheduling,
    /// name resolution, socket setup on a loaded depot host) are what
    /// make LSL lose on small transfers (Fig 5's left edge).
    pub setup_delay: Dur,
    /// When set, capture a sender-side trace on every *downstream*
    /// sublink under this label — the paper's tcpdump at each sublink's
    /// sending host (sublink 2's sender is the depot).
    pub trace_downstream: Option<String>,
}

impl Default for DepotConfig {
    fn default() -> Self {
        DepotConfig {
            port: 7000,
            relay_buf: 256 * 1024,
            tcp: TcpConfig::default(),
            setup_delay: Dur::ZERO,
            trace_downstream: None,
        }
    }
}

impl DepotConfig {
    /// Validated construction; see [`DepotConfigBuilder`].
    pub fn builder() -> DepotConfigBuilder {
        DepotConfigBuilder {
            cfg: DepotConfig::default(),
        }
    }
}

/// Builder for [`DepotConfig`] that rejects nonsensical configurations
/// at construction time instead of letting them produce a depot that
/// silently never relays (a zero-byte relay buffer deadlocks every
/// session on first contact).
#[derive(Clone, Debug)]
pub struct DepotConfigBuilder {
    cfg: DepotConfig,
}

impl DepotConfigBuilder {
    pub fn port(mut self, port: u16) -> Self {
        self.cfg.port = port;
        self
    }

    pub fn relay_buf(mut self, bytes: usize) -> Self {
        self.cfg.relay_buf = bytes;
        self
    }

    pub fn tcp(mut self, tcp: TcpConfig) -> Self {
        self.cfg.tcp = tcp;
        self
    }

    pub fn setup_delay(mut self, delay: Dur) -> Self {
        self.cfg.setup_delay = delay;
        self
    }

    pub fn trace_downstream(mut self, label: &str) -> Self {
        self.cfg.trace_downstream = Some(label.to_string());
        self
    }

    /// Validate and produce the config.
    ///
    /// # Panics
    ///
    /// On configurations that cannot work: a zero-byte relay buffer or
    /// a port of 0 (the simulated stack has no wildcard bind).
    pub fn build(self) -> DepotConfig {
        assert!(
            self.cfg.relay_buf > 0,
            "depot relay buffer must be non-zero (a 0-byte buffer can never relay)"
        );
        assert!(self.cfg.port != 0, "depot port 0 is not bindable");
        self.cfg
    }
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Debug, Default)]
pub struct DepotStats {
    pub sessions_accepted: u64,
    pub sessions_completed: u64,
    pub bytes_relayed: u64,
    /// High-water mark of a single relay direction's buffer.
    pub max_buffered: usize,
    pub header_errors: u64,
    pub aborted: u64,
}

/// One direction of a relay: `from`'s receive stream feeds `to`'s send
/// stream through a bounded buffer.
struct Pipe {
    from: SockId,
    to: SockId,
    buf: VecDeque<Bytes>,
    buffered: usize,
    fin_propagated: bool,
}

impl Pipe {
    fn new(from: SockId, to: SockId) -> Pipe {
        Pipe {
            from,
            to,
            buf: VecDeque::new(),
            buffered: 0,
            fin_propagated: false,
        }
    }
}

enum RelayState {
    /// Reading the LSL header from the upstream connection.
    ReadingHeader { hdr_buf: Vec<u8> },
    /// Header parsed; waiting out the depot's session-setup processing
    /// time before initiating the onward connect.
    SettingUp {
        next: Hop,
        fwd_header: Bytes,
        staged: Vec<Bytes>,
        staged_bytes: usize,
    },
    /// Next-hop connect in flight; holds the header to forward and any
    /// payload that arrived with (after) the header.
    Connecting {
        fwd_header: Bytes,
        staged: Vec<Bytes>,
        staged_bytes: usize,
    },
    /// Both sublinks up: pumping.
    Relaying { pipes: [Pipe; 2] },
    /// Torn down (waiting for Closed events).
    Dead,
}

struct Relay {
    up: SockId,
    down: Option<SockId>,
    state: RelayState,
    /// Monotonic session number, embedded in setup-timer tokens so a
    /// stale timer cannot act on a reused relay slot.
    gen: u64,
    up_closed: bool,
    down_closed: bool,
}

/// Setup-timer tokens pack `(gen, slot)`; slots use the low bits.
const SLOT_BITS: u32 = 20;

/// A depot instance bound to one node+port.
pub struct Depot {
    node: NodeId,
    listener: SockId,
    cfg: DepotConfig,
    relays: Vec<Option<Relay>>,
    by_sock: BTreeMap<SockId, usize>,
    next_gen: u64,
    stats: DepotStats,
    finished_traces: Vec<lsl_trace::ConnTrace>,
    /// The depot host is down: all socket state is gone; ignore events
    /// until the restart fault brings a fresh stack.
    crashed: bool,
}

impl Depot {
    /// Bind the depot's listener.
    pub fn new(net: &mut Net, node: NodeId, cfg: DepotConfig) -> Depot {
        let listener = net.listen(node, cfg.port, cfg.tcp.clone());
        Depot {
            node,
            listener,
            cfg,
            relays: Vec::new(),
            by_sock: BTreeMap::new(),
            next_gen: 0,
            stats: DepotStats::default(),
            finished_traces: Vec::new(),
            crashed: false,
        }
    }

    /// Traces captured on downstream sublinks of completed relays (when
    /// [`DepotConfig::trace_downstream`] is set).
    pub fn take_traces(&mut self) -> Vec<lsl_trace::ConnTrace> {
        std::mem::take(&mut self.finished_traces)
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn port(&self) -> u16 {
        self.cfg.port
    }

    pub fn stats(&self) -> &DepotStats {
        &self.stats
    }

    /// Active relay sessions (for load-balancing policies).
    pub fn active_sessions(&self) -> usize {
        self.relays.iter().flatten().count()
    }

    /// Feed one event; [`Handled::Consumed`] means it was this depot's.
    ///
    /// Fault notifications are broadcast: the depot reacts to its own
    /// host's crash/restart but still returns [`Handled::NotMine`] so
    /// the driver keeps offering the fault to other components.
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        let AppEvent::Sock { sock, event } = ev else {
            match ev {
                // Setup-delay timers carry a packed (gen, slot) token.
                // Client- and sink-tagged timers belong to a
                // SessionClient / SinkServer that may live on this node;
                // leave them alone.
                AppEvent::Timer { node, token }
                    if *node == self.node && token & (CLIENT_TIMER_TAG | SINK_TIMER_TAG) == 0 =>
                {
                    self.on_setup_timer(net, *token);
                    return Handled::Consumed;
                }
                AppEvent::Fault(f) => self.on_fault(net, f.kind),
                _ => {}
            }
            return Handled::NotMine;
        };
        if self.crashed {
            // Events for sockets that died with the host race the fault
            // notification in the same poll batch; nothing to do.
            return Handled::NotMine;
        }
        if *sock == self.listener {
            if let SockEvent::Accepted { conn } = event {
                self.on_accept(net.now(), *conn);
            }
            return Handled::Consumed;
        }
        let Some(&idx) = self.by_sock.get(sock) else {
            return Handled::NotMine;
        };
        match event {
            SockEvent::Connected => self.on_down_connected(net, idx),
            SockEvent::Readable | SockEvent::Writable | SockEvent::PeerFin => self.pump(net, idx),
            SockEvent::Closed => self.on_closed(net, idx, *sock),
            SockEvent::Error(_) => self.on_error(net, idx),
            SockEvent::Accepted { .. } => unreachable!("relay socket cannot accept"),
        }
        Handled::Consumed
    }

    /// React to an injected fault on this depot's host.
    fn on_fault(&mut self, net: &mut Net, kind: FaultKind) {
        match kind {
            FaultKind::NodeDown(n) if n == self.node => {
                // The host crashed: every socket (listener and relays)
                // vanished with the TCP stack. Drop the volatile relay
                // state; peers discover via their own timers/RSTs.
                self.stats.aborted += self.relays.iter().flatten().count() as u64;
                for relay in self.relays.iter().flatten() {
                    lsl_obs::span_end(net.now().0, "depot.relay", relay.gen);
                }
                self.relays.clear();
                self.by_sock.clear();
                self.crashed = true;
            }
            FaultKind::NodeUp(n) if n == self.node && self.crashed => {
                // Restart: the `lsd` daemon comes back up with a fresh
                // stack and re-binds its port. Relay state is not
                // recovered — sessions in flight at the crash are lost
                // and the *endpoints* recover them (end-to-end argument).
                self.listener = net.listen(self.node, self.cfg.port, self.cfg.tcp.clone());
                self.crashed = false;
            }
            _ => {}
        }
    }

    fn on_accept(&mut self, t: Time, conn: SockId) {
        self.stats.sessions_accepted += 1;
        self.next_gen += 1;
        lsl_obs::span_begin(t.0, "depot.relay", self.next_gen);
        let relay = Relay {
            up: conn,
            down: None,
            state: RelayState::ReadingHeader {
                hdr_buf: Vec::new(),
            },
            gen: self.next_gen,
            up_closed: false,
            down_closed: false,
        };
        let idx = if let Some(i) = self.relays.iter().position(Option::is_none) {
            self.relays[i] = Some(relay);
            i
        } else {
            self.relays.push(Some(relay));
            self.relays.len() - 1
        };
        self.by_sock.insert(conn, idx);
        lsl_obs::gauge_max("depot.active_relays", 0, self.active_sessions() as u64);
    }

    fn relay_mut(&mut self, idx: usize) -> &mut Relay {
        self.relays[idx].as_mut().expect("relay slot live")
    }

    fn on_down_connected(&mut self, net: &mut Net, idx: usize) {
        let relay = self.relay_mut(idx);
        let down = relay.down.expect("Connected only fires on down");
        let RelayState::Connecting {
            fwd_header,
            staged,
            staged_bytes,
        } = std::mem::replace(&mut relay.state, RelayState::Dead)
        else {
            // Connected on an already-dead relay: ignore.
            return;
        };
        // Forward the shortened header, then enter relay mode with the
        // staged payload pre-loaded in the up→down pipe.
        let n = net.send(down, &fwd_header);
        debug_assert_eq!(n, fwd_header.len(), "header must fit the fresh send buffer");
        let up = relay.up;
        let mut up_down = Pipe::new(up, down);
        up_down.buf = staged.into();
        up_down.buffered = staged_bytes;
        let down_up = Pipe::new(down, up);
        relay.state = RelayState::Relaying {
            pipes: [up_down, down_up],
        };
        self.pump(net, idx);
    }

    fn pump(&mut self, net: &mut Net, idx: usize) {
        // Header phase first (may transition state).
        let relay = self.relay_mut(idx);
        if matches!(relay.state, RelayState::ReadingHeader { .. }) {
            self.read_header(net, idx);
            return;
        }
        let cap = self.cfg.relay_buf;
        let relay = self.relay_mut(idx);
        let RelayState::Relaying { pipes } = &mut relay.state else {
            return;
        };
        let mut relayed = 0u64;
        let mut max_buffered = 0usize;
        for pipe in pipes.iter_mut() {
            loop {
                let mut progress = false;
                // Drain buffer into the downstream send buffer.
                while let Some(chunk) = pipe.buf.front_mut() {
                    let n = net.send(pipe.to, chunk);
                    relayed += n as u64;
                    pipe.buffered -= n;
                    progress |= n > 0;
                    if n == chunk.len() {
                        pipe.buf.pop_front();
                    } else {
                        let rest = chunk.slice(n..);
                        *chunk = rest;
                        break; // downstream full
                    }
                }
                // Refill from the upstream receive buffer.
                while pipe.buffered < cap {
                    let want = cap - pipe.buffered;
                    let chunk = net.recv(pipe.from, want);
                    if chunk.is_empty() {
                        break;
                    }
                    pipe.buffered += chunk.len();
                    max_buffered = max_buffered.max(pipe.buffered);
                    pipe.buf.push_back(chunk);
                    progress = true;
                }
                if !progress {
                    break;
                }
            }
            // Propagate EOF once everything has been flushed through.
            if !pipe.fin_propagated && pipe.buf.is_empty() && net.at_eof(pipe.from) {
                net.close(pipe.to);
                pipe.fin_propagated = true;
            }
            // Relay-buffer conservation: the byte counter must equal the
            // chunks actually held, and never exceed the configured cap.
            #[cfg(feature = "invariants")]
            {
                let held: usize = pipe.buf.iter().map(Bytes::len).sum();
                lsl_netsim::invariant!(
                    pipe.buffered == held,
                    net.now(),
                    "session::depot",
                    "relay-buffer-conservation",
                    "pipe {:?}->{:?}: counter {} B vs {} B held",
                    pipe.from,
                    pipe.to,
                    pipe.buffered,
                    held
                );
                lsl_netsim::invariant!(
                    pipe.buffered <= cap,
                    net.now(),
                    "session::depot",
                    "relay-buffer-bound",
                    "pipe {:?}->{:?}: {} B buffered exceeds cap {} B",
                    pipe.from,
                    pipe.to,
                    pipe.buffered,
                    cap
                );
            }
        }
        self.stats.bytes_relayed += relayed;
        self.stats.max_buffered = self.stats.max_buffered.max(max_buffered);
        lsl_obs::gauge_max("depot.relay.max_buffered", 0, max_buffered as u64);
    }

    fn read_header(&mut self, net: &mut Net, idx: usize) {
        let up = self.relay_mut(idx).up;
        // Own the header buffer while we work so later self-calls are
        // borrow-free; the state is restored on the incomplete path.
        let RelayState::ReadingHeader { mut hdr_buf } =
            std::mem::replace(&mut self.relay_mut(idx).state, RelayState::Dead)
        else {
            unreachable!("checked by caller");
        };
        // Read whatever is available; headers are tiny.
        loop {
            let chunk = net.recv(up, 4096);
            if chunk.is_empty() {
                break;
            }
            hdr_buf.extend_from_slice(&chunk);
            match LslHeader::decode(&hdr_buf) {
                Ok(None) => continue,
                Ok(Some((header, used))) => {
                    let leftover = Bytes::from(hdr_buf.split_off(used));
                    let Some((next, fwd)) = header.pop_hop() else {
                        // A depot can never be the final destination.
                        self.stats.header_errors += 1;
                        self.teardown(net, idx);
                        return;
                    };
                    // Popping a hop only shortens a route the decoder
                    // already bounded, so re-encoding cannot fail; the
                    // guard keeps the relay total anyway.
                    let Ok(fwd_header) = fwd.encode() else {
                        self.stats.header_errors += 1;
                        self.teardown(net, idx);
                        return;
                    };
                    let staged_bytes = leftover.len();
                    let staged = if leftover.is_empty() {
                        Vec::new()
                    } else {
                        vec![leftover]
                    };
                    if self.cfg.setup_delay > Dur::ZERO {
                        // Model per-session depot processing before the
                        // onward connect is even initiated.
                        let at = net.now() + self.cfg.setup_delay;
                        let relay = self.relay_mut(idx);
                        let token = (relay.gen << SLOT_BITS) | idx as u64;
                        net.set_app_timer(self.node, at, token);
                        self.relay_mut(idx).state = RelayState::SettingUp {
                            next,
                            fwd_header,
                            staged,
                            staged_bytes,
                        };
                    } else {
                        self.open_downstream(net, idx, next, fwd_header, staged, staged_bytes);
                    }
                    return;
                }
                Err(_) => {
                    self.stats.header_errors += 1;
                    self.teardown(net, idx);
                    return;
                }
            }
        }
        // Upstream closed before a complete header arrived.
        if net.at_eof(up) {
            self.stats.header_errors += 1;
            self.teardown(net, idx);
        } else {
            self.relay_mut(idx).state = RelayState::ReadingHeader { hdr_buf };
        }
    }

    /// Session-setup processing time elapsed: initiate the onward connect.
    fn on_setup_timer(&mut self, net: &mut Net, token: u64) {
        let idx = (token & ((1 << SLOT_BITS) - 1)) as usize;
        let gen = token >> SLOT_BITS;
        let Some(relay) = self.relays.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if relay.gen != gen {
            // Stale timer: the slot was reaped and reused.
            return;
        }
        match std::mem::replace(&mut relay.state, RelayState::Dead) {
            RelayState::SettingUp {
                next,
                fwd_header,
                staged,
                staged_bytes,
            } => self.open_downstream(net, idx, next, fwd_header, staged, staged_bytes),
            // Stale timer: the relay died (or the slot was reused) while
            // the timer was in flight. Put the state back untouched.
            other => relay.state = other,
        }
    }

    fn open_downstream(
        &mut self,
        net: &mut Net,
        idx: usize,
        next: Hop,
        fwd_header: Bytes,
        staged: Vec<Bytes>,
        staged_bytes: usize,
    ) {
        let down = net.connect(self.node, next.node, next.port, self.cfg.tcp.clone());
        if let Some(label) = &self.cfg.trace_downstream {
            net.enable_trace(down, label);
        }
        let relay = self.relay_mut(idx);
        relay.down = Some(down);
        relay.state = RelayState::Connecting {
            fwd_header,
            staged,
            staged_bytes,
        };
        self.by_sock.insert(down, idx);
    }

    fn on_error(&mut self, net: &mut Net, idx: usize) {
        self.stats.aborted += 1;
        self.teardown(net, idx);
    }

    fn teardown(&mut self, net: &mut Net, idx: usize) {
        let relay = self.relay_mut(idx);
        relay.state = RelayState::Dead;
        let (up, down) = (relay.up, relay.down);
        net.abort(up);
        if let Some(d) = down {
            net.abort(d);
        }
        self.reap(net, idx);
    }

    fn on_closed(&mut self, net: &mut Net, idx: usize, sock: SockId) {
        let relay = self.relay_mut(idx);
        if sock == relay.up {
            relay.up_closed = true;
        }
        if relay.down == Some(sock) {
            relay.down_closed = true;
        }
        self.reap(net, idx);
    }

    /// Free the relay once both sockets are gone.
    fn reap(&mut self, net: &mut Net, idx: usize) {
        let relay = self.relay_mut(idx);
        let up_done = relay.up_closed || net.state(relay.up).is_none_or(|s| s.is_closed());
        let down_done = match relay.down {
            None => true,
            Some(d) => relay.down_closed || net.state(d).is_none_or(|s| s.is_closed()),
        };
        if up_done && down_done {
            let relay = self.relays[idx].take().expect("live");
            self.by_sock.remove(&relay.up);
            net.release(relay.up);
            if let Some(d) = relay.down {
                self.by_sock.remove(&d);
                if let Some(trace) = net.take_trace(d) {
                    self.finished_traces.push(trace);
                }
                net.release(d);
            }
            if !matches!(relay.state, RelayState::Dead) {
                self.stats.sessions_completed += 1;
            }
            lsl_obs::span_end(net.now().0, "depot.relay", relay.gen);
        }
    }
}
