//! Deterministic fixed-point route scoring.
//!
//! [`crate::model`] holds the float analytic models used for
//! calibration and examples. Route *selection* inside the session
//! client must be bit-reproducible across machines and `--jobs` counts,
//! so this module mirrors the cascade model in pure integer arithmetic:
//! forecasts are quantized once ([`SublinkForecast::quantize`]) and the
//! score is an integer nanosecond prediction of end-to-end transfer
//! time (lower is better). The determinism rule: **no f64 touches a
//! score after quantization** — every intermediate is u64/u128, every
//! division truncates, and ties are broken by candidate index.

/// Mathis constant √(3/2), scaled by 1e12.
const MATHIS_C_E12: u128 = 1_224_744_871_391;
/// Maximum segment size, bytes (matches [`crate::model::TcpPathModel`]).
const MSS: u64 = 1460;
/// End-host buffer / max window, bytes.
const MAX_WINDOW: u64 = 8 * 1024 * 1024;
/// Initial congestion window, bytes (2 segments).
const INIT_CWND: u64 = 2 * MSS;
/// Per-depot store-and-forward overhead, nanoseconds (0.5 ms).
const DEPOT_OVERHEAD_NS: u64 = 500_000;
/// LSL header + digest bytes added to the stream (v2 header + MD5).
const FRAMING_BYTES: u64 = 47 + 16;

const NS_PER_S: u128 = 1_000_000_000;

/// A quantized per-sublink forecast: the only form the scorer accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SublinkForecast {
    /// Forecast available bandwidth, bits/s (≥ 1).
    pub bandwidth_bps: u64,
    /// Forecast round-trip time, nanoseconds (≥ 1).
    pub rtt_ns: u64,
    /// Forecast loss probability in parts-per-million (< 1_000_000).
    pub loss_ppm: u64,
}

impl SublinkForecast {
    /// Quantize float forecasts into the fixed-point domain. Returns
    /// `None` for anything non-finite or out of range — a NaN from a
    /// forecaster must not poison a score.
    pub fn quantize(bandwidth_bps: f64, rtt_s: f64, loss: f64) -> Option<SublinkForecast> {
        if !bandwidth_bps.is_finite() || !rtt_s.is_finite() || !loss.is_finite() {
            return None;
        }
        if bandwidth_bps < 1.0 || rtt_s <= 0.0 || !(0.0..1.0).contains(&loss) {
            return None;
        }
        let rtt_ns = rtt_s * 1e9;
        if rtt_ns >= u64::MAX as f64 || bandwidth_bps >= u64::MAX as f64 {
            return None;
        }
        Some(SublinkForecast {
            bandwidth_bps: bandwidth_bps as u64,
            rtt_ns: (rtt_ns as u64).max(1),
            loss_ppm: ((loss * 1e6) as u64).min(999_999),
        })
    }

    /// Steady-state throughput ceiling, bits/s: min of the forecast
    /// bandwidth, the window/RTT bound, and the Mathis loss bound —
    /// the integer mirror of `TcpPathModel::steady_bw`.
    pub fn steady_bw_bps(&self) -> u64 {
        let rtt = self.rtt_ns.max(1) as u128;
        let window_bound = (MAX_WINDOW as u128 * 8 * NS_PER_S) / rtt;
        let mut bw = (self.bandwidth_bps as u128).min(window_bound);
        if self.loss_ppm > 0 {
            // (MSS·8/rtt) · C/√p with p = ppm/1e6. Work with
            // s = isqrt(ppm·1e6) ≈ √p·1e6 so truncation costs ~1e-6,
            // not the ~3% a bare isqrt(ppm) would:
            // mathis = MSS·8·1e9/rtt_ns · (C_e12/1e12) · 1e6/s
            let s = isqrt(self.loss_ppm * 1_000_000).max(1) as u128;
            let mathis = (MSS as u128 * 8 * NS_PER_S * MATHIS_C_E12 * 1_000_000)
                / (rtt * s * 1_000_000_000_000);
            bw = bw.min(mathis);
        }
        u64::try_from(bw).unwrap_or(u64::MAX).max(1)
    }

    /// Congestion window (bytes) at which `steady_bw_bps` is attained.
    fn steady_window_bytes(&self) -> u64 {
        let w = (self.steady_bw_bps() as u128 * self.rtt_ns as u128) / (8 * NS_PER_S);
        u64::try_from(w).unwrap_or(u64::MAX)
    }

    /// Predicted bulk-transfer time over an established connection,
    /// nanoseconds — the integer mirror of
    /// `TcpPathModel::transfer_time`: slow-start rounds doubling from
    /// [`INIT_CWND`] to the steady window, then line rate.
    pub fn transfer_time_ns(&self, size: u64) -> u64 {
        let rtt = self.rtt_ns;
        if size == 0 {
            return rtt / 2;
        }
        let steady_w = self.steady_window_bytes().max(INIT_CWND);
        let mut cwnd = INIT_CWND;
        let mut sent = 0u64;
        let mut t = 0u64;
        while cwnd < steady_w {
            if sent.saturating_add(cwnd) >= size {
                let tail =
                    ((size - sent) as u128 * 8 * NS_PER_S) / self.bandwidth_bps.max(1) as u128;
                return t
                    .saturating_add(rtt / 2)
                    .saturating_add(u64::try_from(tail).unwrap_or(u64::MAX));
            }
            sent += cwnd;
            t = t.saturating_add(rtt);
            cwnd = cwnd.saturating_mul(2).min(steady_w);
        }
        let steady = ((size - sent) as u128 * 8 * NS_PER_S) / self.steady_bw_bps() as u128;
        t.saturating_add(u64::try_from(steady).unwrap_or(u64::MAX))
            .saturating_add(rtt / 2)
    }
}

/// Truncating integer square root.
fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

/// Score a candidate cascade: predicted end-to-end time in integer
/// nanoseconds for `size` payload bytes over the given per-sublink
/// forecasts — the integer mirror of `CascadeModel::transfer_time`
/// with synchronous session setup. One sublink models a direct route
/// (LSL framing and the sink confirmation apply there too).
pub fn cascade_score_ns(sublinks: &[SublinkForecast], size: u64) -> Option<u64> {
    if sublinks.is_empty() {
        return None;
    }
    let size = size.saturating_add(FRAMING_BYTES);
    let rtt_sum: u64 = sublinks.iter().fold(0, |a, s| a.saturating_add(s.rtt_ns));
    let overheads = DEPOT_OVERHEAD_NS.saturating_mul(sublinks.len() as u64);
    // Handshake + header forward (1.5·Σrtt) and confirmation back
    // (0.5·Σrtt).
    let setup = rtt_sum.saturating_mul(2).saturating_add(overheads);
    let slowest = sublinks
        .iter()
        .map(|s| s.transfer_time_ns(size))
        .max()
        .unwrap_or(0);
    // Non-bottleneck hops add only their one-way propagation.
    let half_sum: u64 = sublinks
        .iter()
        .fold(0, |a, s| a.saturating_add(s.rtt_ns / 2));
    let half_max = sublinks.iter().map(|s| s.rtt_ns / 2).max().unwrap_or(0);
    let extra = half_sum - half_max;
    Some(setup.saturating_add(slowest).saturating_add(extra))
}

/// Rank candidate indices by score: scored candidates first in
/// ascending score order, unscored after them, every tie broken by
/// candidate index. The result is a permutation of `0..scores.len()`
/// and a pure function of its input — the total deterministic order
/// route selection relies on.
pub fn rank_candidates(scores: &[Option<u64>]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by_key(|&i| (scores[i].is_none(), scores[i].unwrap_or(0), i));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fc(bw: f64, rtt: f64, loss: f64) -> SublinkForecast {
        SublinkForecast::quantize(bw, rtt, loss).unwrap()
    }

    #[test]
    fn quantize_rejects_poison() {
        for (bw, rtt, loss) in [
            (f64::NAN, 0.01, 0.0),
            (1e6, f64::NAN, 0.0),
            (1e6, 0.01, f64::NAN),
            (f64::INFINITY, 0.01, 0.0),
            (1e6, 0.0, 0.0),
            (1e6, -0.01, 0.0),
            (0.5, 0.01, 0.0),
            (1e6, 0.01, 1.0),
            (1e6, 0.01, -0.1),
        ] {
            assert!(
                SublinkForecast::quantize(bw, rtt, loss).is_none(),
                "({bw}, {rtt}, {loss}) should be rejected"
            );
        }
        assert_eq!(
            fc(1e6, 0.01, 1e-3),
            SublinkForecast {
                bandwidth_bps: 1_000_000,
                rtt_ns: 10_000_000,
                loss_ppm: 1000,
            }
        );
    }

    #[test]
    fn steady_bw_tracks_float_model_bounds() {
        use crate::model::TcpPathModel;
        for (bw, rtt, loss) in [
            (10e6, 0.05, 0.0),
            (100e6, 0.06, 1e-3),
            (622e6, 0.013, 2e-3),
            (1e9, 0.0015, 0.0),
        ] {
            let fixed = fc(bw, rtt, loss).steady_bw_bps() as f64;
            let float = TcpPathModel::new(rtt, bw, loss).steady_bw();
            let err = (fixed - float).abs() / float;
            assert!(
                err < 0.02,
                "bw {bw} rtt {rtt} loss {loss}: {fixed} vs {float}"
            );
        }
    }

    #[test]
    fn transfer_time_tracks_float_model() {
        use crate::model::TcpPathModel;
        for size in [1u64 << 10, 1 << 16, 1 << 20, 1 << 25] {
            let fixed = fc(100e6, 0.02, 1e-4).transfer_time_ns(size) as f64 / 1e9;
            let float = TcpPathModel::new(0.02, 100e6, 1e-4).transfer_time(size, INIT_CWND);
            let err = (fixed - float).abs() / float;
            assert!(err < 0.02, "size {size}: fixed {fixed}s vs float {float}s");
        }
    }

    #[test]
    fn cascade_prefers_split_lossy_path() {
        // The paper's core claim in fixed point: splitting a 60 ms lossy
        // path into two 30 ms halves scores better for a bulk transfer.
        let size = 64 << 20;
        let direct = cascade_score_ns(&[fc(622e6, 0.06, 1e-4)], size).unwrap();
        let split =
            cascade_score_ns(&[fc(622e6, 0.03, 1e-4), fc(622e6, 0.03, 1e-4)], size).unwrap();
        assert!(split < direct, "split {split} vs direct {direct}");
        // And the tiny-transfer inversion survives quantization. (Both
        // arms pay the synchronous session setup here — the scorer
        // models the depot-free candidate as a 1-sublink LSL cascade,
        // which is exactly how the client runs it — so the crossover
        // sits lower than the float model's raw-TCP direct arm.)
        let size = 1 << 10;
        let direct = cascade_score_ns(&[fc(622e6, 0.06, 1e-4)], size).unwrap();
        let split =
            cascade_score_ns(&[fc(622e6, 0.035, 1e-4), fc(622e6, 0.035, 1e-4)], size).unwrap();
        assert!(split > direct, "split {split} vs direct {direct} at 1 KB");
    }

    #[test]
    fn empty_cascade_has_no_score() {
        assert_eq!(cascade_score_ns(&[], 1 << 20), None);
    }

    #[test]
    fn isqrt_exact_on_squares() {
        for n in [0u64, 1, 2, 3, 4, 99, 100, 1_000_000, u64::MAX] {
            let r = isqrt(n) as u128;
            assert!(r * r <= n as u128, "isqrt({n}) too big");
            assert!((r + 1) * (r + 1) > n as u128, "isqrt({n}) too small");
        }
    }

    #[test]
    fn rank_orders_scored_before_unscored_ties_by_index() {
        let ranked = rank_candidates(&[None, Some(5), Some(3), Some(5), None]);
        assert_eq!(ranked, vec![2, 1, 3, 0, 4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Ranking is a total deterministic order: every input yields a
        /// permutation, equal inputs yield identical outputs, and equal
        /// scores preserve index order.
        #[test]
        fn ranking_is_total_and_deterministic(
            scores in proptest::collection::vec(
                proptest::option::of(0u64..1_000_000), 0..24)
        ) {
            let a = rank_candidates(&scores);
            let b = rank_candidates(&scores);
            prop_assert_eq!(&a, &b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..scores.len()).collect::<Vec<_>>());
            for w in a.windows(2) {
                let (i, j) = (w[0], w[1]);
                match (scores[i], scores[j]) {
                    (Some(si), Some(sj)) => {
                        prop_assert!(si < sj || (si == sj && i < j));
                    }
                    (Some(_), None) => {}
                    (None, Some(_)) => prop_assert!(false, "unscored ranked above scored"),
                    (None, None) => prop_assert!(i < j),
                }
            }
        }

        /// Scores never panic and are monotone-ish in size: more bytes
        /// never score strictly faster.
        #[test]
        fn score_monotone_in_size(
            bw in 1.0e3f64..1e12, rtt in 1e-6f64..10.0, loss in 0.0f64..0.01,
            size in 0u64..(1 << 30)
        ) {
            let f = SublinkForecast::quantize(bw, rtt, loss).unwrap();
            let small = cascade_score_ns(&[f], size).unwrap();
            let big = cascade_score_ns(&[f], size.saturating_mul(2)).unwrap();
            prop_assert!(big >= small);
        }

        /// Quantize is total over arbitrary floats (never panics) and
        /// only accepts finite in-range samples.
        #[test]
        fn quantize_total(bw in any::<f64>(), rtt in any::<f64>(), loss in any::<f64>()) {
            if let Some(f) = SublinkForecast::quantize(bw, rtt, loss) {
                prop_assert!(f.bandwidth_bps >= 1);
                prop_assert!(f.rtt_ns >= 1);
                prop_assert!(f.loss_ppm < 1_000_000);
            }
        }
    }
}
