//! Typed route plans: the validated candidate set a session runs over.
//!
//! Callers used to hand `SessionClient` a raw `Vec<LslPath>` (and the
//! earliest drivers a raw `Vec<Hop>`), which meant an over-long or
//! looping route was only caught deep in the encode path — as a panic.
//! A [`RoutePlan`] is built once, up front, through a validating
//! builder: every candidate shares a destination, passes
//! [`LslPath::validate`], and fits the wire header's [`MAX_HOPS`]
//! bound. That construction-time check is what makes
//! [`WireError::RouteTooLong`](crate::error::WireError::RouteTooLong)
//! unreachable from `LslHeader::encode` for in-repo senders.
//!
//! Each candidate carries an optional fixed-point score (integer
//! nanoseconds of predicted transfer time, lower is better — see
//! [`crate::score`]) and a [`RouteProvenance`] recording where the
//! candidate (or its latest score) came from, so campaign timelines can
//! distinguish a statically configured route from a forecast pick from
//! the appended direct fallback.

use crate::error::{PlanError, WireError};
use crate::header::MAX_HOPS;
use crate::route::{Hop, LslPath};

/// Where a candidate (or its current score) came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteProvenance {
    /// Statically configured by the driver; never scored.
    Static,
    /// Scored from NWS per-sublink forecasts.
    Forecast,
    /// Appended by the recovery layer as a last-resort fallback.
    Failover,
}

/// One candidate route with its score and provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteCandidate {
    pub path: LslPath,
    /// Predicted transfer time in integer nanoseconds (lower is
    /// better); `None` until a forecast scores the candidate.
    pub score: Option<u64>,
    pub provenance: RouteProvenance,
}

impl RouteCandidate {
    /// A statically configured, unscored candidate.
    pub fn new(path: LslPath) -> RouteCandidate {
        RouteCandidate {
            path,
            score: None,
            provenance: RouteProvenance::Static,
        }
    }
}

/// An ordered, builder-validated set of candidate routes sharing one
/// destination. Construction is the only way to get one, so a
/// `RoutePlan` in hand is proof every candidate is wire-encodable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutePlan {
    candidates: Vec<RouteCandidate>,
    dst: Hop,
}

/// Reject a path the wire header could not carry: the first-hop header
/// holds `remaining_route()`, and each depot only shortens it.
fn validate_path(path: &LslPath) -> Result<(), PlanError> {
    path.validate()?;
    let n = path.remaining_route().len();
    if n > MAX_HOPS {
        return Err(WireError::RouteTooLong(u8::try_from(n).unwrap_or(u8::MAX)).into());
    }
    Ok(())
}

impl RoutePlan {
    pub fn builder() -> RoutePlanBuilder {
        RoutePlanBuilder {
            candidates: Vec::new(),
        }
    }

    /// Convenience: a one-candidate plan.
    pub fn single(path: LslPath) -> Result<RoutePlan, PlanError> {
        RoutePlan::builder().path(path).build()
    }

    /// The shared destination hop.
    pub fn dst(&self) -> Hop {
        self.dst
    }

    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Always false — an empty plan cannot be constructed — but the
    /// predicate keeps the container API conventional.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    pub fn candidates(&self) -> &[RouteCandidate] {
        &self.candidates
    }

    pub fn get(&self, idx: usize) -> Option<&RouteCandidate> {
        self.candidates.get(idx)
    }

    /// True if any candidate reaches the destination without a depot.
    pub fn has_depot_free(&self) -> bool {
        self.candidates.iter().any(|c| c.path.depots.is_empty())
    }

    /// Append a recovery-layer fallback candidate (provenance
    /// [`RouteProvenance::Failover`]), validated like any other.
    /// Returns the new candidate's index.
    pub fn push_failover(&mut self, path: LslPath) -> Result<usize, PlanError> {
        validate_path(&path)?;
        if path.dst != self.dst {
            return Err(PlanError::MixedDestination {
                expected: self.dst.node,
                got: path.dst.node,
            });
        }
        self.candidates.push(RouteCandidate {
            path,
            score: None,
            provenance: RouteProvenance::Failover,
        });
        Ok(self.candidates.len() - 1)
    }

    /// Record a forecast score for candidate `idx`. A `Some` score also
    /// stamps the candidate's provenance as forecast-driven; `None`
    /// clears a stale score (the forecaster lost confidence) without
    /// touching provenance.
    pub fn set_score(&mut self, idx: usize, score: Option<u64>) {
        if let Some(c) = self.candidates.get_mut(idx) {
            c.score = score;
            if score.is_some() {
                c.provenance = RouteProvenance::Forecast;
            }
        }
    }
}

/// Builder for [`RoutePlan`]: collects candidates, validates on
/// `build`.
#[derive(Debug, Default)]
pub struct RoutePlanBuilder {
    candidates: Vec<RouteCandidate>,
}

impl RoutePlanBuilder {
    /// Add a statically configured candidate.
    pub fn path(mut self, path: LslPath) -> RoutePlanBuilder {
        self.candidates.push(RouteCandidate::new(path));
        self
    }

    /// Add a fully specified candidate.
    pub fn candidate(mut self, c: RouteCandidate) -> RoutePlanBuilder {
        self.candidates.push(c);
        self
    }

    /// Validate and seal the plan: non-empty, shared destination, every
    /// route loop-free and within [`MAX_HOPS`].
    pub fn build(self) -> Result<RoutePlan, PlanError> {
        let first = self.candidates.first().ok_or(PlanError::Empty)?;
        let dst = first.path.dst;
        for c in &self.candidates {
            validate_path(&c.path)?;
            if c.path.dst != dst {
                return Err(PlanError::MixedDestination {
                    expected: dst.node,
                    got: c.path.dst.node,
                });
            }
        }
        Ok(RoutePlan {
            candidates: self.candidates,
            dst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RouteError;
    use lsl_netsim::NodeId;

    fn hop(n: u32) -> Hop {
        Hop::new(NodeId(n), 7000)
    }

    fn dst() -> Hop {
        Hop::new(NodeId(99), 5001)
    }

    #[test]
    fn builder_validates_and_orders() {
        let plan = RoutePlan::builder()
            .path(LslPath::via(vec![hop(1)], dst()))
            .path(LslPath::via(vec![hop(2)], dst()))
            .path(LslPath::direct(dst()))
            .build()
            .unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.dst(), dst());
        assert!(plan.has_depot_free());
        assert_eq!(plan.get(0).unwrap().path.depots, vec![hop(1)]);
        assert_eq!(plan.get(0).unwrap().provenance, RouteProvenance::Static);
        assert_eq!(plan.get(0).unwrap().score, None);
    }

    #[test]
    fn empty_plan_rejected() {
        assert_eq!(RoutePlan::builder().build().unwrap_err(), PlanError::Empty);
    }

    #[test]
    fn mixed_destination_rejected() {
        let err = RoutePlan::builder()
            .path(LslPath::direct(dst()))
            .path(LslPath::direct(Hop::new(NodeId(7), 5001)))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::MixedDestination {
                expected: NodeId(99),
                got: NodeId(7),
            }
        );
    }

    #[test]
    fn looping_route_rejected() {
        let err = RoutePlan::single(LslPath::via(vec![hop(1), hop(1)], dst())).unwrap_err();
        assert_eq!(err, PlanError::Route(RouteError::DuplicateNode(NodeId(1))));
    }

    #[test]
    fn overlong_route_rejected_at_construction() {
        // MAX_HOPS + 1 depots → the first-hop header would carry
        // MAX_HOPS + 1 hops; the plan refuses before any wire code runs.
        let depots: Vec<Hop> = (1..=MAX_HOPS as u32 + 1).map(hop).collect();
        let err = RoutePlan::single(LslPath::via(depots, dst())).unwrap_err();
        assert_eq!(
            err,
            PlanError::Wire(WireError::RouteTooLong(MAX_HOPS as u8 + 1))
        );
        // The boundary case still builds.
        let depots: Vec<Hop> = (1..=MAX_HOPS as u32).map(hop).collect();
        assert!(RoutePlan::single(LslPath::via(depots, dst())).is_ok());
    }

    #[test]
    fn push_failover_appends_validated_candidate() {
        let mut plan = RoutePlan::single(LslPath::via(vec![hop(1)], dst())).unwrap();
        let idx = plan.push_failover(LslPath::direct(dst())).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(plan.get(1).unwrap().provenance, RouteProvenance::Failover);
        assert!(plan.has_depot_free());
        // Wrong destination still rejected.
        assert!(plan
            .push_failover(LslPath::direct(Hop::new(NodeId(7), 5001)))
            .is_err());
    }

    #[test]
    fn set_score_stamps_forecast_provenance() {
        let mut plan = RoutePlan::single(LslPath::via(vec![hop(1)], dst())).unwrap();
        plan.set_score(0, Some(42));
        assert_eq!(plan.get(0).unwrap().score, Some(42));
        assert_eq!(plan.get(0).unwrap().provenance, RouteProvenance::Forecast);
        plan.set_score(0, None);
        assert_eq!(plan.get(0).unwrap().score, None);
        assert_eq!(plan.get(0).unwrap().provenance, RouteProvenance::Forecast);
        // Out-of-range index is a no-op, not a panic.
        plan.set_score(9, Some(1));
    }
}
