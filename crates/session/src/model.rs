//! Analytic TCP and cascade throughput models.
//!
//! Two uses: (1) depot/path selection needs a forward model of what a
//! candidate cascade would achieve (the paper assumes NWS-style forecast
//! inputs); (2) experiment calibration — the simulator's measured curves
//! should sit near these closed forms, which encode exactly the
//! RTT-clocking arguments of the paper's §V/§VI:
//!
//! * slow start doubles cwnd once per RTT, so ramp time scales with RTT,
//! * steady-state loss-limited throughput follows the Mathis bound
//!   `BW = (MSS/RTT) · C/√p` (the paper's citation [25]),
//! * a pipelined cascade is gated by its slowest sublink, plus the
//!   sequential connection setup of each hop.

/// Mathis constant √(3/2) for periodic-loss Reno.
const MATHIS_C: f64 = 1.224744871391589;

/// Model of one TCP path (a direct connection or a single sublink).
#[derive(Clone, Copy, Debug)]
pub struct TcpPathModel {
    /// Round-trip time, seconds.
    pub rtt: f64,
    /// Bottleneck link rate, bits/s.
    pub bottleneck_bps: f64,
    /// Per-packet loss probability.
    pub loss: f64,
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// End-host buffer / max window, bytes (8 MB in the paper's hosts).
    pub max_window: u64,
}

impl TcpPathModel {
    pub fn new(rtt: f64, bottleneck_bps: f64, loss: f64) -> TcpPathModel {
        assert!(rtt > 0.0 && bottleneck_bps > 0.0 && (0.0..1.0).contains(&loss));
        TcpPathModel {
            rtt,
            bottleneck_bps,
            loss,
            mss: 1460,
            max_window: 8 * 1024 * 1024,
        }
    }

    /// Steady-state throughput ceiling in bits/s: the minimum of the
    /// Mathis loss bound, the window/RTT bound, and the bottleneck rate.
    pub fn steady_bw(&self) -> f64 {
        let window_bound = self.max_window as f64 * 8.0 / self.rtt;
        let mut bw = self.bottleneck_bps.min(window_bound);
        if self.loss > 0.0 {
            let mathis = (self.mss as f64 * 8.0 / self.rtt) * MATHIS_C / self.loss.sqrt();
            bw = bw.min(mathis);
        }
        bw
    }

    /// The congestion window (bytes) at which `steady_bw` is attained.
    fn steady_window(&self) -> f64 {
        self.steady_bw() * self.rtt / 8.0
    }

    /// Time for one connection handshake (SYN + SYN-ACK; the first data
    /// segment rides immediately after the final ACK).
    pub fn handshake_time(&self) -> f64 {
        self.rtt
    }

    /// Model of a bulk transfer of `size` payload bytes over an
    /// established connection: slow-start rounds doubling from
    /// `init_cwnd` until the steady window, then line-rate at
    /// `steady_bw`. Returns seconds until the last byte *arrives* at the
    /// receiver (half an RTT after it is sent).
    pub fn transfer_time(&self, size: u64, init_cwnd: u64) -> f64 {
        if size == 0 {
            return self.rtt / 2.0;
        }
        let steady_w = self.steady_window().max(init_cwnd as f64);
        let mut cwnd = init_cwnd as f64;
        let mut sent = 0.0;
        let mut t = 0.0;
        let size_f = size as f64;
        // Slow-start rounds: one window per RTT.
        while cwnd < steady_w {
            if sent + cwnd >= size_f {
                // Final partial round: the data goes out within this RTT.
                return t + self.rtt / 2.0 + (size_f - sent) * 8.0 / self.bottleneck_bps;
            }
            sent += cwnd;
            t += self.rtt;
            cwnd = (cwnd * 2.0).min(steady_w);
        }
        // Steady phase.
        let remaining = size_f - sent;
        t + remaining * 8.0 / self.steady_bw() + self.rtt / 2.0
    }

    /// Average goodput (bits/s) for a transfer of `size` bytes including
    /// the handshake.
    pub fn goodput(&self, size: u64, init_cwnd: u64) -> f64 {
        let t = self.handshake_time() + self.transfer_time(size, init_cwnd);
        size as f64 * 8.0 / t
    }
}

/// Model of an LSL cascade as a chain of sublink models.
#[derive(Clone, Debug)]
pub struct CascadeModel {
    pub sublinks: Vec<TcpPathModel>,
    /// Per-depot store-and-forward processing overhead, seconds per hop
    /// (header parse + buffer copy; small for an unprivileged process).
    pub depot_overhead: f64,
    /// LSL header + digest bytes added to the stream.
    pub framing_bytes: u64,
    /// Synchronous session establishment (the paper's measured mode):
    /// the source streams only after the sink's session confirmation has
    /// travelled back through the cascade, so setup costs a full
    /// round trip over every sublink — `2·Σ rtt_i` — instead of the
    /// sequential handshake sum.
    pub sync_setup: bool,
}

impl CascadeModel {
    pub fn new(sublinks: Vec<TcpPathModel>) -> CascadeModel {
        assert!(!sublinks.is_empty());
        CascadeModel {
            sublinks,
            depot_overhead: 0.0005,
            framing_bytes: 47 + 16,
            sync_setup: true,
        }
    }

    /// End-to-end transfer time: per-hop connection setup (each depot
    /// connects onward only after reading the header; with `sync_setup`
    /// the sink's confirmation must also return), then a pipelined
    /// stream gated by the slowest sublink, plus the one-way latency of
    /// the remaining hops.
    pub fn transfer_time(&self, size: u64, init_cwnd: u64) -> f64 {
        let size = size + self.framing_bytes;
        let rtt_sum: f64 = self.sublinks.iter().map(|s| s.rtt).sum();
        let overheads: f64 = self.depot_overhead * self.sublinks.len() as f64;
        let setup: f64 = if self.sync_setup {
            // Handshake + header forward (1.5·Σrtt) and confirmation
            // back (0.5·Σrtt).
            2.0 * rtt_sum + overheads
        } else {
            rtt_sum + overheads
        };
        let slowest = self
            .sublinks
            .iter()
            .map(|s| s.transfer_time(size, init_cwnd))
            .fold(0.0f64, f64::max);
        // The non-bottleneck hops add only their one-way propagation.
        let extra_latency: f64 = self.sublinks.iter().map(|s| s.rtt / 2.0).sum::<f64>()
            - self
                .sublinks
                .iter()
                .map(|s| s.rtt / 2.0)
                .fold(0.0f64, f64::max);
        setup + slowest + extra_latency
    }

    /// Average goodput in bits/s.
    pub fn goodput(&self, size: u64, init_cwnd: u64) -> f64 {
        size as f64 * 8.0 / self.transfer_time(size, init_cwnd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INIT_CWND: u64 = 2 * 1460;

    #[test]
    fn steady_bw_respects_all_three_bounds() {
        // Loss-free: bottleneck binds.
        let clean = TcpPathModel::new(0.05, 10e6, 0.0);
        assert!((clean.steady_bw() - 10e6).abs() < 1.0);
        // Lossy long path: Mathis binds below bottleneck.
        let lossy = TcpPathModel::new(0.06, 100e6, 1e-3);
        assert!(lossy.steady_bw() < 100e6);
        // Tiny window binds.
        let mut small = TcpPathModel::new(0.1, 1e9, 0.0);
        small.max_window = 64 * 1024;
        assert!((small.steady_bw() - 64.0 * 1024.0 * 8.0 / 0.1).abs() < 1.0);
    }

    #[test]
    fn halving_rtt_doubles_mathis_bound() {
        let long = TcpPathModel::new(0.06, 1e12, 1e-4);
        let short = TcpPathModel::new(0.03, 1e12, 1e-4);
        let ratio = short.steady_bw() / long.steady_bw();
        assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn transfer_time_monotone_in_size() {
        let m = TcpPathModel::new(0.05, 10e6, 1e-4);
        let mut prev = 0.0;
        for size in [1u64 << 10, 1 << 15, 1 << 20, 1 << 25] {
            let t = m.transfer_time(size, INIT_CWND);
            assert!(t > prev, "size {size}");
            prev = t;
        }
    }

    #[test]
    fn longer_rtt_slows_small_transfers_superlinearly() {
        // Slow start penalty: for small transfers, time ≈ k·RTT, so the
        // ratio between 100 ms and 50 ms paths should be ≈ 2 even though
        // the bottleneck is identical.
        let slow = TcpPathModel::new(0.1, 100e6, 0.0);
        let fast = TcpPathModel::new(0.05, 100e6, 0.0);
        let size = 256 * 1024;
        let ratio = slow.transfer_time(size, INIT_CWND) / fast.transfer_time(size, INIT_CWND);
        assert!(ratio > 1.8, "ratio {ratio}");
    }

    #[test]
    fn goodput_approaches_steady_bw_for_large_transfers() {
        let m = TcpPathModel::new(0.04, 20e6, 0.0);
        let g = m.goodput(256 << 20, INIT_CWND);
        assert!(g > 0.95 * m.steady_bw(), "goodput {g}");
    }

    #[test]
    fn cascade_beats_direct_on_lossy_long_path() {
        // The paper's core claim, in model form: splitting a 60 ms lossy
        // path into two 30 ms halves raises the loss-limited ceiling.
        let direct = TcpPathModel::new(0.06, 622e6, 1e-4);
        let cascade = CascadeModel::new(vec![
            TcpPathModel::new(0.03, 622e6, 1e-4),
            TcpPathModel::new(0.03, 622e6, 1e-4),
        ]);
        let size = 64 << 20;
        let t_direct = direct.handshake_time() + direct.transfer_time(size, INIT_CWND);
        let t_cascade = cascade.transfer_time(size, INIT_CWND);
        assert!(
            t_cascade < t_direct,
            "cascade {t_cascade}s vs direct {t_direct}s"
        );
    }

    #[test]
    fn cascade_loses_on_tiny_transfers() {
        // Synchronous session setup over the detoured path (35+35 ms vs
        // 60 ms direct) cannot be amortized at 32 KB — Fig 5's left edge.
        let direct = TcpPathModel::new(0.06, 622e6, 1e-4);
        let cascade = CascadeModel::new(vec![
            TcpPathModel::new(0.035, 622e6, 1e-4),
            TcpPathModel::new(0.035, 622e6, 1e-4),
        ]);
        let size = 32 << 10;
        let t_direct = direct.handshake_time() + direct.transfer_time(size, INIT_CWND);
        let t_cascade = cascade.transfer_time(size, INIT_CWND);
        assert!(
            t_cascade > t_direct,
            "cascade {t_cascade}s vs direct {t_direct}s at 32 KB"
        );
    }

    #[test]
    fn cascade_gated_by_slowest_sublink() {
        let fast = TcpPathModel::new(0.01, 100e6, 0.0);
        let slow = TcpPathModel::new(0.01, 5e6, 0.0);
        let c = CascadeModel::new(vec![fast, slow]);
        let size = 16 << 20;
        let t = c.transfer_time(size, INIT_CWND);
        let bound = slow.transfer_time(size + c.framing_bytes, INIT_CWND);
        assert!(t >= bound, "cascade {t} < slowest hop {bound}");
        // And not much more than it.
        assert!(t < bound * 1.2);
    }

    #[test]
    fn zero_size_is_latency_only() {
        let m = TcpPathModel::new(0.08, 1e6, 0.0);
        assert!((m.transfer_time(0, INIT_CWND) - 0.04).abs() < 1e-9);
    }
}
