//! The LSL wire header, exchanged at the head of every sublink.
//!
//! Layout (big-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "LSL1"
//! 4       1     version (1)
//! 5       1     flags (bit 0: MD5 digest trails the payload)
//! 6       16    session id
//! 22      8     payload length in bytes (u64::MAX = until FIN)
//! 30      1     remaining hop count n (the loose source route)
//! 31      6n    hops: node id u32 + port u16, last hop = destination
//! ```
//!
//! A depot reads the header, pops the first hop, opens the next sublink
//! and forwards the header with the shortened route. The sink receives a
//! header whose route is empty.

use bytes::{BufMut, Bytes, BytesMut};
use lsl_netsim::NodeId;

use crate::error::WireError;
use crate::id::SessionId;
use crate::route::Hop;

/// Flag bit: an MD5 digest (16 bytes) follows the payload.
pub const HEADER_FLAG_DIGEST: u8 = 0x01;

const MAGIC: &[u8; 4] = b"LSL1";
const VERSION: u8 = 1;
const FIXED_LEN: usize = 31;
/// Upper bound on hops, which bounds header size for parser buffers.
pub const MAX_HOPS: usize = 16;

/// Parsed LSL header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LslHeader {
    pub session: SessionId,
    pub flags: u8,
    /// Total payload bytes; `u64::MAX` means "stream until FIN".
    pub length: u64,
    /// Remaining hops, ending with the destination. Empty at the sink.
    pub route: Vec<Hop>,
}

impl LslHeader {
    pub fn has_digest(&self) -> bool {
        self.flags & HEADER_FLAG_DIGEST != 0
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        FIXED_LEN + 6 * self.route.len()
    }

    pub fn encode(&self) -> Bytes {
        assert!(self.route.len() <= MAX_HOPS, "route too long");
        let mut b = BytesMut::with_capacity(self.encoded_len());
        b.put_slice(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(self.flags);
        b.put_slice(&self.session.to_bytes());
        b.put_u64(self.length);
        b.put_u8(self.route.len() as u8);
        for hop in &self.route {
            b.put_u32(hop.node.0);
            b.put_u16(hop.port);
        }
        b.freeze()
    }

    /// Attempt to parse a header from the front of `buf`.
    ///
    /// * `Ok(Some((header, consumed)))` — complete header parsed.
    /// * `Ok(None)` — need more bytes.
    /// * `Err(_)` — malformed (bad magic/version/hop count).
    ///
    /// `Ok(None)` means more bytes *may* complete the header; if the
    /// stream ends instead, the caller reports
    /// [`WireError::TruncatedHeader`].
    pub fn decode(buf: &[u8]) -> Result<Option<(LslHeader, usize)>, WireError> {
        if buf.len() < FIXED_LEN {
            // Reject early on bad magic so garbage connections fail fast.
            let n = buf.len().min(4);
            if buf[..n] != MAGIC[..n] {
                return Err(WireError::BadMagic);
            }
            return Ok(None);
        }
        if &buf[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        if buf[4] != VERSION {
            return Err(WireError::UnsupportedVersion(buf[4]));
        }
        let flags = buf[5];
        let session = SessionId::from_bytes(buf[6..22].try_into().expect("16 bytes"));
        let length = u64::from_be_bytes(buf[22..30].try_into().expect("8 bytes"));
        let nhops = buf[30] as usize;
        if nhops > MAX_HOPS {
            return Err(WireError::RouteTooLong(buf[30]));
        }
        let total = FIXED_LEN + 6 * nhops;
        if buf.len() < total {
            return Ok(None);
        }
        let mut route = Vec::with_capacity(nhops);
        for i in 0..nhops {
            let off = FIXED_LEN + 6 * i;
            let node = u32::from_be_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
            let port = u16::from_be_bytes(buf[off + 4..off + 6].try_into().expect("2 bytes"));
            route.push(Hop::new(NodeId(node), port));
        }
        Ok(Some((
            LslHeader {
                session,
                flags,
                length,
                route,
            },
            total,
        )))
    }

    /// The header a depot forwards: same session, route minus its first
    /// hop. Returns the popped next hop alongside.
    pub fn pop_hop(&self) -> Option<(Hop, LslHeader)> {
        let (&next, rest) = self.route.split_first()?;
        Some((
            next,
            LslHeader {
                session: self.session,
                flags: self.flags,
                length: self.length,
                route: rest.to_vec(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(nhops: usize) -> LslHeader {
        LslHeader {
            session: SessionId(0xdead_beef_cafe_f00d_0123_4567_89ab_cdef),
            flags: HEADER_FLAG_DIGEST,
            length: 1 << 26,
            route: (0..nhops)
                .map(|i| Hop::new(NodeId(i as u32 + 1), 7000 + i as u16))
                .collect(),
        }
    }

    #[test]
    fn roundtrip() {
        for n in [0, 1, 2, 5, MAX_HOPS] {
            let h = header(n);
            let enc = h.encode();
            assert_eq!(enc.len(), h.encoded_len());
            let (dec, used) = LslHeader::decode(&enc).unwrap().unwrap();
            assert_eq!(used, enc.len());
            assert_eq!(dec, h);
        }
    }

    #[test]
    fn partial_input_needs_more() {
        let enc = header(3).encode();
        for cut in 4..enc.len() {
            assert_eq!(
                LslHeader::decode(&enc[..cut]).unwrap(),
                None,
                "cut at {cut}"
            );
        }
        // Trailing payload bytes after the header are not consumed.
        let mut extended = enc.to_vec();
        extended.extend_from_slice(b"payload");
        let (_, used) = LslHeader::decode(&extended).unwrap().unwrap();
        assert_eq!(used, enc.len());
    }

    #[test]
    fn bad_magic_rejected_early() {
        assert_eq!(LslHeader::decode(b"XXXX"), Err(WireError::BadMagic));
        assert!(LslHeader::decode(b"LS").is_ok()); // prefix still plausible
        assert_eq!(LslHeader::decode(b"LSX"), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut enc = header(0).encode().to_vec();
        enc[4] = 9;
        assert_eq!(
            LslHeader::decode(&enc),
            Err(WireError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn oversized_route_rejected() {
        let mut enc = header(0).encode().to_vec();
        enc[30] = (MAX_HOPS + 1) as u8;
        assert_eq!(
            LslHeader::decode(&enc),
            Err(WireError::RouteTooLong((MAX_HOPS + 1) as u8))
        );
    }

    #[test]
    fn pop_hop_shortens_route() {
        let h = header(2);
        let (next, fwd) = h.pop_hop().unwrap();
        assert_eq!(next, h.route[0]);
        assert_eq!(fwd.route, h.route[1..]);
        assert_eq!(fwd.session, h.session);
        let (_, last) = fwd.pop_hop().unwrap();
        assert!(last.route.is_empty());
        assert!(last.pop_hop().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn codec_roundtrip(sid in any::<u128>(), flags in any::<u8>(),
                           length in any::<u64>(),
                           hops in proptest::collection::vec((any::<u32>(), any::<u16>()), 0..MAX_HOPS)) {
            let h = LslHeader {
                session: SessionId(sid),
                flags,
                length,
                route: hops.into_iter().map(|(n, p)| Hop::new(NodeId(n), p)).collect(),
            };
            let enc = h.encode();
            let (dec, used) = LslHeader::decode(&enc).unwrap().unwrap();
            prop_assert_eq!(used, enc.len());
            prop_assert_eq!(dec, h);
        }

        /// Decoding arbitrary bytes never panics.
        #[test]
        fn decode_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = LslHeader::decode(&data);
        }

        /// Every strict prefix of a valid encoding either asks for more
        /// bytes or reports `BadMagic` (never a spurious later error, and
        /// never a bogus parse).
        #[test]
        fn truncation_never_misparses(sid in any::<u128>(), length in any::<u64>(),
                                      nhops in 0usize..MAX_HOPS,
                                      cut_frac in 0.0f64..1.0) {
            let h = LslHeader {
                session: SessionId(sid),
                flags: HEADER_FLAG_DIGEST,
                length,
                route: (0..nhops).map(|i| Hop::new(NodeId(i as u32), 7000)).collect(),
            };
            let enc = h.encode();
            let cut = ((enc.len() as f64) * cut_frac) as usize; // < len
            match LslHeader::decode(&enc[..cut]) {
                Ok(None) => {}
                Err(WireError::BadMagic) => prop_assert!(cut < 4),
                other => prop_assert!(false, "prefix of len {cut} gave {other:?}"),
            }
        }

        /// A single corrupted byte in the fixed part is either detected as
        /// a typed wire error or yields a header that differs from the
        /// original only where the flip landed in an unvalidated field —
        /// never a panic, and magic/version/hop-count damage is always
        /// caught.
        #[test]
        fn corruption_is_detected_or_contained(sid in any::<u128>(),
                                               pos in 0usize..FIXED_LEN,
                                               flip in 1u8..=255) {
            let h = LslHeader {
                session: SessionId(sid),
                flags: 0,
                length: 4096,
                route: vec![Hop::new(NodeId(7), 7000)],
            };
            let mut enc = h.encode().to_vec();
            enc[pos] ^= flip;
            match (pos, LslHeader::decode(&enc)) {
                (0..=3, res) => prop_assert_eq!(res, Err(WireError::BadMagic)),
                (4, res) => prop_assert_eq!(res, Err(WireError::UnsupportedVersion(1 ^ flip))),
                (30, res) => {
                    // Hop count either exceeds MAX_HOPS (typed error) or the
                    // parser waits for the longer route it now expects.
                    let claimed = 1 ^ flip;
                    if claimed as usize > MAX_HOPS {
                        prop_assert_eq!(res, Err(WireError::RouteTooLong(claimed)));
                    } else {
                        prop_assert!(matches!(res, Ok(None)) || claimed as usize <= 1);
                    }
                }
                (_, res) => {
                    // Flags/session/length are opaque payload fields: the
                    // header still parses, and differs from the original.
                    let (dec, _) = res.unwrap().unwrap();
                    prop_assert_ne!(dec, h);
                }
            }
        }

        /// `pop_hop` terminates: a route of n hops exhausts after exactly
        /// n pops (hop exhaustion at the sink is a defined state, not an
        /// error or a loop).
        #[test]
        fn pop_hop_exhausts_after_route_len(nhops in 0usize..=MAX_HOPS) {
            let mut h = LslHeader {
                session: SessionId(1),
                flags: 0,
                length: 0,
                route: (0..nhops).map(|i| Hop::new(NodeId(i as u32), 7000)).collect(),
            };
            for left in (0..nhops).rev() {
                let (_, next) = h.pop_hop().unwrap();
                prop_assert_eq!(next.route.len(), left);
                h = next;
            }
            prop_assert!(h.pop_hop().is_none());
        }
    }
}
