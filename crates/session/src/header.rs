//! The LSL wire header, exchanged at the head of every sublink.
//!
//! Version 1 layout (big-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "LSL1"
//! 4       1     version (1)
//! 5       1     flags (bit 0: MD5 digest trails the payload)
//! 6       16    session id
//! 22      8     payload length in bytes (u64::MAX = until FIN)
//! 30      1     remaining hop count n (the loose source route)
//! 31      6n    hops: node id u32 + port u16, last hop = destination
//! ```
//!
//! Version 2 adds a resume request between the length and the hop
//! count — the sender's claim of how far a previous attempt of this
//! session got (see [`Resume`]); the sink replies with the offset it
//! actually *grants*:
//!
//! ```text
//! 30      8     requested resume offset in bytes
//! 38      8     last block the sender believes is verified (u64::MAX
//!               when no block is — i.e. resume-capable, starting fresh)
//! 46      1     remaining hop count n
//! 47      6n    hops
//! ```
//!
//! A v1 header is emitted whenever no resume request rides along, so
//! every pre-resume flow stays bit-identical on the wire; a v1-only
//! decoder confronted with a v2 header fails with the *typed*
//! [`WireError::UnsupportedVersion`]`(2)` rather than misparsing.
//!
//! Version 3 generalizes the resume request to a *block-range* request
//! for striped sessions: one of N concurrent cascades asks to carry
//! blocks `[start_block, end_block)` of the stream (see [`StripeReq`]).
//! The fixed-part layout mirrors v2 (two u64s between length and hop
//! count), and the sink replies with the block range it *grants* —
//! possibly advanced past blocks another cascade already delivered:
//!
//! ```text
//! 30      8     first block of the requested range
//! 38      8     one-past-last block of the requested range
//! 46      1     remaining hop count n
//! 47      6n    hops
//! ```
//!
//! A depot reads the header, pops the first hop, opens the next sublink
//! and forwards the header with the shortened route (resume fields
//! ride along untouched — they are end-to-end state, not depot state).
//! The sink receives a header whose route is empty.

use bytes::{BufMut, Bytes, BytesMut};
use lsl_netsim::NodeId;

use crate::error::WireError;
use crate::id::SessionId;
use crate::route::Hop;

/// Flag bit: an MD5 digest (16 bytes) follows the payload.
pub const HEADER_FLAG_DIGEST: u8 = 0x01;

const MAGIC: &[u8; 4] = b"LSL1";
const VERSION: u8 = 1;
/// Version carrying the [`Resume`] request fields.
const VERSION_RESUME: u8 = 2;
/// Version carrying the [`StripeReq`] block-range fields.
const VERSION_STRIPE: u8 = 3;
const FIXED_LEN: usize = 31;
const FIXED_LEN_RESUME: usize = 47;
const FIXED_LEN_STRIPE: usize = 47;
/// Upper bound on hops, which bounds header size for parser buffers.
pub const MAX_HOPS: usize = 16;

/// Sentinel for [`Resume::verified_block`]: no block verified yet.
pub const NO_VERIFIED_BLOCK: u64 = u64::MAX;

/// A sender's resume request, carried by a version-2 header: where a
/// previous attempt of this session is believed to have got. The sink
/// is the authority — it replies with the offset it *grants* (its own
/// contiguously verified boundary), which is what the sender streams
/// from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resume {
    /// Byte offset the sender asks to resume from (0 = fresh start).
    pub offset: u64,
    /// Index of the last block the sender believes the sink verified,
    /// or [`NO_VERIFIED_BLOCK`] when none is.
    pub verified_block: u64,
}

impl Resume {
    /// A resume-capable request that starts from scratch (the first
    /// attempt of a resumable session).
    pub fn fresh() -> Resume {
        Resume {
            offset: 0,
            verified_block: NO_VERIFIED_BLOCK,
        }
    }
}

/// A striped cascade's block-range request, carried by a version-3
/// header: this connection offers to carry blocks
/// `[start_block, end_block)` of the session's stream. As with
/// [`Resume`], the sink is the authority — it grants the range it
/// still needs (advancing `start_block` past blocks another cascade
/// already delivered; an empty grant means the whole range is covered).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeReq {
    /// First block of the requested range.
    pub start_block: u64,
    /// One past the last block of the requested range.
    pub end_block: u64,
}

/// Parsed LSL header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LslHeader {
    pub session: SessionId,
    pub flags: u8,
    /// Total payload bytes; `u64::MAX` means "stream until FIN".
    pub length: u64,
    /// Resume request (version-2 headers only). `None` encodes as a
    /// version-1 header, bit-identical to the pre-resume wire format.
    pub resume: Option<Resume>,
    /// Striped block-range request (version-3 headers only). Mutually
    /// exclusive with `resume`.
    pub stripe: Option<StripeReq>,
    /// Remaining hops, ending with the destination. Empty at the sink.
    pub route: Vec<Hop>,
}

impl LslHeader {
    pub fn has_digest(&self) -> bool {
        self.flags & HEADER_FLAG_DIGEST != 0
    }

    fn fixed_len(&self) -> usize {
        if self.stripe.is_some() {
            FIXED_LEN_STRIPE
        } else if self.resume.is_some() {
            FIXED_LEN_RESUME
        } else {
            FIXED_LEN
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.fixed_len() + 6 * self.route.len()
    }

    /// Encode the header for the wire.
    ///
    /// Fails with [`WireError::RouteTooLong`] when the route exceeds
    /// [`MAX_HOPS`] — route validation happens at `RoutePlan`
    /// construction time, so in-repo senders never reach this arm; it
    /// exists so the encode path is total rather than panicking.
    pub fn encode(&self) -> Result<Bytes, WireError> {
        if self.route.len() > MAX_HOPS {
            return Err(WireError::RouteTooLong(
                u8::try_from(self.route.len()).unwrap_or(u8::MAX),
            ));
        }
        assert!(
            self.resume.is_none() || self.stripe.is_none(),
            "resume and stripe requests are mutually exclusive"
        );
        let mut b = BytesMut::with_capacity(self.encoded_len());
        b.put_slice(MAGIC);
        b.put_u8(if self.stripe.is_some() {
            VERSION_STRIPE
        } else if self.resume.is_some() {
            VERSION_RESUME
        } else {
            VERSION
        });
        b.put_u8(self.flags);
        b.put_slice(&self.session.to_bytes());
        b.put_u64(self.length);
        if let Some(s) = self.stripe {
            b.put_u64(s.start_block);
            b.put_u64(s.end_block);
        } else if let Some(r) = self.resume {
            b.put_u64(r.offset);
            b.put_u64(r.verified_block);
        }
        b.put_u8(self.route.len() as u8);
        for hop in &self.route {
            b.put_u32(hop.node.0);
            b.put_u16(hop.port);
        }
        Ok(b.freeze())
    }

    /// Attempt to parse a header from the front of `buf`.
    ///
    /// * `Ok(Some((header, consumed)))` — complete header parsed.
    /// * `Ok(None)` — need more bytes.
    /// * `Err(_)` — malformed (bad magic/version/hop count).
    ///
    /// `Ok(None)` means more bytes *may* complete the header; if the
    /// stream ends instead, the caller reports
    /// [`WireError::TruncatedHeader`].
    pub fn decode(buf: &[u8]) -> Result<Option<(LslHeader, usize)>, WireError> {
        // Reject early on bad magic so garbage connections fail fast.
        let n = buf.len().min(4);
        if buf[..n] != MAGIC[..n] {
            return Err(WireError::BadMagic);
        }
        if buf.len() < 5 {
            return Ok(None);
        }
        // The version byte picks the fixed-part layout.
        let fixed = match buf[4] {
            VERSION => FIXED_LEN,
            VERSION_RESUME => FIXED_LEN_RESUME,
            VERSION_STRIPE => FIXED_LEN_STRIPE,
            v => return Err(WireError::UnsupportedVersion(v)),
        };
        if buf.len() < fixed {
            return Ok(None);
        }
        let flags = buf[5];
        let session = SessionId::from_bytes(buf[6..22].try_into().expect("16 bytes"));
        let length = u64::from_be_bytes(buf[22..30].try_into().expect("8 bytes"));
        let resume = if buf[4] == VERSION_RESUME {
            Some(Resume {
                offset: u64::from_be_bytes(buf[30..38].try_into().expect("8 bytes")),
                verified_block: u64::from_be_bytes(buf[38..46].try_into().expect("8 bytes")),
            })
        } else {
            None
        };
        let stripe = if buf[4] == VERSION_STRIPE {
            Some(StripeReq {
                start_block: u64::from_be_bytes(buf[30..38].try_into().expect("8 bytes")),
                end_block: u64::from_be_bytes(buf[38..46].try_into().expect("8 bytes")),
            })
        } else {
            None
        };
        let nhops = buf[fixed - 1] as usize;
        if nhops > MAX_HOPS {
            return Err(WireError::RouteTooLong(buf[fixed - 1]));
        }
        let total = fixed + 6 * nhops;
        if buf.len() < total {
            return Ok(None);
        }
        let mut route = Vec::with_capacity(nhops);
        for i in 0..nhops {
            let off = fixed + 6 * i;
            let node = u32::from_be_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
            let port = u16::from_be_bytes(buf[off + 4..off + 6].try_into().expect("2 bytes"));
            route.push(Hop::new(NodeId(node), port));
        }
        Ok(Some((
            LslHeader {
                session,
                flags,
                length,
                resume,
                stripe,
                route,
            },
            total,
        )))
    }

    /// The header a depot forwards: same session, route minus its first
    /// hop. Returns the popped next hop alongside. Resume and stripe
    /// fields are end-to-end state and ride along untouched.
    pub fn pop_hop(&self) -> Option<(Hop, LslHeader)> {
        let (&next, rest) = self.route.split_first()?;
        Some((
            next,
            LslHeader {
                session: self.session,
                flags: self.flags,
                length: self.length,
                resume: self.resume,
                stripe: self.stripe,
                route: rest.to_vec(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(nhops: usize) -> LslHeader {
        LslHeader {
            session: SessionId(0xdead_beef_cafe_f00d_0123_4567_89ab_cdef),
            flags: HEADER_FLAG_DIGEST,
            length: 1 << 26,
            resume: None,
            stripe: None,
            route: (0..nhops)
                .map(|i| Hop::new(NodeId(i as u32 + 1), 7000 + i as u16))
                .collect(),
        }
    }

    fn header_v2(nhops: usize, resume: Resume) -> LslHeader {
        LslHeader {
            resume: Some(resume),
            ..header(nhops)
        }
    }

    fn header_v3(nhops: usize, stripe: StripeReq) -> LslHeader {
        LslHeader {
            stripe: Some(stripe),
            ..header(nhops)
        }
    }

    #[test]
    fn roundtrip() {
        for n in [0, 1, 2, 5, MAX_HOPS] {
            let h = header(n);
            let enc = h.encode().unwrap();
            assert_eq!(enc.len(), h.encoded_len());
            let (dec, used) = LslHeader::decode(&enc).unwrap().unwrap();
            assert_eq!(used, enc.len());
            assert_eq!(dec, h);
        }
    }

    #[test]
    fn roundtrip_v2() {
        for n in [0, 1, 2, MAX_HOPS] {
            for resume in [
                Resume::fresh(),
                Resume {
                    offset: 42 << 16,
                    verified_block: 41,
                },
            ] {
                let h = header_v2(n, resume);
                let enc = h.encode().unwrap();
                assert_eq!(enc.len(), h.encoded_len());
                assert_eq!(enc[4], VERSION_RESUME);
                let (dec, used) = LslHeader::decode(&enc).unwrap().unwrap();
                assert_eq!(used, enc.len());
                assert_eq!(dec, h);
            }
        }
    }

    #[test]
    fn roundtrip_v3() {
        for n in [0, 1, 2, MAX_HOPS] {
            for stripe in [
                StripeReq {
                    start_block: 0,
                    end_block: 8,
                },
                StripeReq {
                    start_block: 24,
                    end_block: 32,
                },
            ] {
                let h = header_v3(n, stripe);
                let enc = h.encode().unwrap();
                assert_eq!(enc.len(), h.encoded_len());
                assert_eq!(enc[4], VERSION_STRIPE);
                let (dec, used) = LslHeader::decode(&enc).unwrap().unwrap();
                assert_eq!(used, enc.len());
                assert_eq!(dec, h);
            }
        }
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn resume_and_stripe_together_are_rejected() {
        let h = LslHeader {
            resume: Some(Resume::fresh()),
            ..header_v3(
                1,
                StripeReq {
                    start_block: 0,
                    end_block: 1,
                },
            )
        };
        let _ = h.encode();
    }

    #[test]
    fn v1_wire_format_is_unchanged_by_the_resume_extension() {
        // Pre-resume flows must stay bit-identical: no-resume headers
        // still encode as 31-byte-fixed version-1 headers.
        let h = header(2);
        let enc = h.encode().unwrap();
        assert_eq!(enc[4], VERSION);
        assert_eq!(enc.len(), 31 + 6 * 2);
    }

    #[test]
    fn v1_only_decoder_gets_typed_error_for_v2() {
        // Simulate a pre-resume decoder: it knows only version 1, so the
        // version byte of a v2 header must surface as the typed
        // `UnsupportedVersion(2)` — exactly what the current decoder
        // reports for any version it does not know.
        let enc = header_v2(1, Resume::fresh()).encode().unwrap();
        let mut unknown = enc.to_vec();
        unknown[4] = 4; // a future version neither decoder knows
        assert_eq!(
            LslHeader::decode(&unknown),
            Err(WireError::UnsupportedVersion(4))
        );
    }

    #[test]
    fn partial_input_needs_more() {
        for enc in [
            header(3).encode().unwrap(),
            header_v2(3, Resume::fresh()).encode().unwrap(),
            header_v3(
                3,
                StripeReq {
                    start_block: 8,
                    end_block: 16,
                },
            )
            .encode()
            .unwrap(),
        ] {
            for cut in 4..enc.len() {
                assert_eq!(
                    LslHeader::decode(&enc[..cut]).unwrap(),
                    None,
                    "cut at {cut}"
                );
            }
            // Trailing payload bytes after the header are not consumed.
            let mut extended = enc.to_vec();
            extended.extend_from_slice(b"payload");
            let (_, used) = LslHeader::decode(&extended).unwrap().unwrap();
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn until_fin_sentinel_rides_with_resume() {
        // `length == u64::MAX` ("until FIN") and a resume offset are
        // orthogonal: the sentinel must survive a v2 round-trip next to
        // a real offset, and must not be confused with the
        // NO_VERIFIED_BLOCK sentinel that shares its bit pattern.
        let h = LslHeader {
            length: u64::MAX,
            ..header_v2(
                1,
                Resume {
                    offset: 7 << 20,
                    verified_block: 6,
                },
            )
        };
        let (dec, _) = LslHeader::decode(&h.encode().unwrap()).unwrap().unwrap();
        assert_eq!(dec.length, u64::MAX);
        assert_eq!(dec.resume.unwrap().offset, 7 << 20);
        assert_eq!(dec.resume.unwrap().verified_block, 6);
    }

    #[test]
    fn bad_magic_rejected_early() {
        assert_eq!(LslHeader::decode(b"XXXX"), Err(WireError::BadMagic));
        assert!(LslHeader::decode(b"LS").is_ok()); // prefix still plausible
        assert_eq!(LslHeader::decode(b"LSX"), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut enc = header(0).encode().unwrap().to_vec();
        enc[4] = 9;
        assert_eq!(
            LslHeader::decode(&enc),
            Err(WireError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn oversized_route_rejected() {
        let mut enc = header(0).encode().unwrap().to_vec();
        enc[30] = (MAX_HOPS + 1) as u8;
        assert_eq!(
            LslHeader::decode(&enc),
            Err(WireError::RouteTooLong((MAX_HOPS + 1) as u8))
        );
    }

    #[test]
    fn oversized_route_fails_encode_with_typed_error() {
        // The encode path is total: an over-long route surfaces as the
        // same typed error the decoder reports, never a panic.
        let h = header(MAX_HOPS + 1);
        assert_eq!(
            h.encode(),
            Err(WireError::RouteTooLong((MAX_HOPS + 1) as u8))
        );
    }

    #[test]
    fn pop_hop_shortens_route() {
        let h = header(2);
        let (next, fwd) = h.pop_hop().unwrap();
        assert_eq!(next, h.route[0]);
        assert_eq!(fwd.route, h.route[1..]);
        assert_eq!(fwd.session, h.session);
        let (_, last) = fwd.pop_hop().unwrap();
        assert!(last.route.is_empty());
        assert!(last.pop_hop().is_none());
    }

    #[test]
    fn pop_hop_preserves_resume() {
        let h = header_v2(
            2,
            Resume {
                offset: 123,
                verified_block: 0,
            },
        );
        let (_, fwd) = h.pop_hop().unwrap();
        assert_eq!(fwd.resume, h.resume);
    }

    #[test]
    fn pop_hop_preserves_stripe() {
        let h = header_v3(
            2,
            StripeReq {
                start_block: 5,
                end_block: 9,
            },
        );
        let (_, fwd) = h.pop_hop().unwrap();
        assert_eq!(fwd.stripe, h.stripe);
        let (_, sink) = fwd.pop_hop().unwrap();
        assert_eq!(sink.stripe, h.stripe);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// An arbitrary header extension: none (v1), a resume request (v2),
    /// or a stripe block-range request (v3) — never both.
    fn any_extension() -> impl Strategy<Value = (Option<Resume>, Option<StripeReq>)> {
        prop_oneof![
            Just((None, None)),
            Just((Some(Resume::fresh()), None)),
            (any::<u64>(), any::<u64>()).prop_map(|(offset, verified_block)| (
                Some(Resume {
                    offset,
                    verified_block
                }),
                None
            )),
            (any::<u64>(), any::<u64>()).prop_map(|(start_block, end_block)| (
                None,
                Some(StripeReq {
                    start_block,
                    end_block
                })
            )),
        ]
    }

    proptest! {
        #[test]
        fn codec_roundtrip(sid in any::<u128>(), flags in any::<u8>(),
                           length in any::<u64>(),
                           ext in any_extension(),
                           hops in proptest::collection::vec((any::<u32>(), any::<u16>()), 0..MAX_HOPS)) {
            let (resume, stripe) = ext;
            let h = LslHeader {
                session: SessionId(sid),
                flags,
                length,
                resume,
                stripe,
                route: hops.into_iter().map(|(n, p)| Hop::new(NodeId(n), p)).collect(),
            };
            let enc = h.encode().unwrap();
            let (dec, used) = LslHeader::decode(&enc).unwrap().unwrap();
            prop_assert_eq!(used, enc.len());
            prop_assert_eq!(dec, h);
        }

        /// Decoding arbitrary bytes never panics.
        #[test]
        fn decode_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = LslHeader::decode(&data);
        }

        /// Every strict prefix of a valid encoding either asks for more
        /// bytes or reports `BadMagic` (never a spurious later error, and
        /// never a bogus parse).
        #[test]
        fn truncation_never_misparses(sid in any::<u128>(), length in any::<u64>(),
                                      ext in any_extension(),
                                      nhops in 0usize..MAX_HOPS,
                                      cut_frac in 0.0f64..1.0) {
            let (resume, stripe) = ext;
            let h = LslHeader {
                session: SessionId(sid),
                flags: HEADER_FLAG_DIGEST,
                length,
                resume,
                stripe,
                route: (0..nhops).map(|i| Hop::new(NodeId(i as u32), 7000)).collect(),
            };
            let enc = h.encode().unwrap();
            let cut = ((enc.len() as f64) * cut_frac) as usize; // < len
            match LslHeader::decode(&enc[..cut]) {
                Ok(None) => {}
                Err(WireError::BadMagic) => prop_assert!(cut < 4),
                other => prop_assert!(false, "prefix of len {cut} gave {other:?}"),
            }
        }

        /// A single corrupted byte in the fixed part is either detected as
        /// a typed wire error or yields a header that differs from the
        /// original only where the flip landed in an unvalidated field —
        /// never a panic, and magic/version/hop-count damage is always
        /// caught.
        #[test]
        fn corruption_is_detected_or_contained(sid in any::<u128>(),
                                               pos in 0usize..FIXED_LEN,
                                               flip in 1u8..=255) {
            let h = LslHeader {
                session: SessionId(sid),
                flags: 0,
                length: 4096,
                resume: None,
                stripe: None,
                route: vec![Hop::new(NodeId(7), 7000)],
            };
            let mut enc = h.encode().unwrap().to_vec();
            enc[pos] ^= flip;
            match (pos, LslHeader::decode(&enc)) {
                (0..=3, res) => prop_assert_eq!(res, Err(WireError::BadMagic)),
                (4, res) if VERSION ^ flip == VERSION_RESUME || VERSION ^ flip == VERSION_STRIPE => {
                    // The flip upgraded the version byte: the decoder
                    // now waits for the longer v2/v3 fixed part this
                    // 37-byte buffer cannot complete.
                    prop_assert_eq!(res, Ok(None));
                }
                (4, res) => prop_assert_eq!(res, Err(WireError::UnsupportedVersion(VERSION ^ flip))),
                (30, res) => {
                    // Hop count either exceeds MAX_HOPS (typed error) or the
                    // parser waits for the longer route it now expects.
                    let claimed = 1 ^ flip;
                    if claimed as usize > MAX_HOPS {
                        prop_assert_eq!(res, Err(WireError::RouteTooLong(claimed)));
                    } else {
                        prop_assert!(matches!(res, Ok(None)) || claimed as usize <= 1);
                    }
                }
                (_, res) => {
                    // Flags/session/length are opaque payload fields: the
                    // header still parses, and differs from the original.
                    let (dec, _) = res.unwrap().unwrap();
                    prop_assert_ne!(dec, h);
                }
            }
        }

        /// Single-byte corruption of a *version-2* header is likewise
        /// detected (typed wire error) or contained (parses to a header
        /// that differs from the original) — including the dangerous
        /// version-downgrade flip, which re-frames a resume-offset byte
        /// as the hop count.
        #[test]
        fn corruption_is_detected_or_contained_v2(sid in any::<u128>(),
                                                  pos in 0usize..FIXED_LEN_RESUME,
                                                  flip in 1u8..=255) {
            let h = LslHeader {
                session: SessionId(sid),
                flags: 0,
                length: 4096,
                // High offset byte 200: a downgraded-to-v1 parse reads
                // it as a hop count, which MAX_HOPS then rejects.
                resume: Some(Resume { offset: (200u64 << 56) | 4096, verified_block: 3 }),
                stripe: None,
                route: vec![Hop::new(NodeId(7), 7000)],
            };
            let mut enc = h.encode().unwrap().to_vec();
            enc[pos] ^= flip;
            let res = LslHeader::decode(&enc);
            match pos {
                0..=3 => prop_assert_eq!(res, Err(WireError::BadMagic)),
                4 => {
                    let v = VERSION_RESUME ^ flip;
                    if v == VERSION {
                        prop_assert_eq!(res, Err(WireError::RouteTooLong(200)));
                    } else if v == VERSION_STRIPE {
                        // v2 and v3 share the fixed length: the header
                        // reparses with the resume fields re-framed as a
                        // stripe range — contained, and visibly different.
                        let (dec, _) = res.unwrap().unwrap();
                        prop_assert!(dec.stripe.is_some() && dec.resume.is_none());
                        prop_assert_ne!(dec, h.clone());
                    } else {
                        prop_assert_eq!(res, Err(WireError::UnsupportedVersion(v)));
                    }
                }
                46 => {
                    // Hop count: either implausible (typed error) or the
                    // parser waits for the longer route it now expects.
                    let claimed = 1 ^ flip;
                    if claimed as usize > MAX_HOPS {
                        prop_assert_eq!(res, Err(WireError::RouteTooLong(claimed)));
                    } else {
                        prop_assert!(matches!(res, Ok(None)) || claimed as usize <= 1);
                    }
                }
                _ => {
                    let (dec, _) = res.unwrap().unwrap();
                    prop_assert_ne!(dec, h);
                }
            }
        }

        /// Single-byte corruption of a *version-3* (striped) header is
        /// detected or contained, symmetric with the v2 property — the
        /// v2↔v3 flip re-frames the range as a resume request, which is
        /// contained (parses, visibly different), and the v1 downgrade
        /// re-frames a range byte as the hop count.
        #[test]
        fn corruption_is_detected_or_contained_v3(sid in any::<u128>(),
                                                  pos in 0usize..FIXED_LEN_STRIPE,
                                                  flip in 1u8..=255) {
            let h = LslHeader {
                session: SessionId(sid),
                flags: 0,
                length: 4096,
                resume: None,
                // High start_block byte 200: a downgraded-to-v1 parse
                // reads it as a hop count, which MAX_HOPS rejects.
                stripe: Some(StripeReq { start_block: (200u64 << 56) | 5, end_block: (200u64 << 56) | 9 }),
                route: vec![Hop::new(NodeId(7), 7000)],
            };
            let mut enc = h.encode().unwrap().to_vec();
            enc[pos] ^= flip;
            let res = LslHeader::decode(&enc);
            match pos {
                0..=3 => prop_assert_eq!(res, Err(WireError::BadMagic)),
                4 => {
                    let v = VERSION_STRIPE ^ flip;
                    if v == VERSION {
                        prop_assert_eq!(res, Err(WireError::RouteTooLong(200)));
                    } else if v == VERSION_RESUME {
                        let (dec, _) = res.unwrap().unwrap();
                        prop_assert!(dec.resume.is_some() && dec.stripe.is_none());
                        prop_assert_ne!(dec, h.clone());
                    } else {
                        prop_assert_eq!(res, Err(WireError::UnsupportedVersion(v)));
                    }
                }
                46 => {
                    let claimed = 1 ^ flip;
                    if claimed as usize > MAX_HOPS {
                        prop_assert_eq!(res, Err(WireError::RouteTooLong(claimed)));
                    } else {
                        prop_assert!(matches!(res, Ok(None)) || claimed as usize <= 1);
                    }
                }
                _ => {
                    let (dec, _) = res.unwrap().unwrap();
                    prop_assert_ne!(dec, h);
                }
            }
        }

        /// `pop_hop` terminates: a route of n hops exhausts after exactly
        /// n pops (hop exhaustion at the sink is a defined state, not an
        /// error or a loop).
        #[test]
        fn pop_hop_exhausts_after_route_len(nhops in 0usize..=MAX_HOPS) {
            let mut h = LslHeader {
                session: SessionId(1),
                flags: 0,
                length: 0,
                resume: None,
                stripe: None,
                route: (0..nhops).map(|i| Hop::new(NodeId(i as u32), 7000)).collect(),
            };
            for left in (0..nhops).rev() {
                let (_, next) = h.pop_hop().unwrap();
                prop_assert_eq!(next.route.len(), left);
                h = next;
            }
            prop_assert!(h.pop_hop().is_none());
        }
    }
}
