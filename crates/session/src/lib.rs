//! The Logistical Session Layer (LSL) — the paper's contribution.
//!
//! A *session* is a conversation between a source and a sink carried over
//! one or more **cascaded TCP sublinks** through intermediate **depots**
//! (the `lsd` daemon). The session is named by a 128-bit identifier and
//! routed along an initiator-specified *loose source route* of depots.
//! Each depot performs a transport-to-transport binding with a small,
//! short-lived relay buffer; TCP flow control on each sublink provides
//! hop-by-hop backpressure, and an MD5 digest over the complete stream
//! restores end-to-end integrity (the end-to-end argument is honoured at
//! the endpoints, §III of the paper).
//!
//! Crate layout:
//!
//! * [`client`] — the recovering session endpoint (reconnect with
//!   backoff, depot-route failover, retransfer, direct-TCP degradation),
//! * [`error`] — typed wire/route/session errors, lifecycle
//!   [`SessionEvent`]s and the [`Handled`] event-dispatch result,
//! * [`header`] — the LSL wire header (magic, version, session id, loose
//!   source route, length, digest flag) shared with `lsl-realnet`,
//! * [`id`] — session identifiers,
//! * [`route`] — loose source routes and path descriptions,
//! * [`depot`] — the simulated `lsd` depot (bidirectional relay),
//! * [`endpoint`] — bulk sender and sink applications for experiments,
//! * [`model`] — analytic TCP/cascade throughput models (Mathis
//!   steady-state plus a slow-start transient model) used for path
//!   selection and calibration,
//! * [`path`] — NWS-forecast-driven depot/path selection (float,
//!   calibration-side),
//! * [`plan`] — typed, builder-validated route candidate sets
//!   ([`RoutePlan`]) — the only way to hand the client routes,
//! * [`score`] — deterministic fixed-point cascade scoring driving
//!   forecast route selection and proactive re-routing,
//! * [`stripe`] — RAIL-style striped multi-cascade sessions: N
//!   concurrent cascades with work-stealing block dispatch, k-of-n
//!   redundant tails, and loss-bounded cascade death.

pub mod client;
pub mod depot;
pub mod endpoint;
pub mod error;
pub mod header;
pub mod id;
pub mod model;
pub mod path;
pub mod plan;
pub mod route;
pub mod score;
pub mod stripe;

pub use client::{
    ClientState, RecoveryConfig, RecoveryConfigBuilder, SessionClient, CLIENT_TIMER_TAG,
};
pub use depot::{Depot, DepotConfig, DepotConfigBuilder, DepotStats};
pub use endpoint::{
    expected_block_digest_bounded, stream_blocks, BulkSender, SenderState, SinkServer,
    TransferOutcome, TransferStatus, RESUME_BLOCK, SINK_TIMER_TAG,
};
pub use error::{Handled, PlanError, RouteError, SessionError, SessionEvent, WireError};
pub use header::{LslHeader, Resume, StripeReq, HEADER_FLAG_DIGEST, NO_VERIFIED_BLOCK};
pub use id::SessionId;
pub use plan::{RouteCandidate, RoutePlan, RoutePlanBuilder, RouteProvenance};
pub use route::{Hop, LslPath};
pub use score::{cascade_score_ns, rank_candidates, SublinkForecast};
pub use stripe::{LaneStat, StripeConfig, StripedSession, STRIPE_TIMER_TAG};
