//! Typed errors and lifecycle events for the session layer.
//!
//! These replace the seed implementation's stringly/boolean reporting:
//! `LslHeader::decode` returned `Result<_, String>`, `Depot::handle` and
//! `BulkSender::handle` returned bare `bool`s, and the sink counted
//! failures in an opaque `errors: u64`. Recovery needs to *dispatch* on
//! failure causes (a reset sublink is retried, a bad digest triggers a
//! retransfer, a dead route triggers failover), so every failure is now
//! a variant, shared between the simulated stack and `lsl-realnet`.

use std::fmt;

use lsl_netsim::{Dur, NodeId};
use lsl_tcp::TcpError;

/// Why an LSL header failed to parse. Shared by the simulated session
/// layer and the real-socket codec in `lsl-realnet`, so both report
/// identical decode failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first bytes are not `LSL1`.
    BadMagic,
    /// Unknown protocol version.
    UnsupportedVersion(u8),
    /// Hop count exceeds [`crate::header::MAX_HOPS`].
    RouteTooLong(u8),
    /// The stream ended before a complete header arrived.
    TruncatedHeader,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (not an LSL header)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported LSL version {v}"),
            WireError::RouteTooLong(n) => write!(f, "route too long: {n} hops"),
            WireError::TruncatedHeader => write!(f, "stream ended mid-header"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why a loose source route is invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// A node appears more than once (routing loop, or the destination
    /// doubling as a depot).
    DuplicateNode(NodeId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::DuplicateNode(n) => {
                write!(f, "node {:?} appears twice in route", n)
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Why a [`crate::plan::RoutePlan`] failed builder validation. Every
/// malformed candidate set is rejected here, at construction time —
/// which is what makes [`WireError::RouteTooLong`] unreachable from the
/// in-repo encode path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The plan has no candidates at all.
    Empty,
    /// Candidates do not share a destination hop.
    MixedDestination { expected: NodeId, got: NodeId },
    /// A candidate's loose source route is invalid.
    Route(RouteError),
    /// A candidate's route would not fit the wire header
    /// ([`WireError::RouteTooLong`]).
    Wire(WireError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Empty => write!(f, "route plan has no candidates"),
            PlanError::MixedDestination { expected, got } => write!(
                f,
                "route plan mixes destinations: expected {expected:?}, got {got:?}"
            ),
            PlanError::Route(e) => write!(f, "invalid candidate route: {e}"),
            PlanError::Wire(e) => write!(f, "candidate route rejected: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<RouteError> for PlanError {
    fn from(e: RouteError) -> PlanError {
        PlanError::Route(e)
    }
}

impl From<WireError> for PlanError {
    fn from(e: WireError) -> PlanError {
        PlanError::Wire(e)
    }
}

/// Why a session (or one attempt of it) failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// Malformed LSL framing on the wire.
    Wire(WireError),
    /// Invalid loose source route.
    Route(RouteError),
    /// A sublink transport error (reset, refused, retransmission
    /// timeout).
    Tcp(TcpError),
    /// The recovery layer's progress watchdog expired: the sublink made
    /// no progress for a full timeout window (e.g. a silently crashed
    /// depot the RTO has not yet condemned).
    Stalled,
    /// The end-to-end MD5 over the delivered stream does not match.
    DigestMismatch,
    /// A payload byte differs from the generator pattern.
    ContentMismatch,
    /// The stream ended before the header-declared length arrived.
    TruncatedStream,
    /// Every candidate route (and the direct fallback, when allowed)
    /// has been exhausted.
    RoutesExhausted,
    /// Retransfer budget exhausted without a verified delivery.
    RetransfersExhausted,
    /// The sink granted a resume offset incompatible with the sender's
    /// request (the sender asked to skip bytes the sink has not
    /// verified). The sender must not stream from beyond the grant, so
    /// the attempt is abandoned as malformed.
    ResumeMismatch { requested: u64, granted: u64 },
    /// The sink granted a stripe block range outside the one this
    /// cascade requested — protocol corruption, so the attempt is
    /// abandoned (a *narrowed* grant, including the empty one, is
    /// normal: it means another cascade already delivered the head).
    StripeMismatch {
        granted_start: u64,
        granted_end: u64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Wire(e) => write!(f, "wire error: {e}"),
            SessionError::Route(e) => write!(f, "route error: {e}"),
            SessionError::Tcp(e) => write!(f, "sublink error: {e:?}"),
            SessionError::Stalled => write!(f, "sublink stalled past the progress timeout"),
            SessionError::DigestMismatch => write!(f, "end-to-end digest mismatch"),
            SessionError::ContentMismatch => write!(f, "payload content mismatch"),
            SessionError::TruncatedStream => write!(f, "stream truncated before declared length"),
            SessionError::RoutesExhausted => write!(f, "no candidate route survived"),
            SessionError::RetransfersExhausted => write!(f, "retransfer budget exhausted"),
            SessionError::ResumeMismatch { requested, granted } => write!(
                f,
                "resume offset mismatch: requested {requested}, sink granted {granted}"
            ),
            SessionError::StripeMismatch {
                granted_start,
                granted_end,
            } => write!(
                f,
                "stripe grant outside request: sink granted blocks [{granted_start}, {granted_end})"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<WireError> for SessionError {
    fn from(e: WireError) -> SessionError {
        SessionError::Wire(e)
    }
}

impl From<RouteError> for SessionError {
    fn from(e: RouteError) -> SessionError {
        SessionError::Route(e)
    }
}

impl From<TcpError> for SessionError {
    fn from(e: TcpError) -> SessionError {
        SessionError::Tcp(e)
    }
}

/// Lifecycle notifications emitted by the session layer: every
/// externally meaningful transition of a transfer, including the
/// recovery machinery's decisions. Drivers collect these for reporting
/// (the fault-campaign timeline) and for assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEvent {
    /// The first-hop sublink connected.
    Established,
    /// The sink's session confirmation arrived (sync mode).
    Confirmed,
    /// The active sublink failed, with the typed cause.
    SublinkDown(SessionError),
    /// Reconnecting over the same route after backoff.
    Reconnecting { attempt: u32, delay: Dur },
    /// Switched to the candidate route at `route` (0-based rank).
    FailedOver { route: usize },
    /// Proactive re-route: the live route's forecast degraded below the
    /// best alternative, so the session moved from candidate `from` to
    /// candidate `to` *before* the sublink failed, resuming via the
    /// sink's block grant.
    Rerouted { from: usize, to: usize },
    /// All depot routes exhausted: degraded to direct TCP.
    Degraded,
    /// Verified delivery failed; resending from the last verified block
    /// (or from byte 0 when resume is off or nothing verified).
    Retransfer { attempt: u32 },
    /// The sink granted a mid-stream resume: this attempt streams from
    /// `offset` (the first byte of block `from_block`) instead of 0.
    Resumed { from_block: u64, offset: u64 },
    /// A striped session lost cascade `cascade` (reconnect and failover
    /// budgets spent): its `blocks` unverified in-flight blocks go back
    /// on the dispatch queue. The session keeps streaming on survivors.
    StripeLost { cascade: usize, blocks: u64 },
    /// Blocks from a lost cascade were re-dispatched onto surviving
    /// cascade `to` — the striped counterpart of `FailedOver`, without
    /// pausing the session.
    StripeRebalanced { to: usize, blocks: u64 },
    /// The sink verified a complete delivery.
    Completed,
    /// Terminal failure: recovery gave up.
    Failed(SessionError),
}

/// What a `handle(…)` call did with an event — the typed replacement
/// for the old `bool` returns. `Consumed` means the event was owned by
/// that component and must not be offered to any other.
///
/// Fault notifications ([`lsl_tcp::AppEvent::Fault`]) are deliberately
/// *never* consumed: every component may react to one, so handlers
/// return `NotMine` for them and drivers keep offering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "dispatch loops must route unconsumed events to the next component"]
pub enum Handled {
    /// Not this component's event; offer it elsewhere.
    NotMine,
    /// Owned and processed.
    Consumed,
}

impl Handled {
    pub fn consumed(self) -> bool {
        self == Handled::Consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SessionError::Wire(WireError::BadMagic)
            .to_string()
            .contains("magic"));
        assert!(SessionError::Tcp(TcpError::Reset)
            .to_string()
            .contains("Reset"));
        assert!(SessionError::from(WireError::UnsupportedVersion(9))
            .to_string()
            .contains('9'));
        assert!(RouteError::DuplicateNode(NodeId(3))
            .to_string()
            .contains("twice"));
    }

    #[test]
    fn conversions() {
        assert_eq!(
            SessionError::from(TcpError::Refused),
            SessionError::Tcp(TcpError::Refused)
        );
        assert_eq!(
            SessionError::from(RouteError::DuplicateNode(NodeId(1))),
            SessionError::Route(RouteError::DuplicateNode(NodeId(1)))
        );
    }

    #[test]
    fn plan_error_displays_and_converts() {
        assert!(PlanError::Empty.to_string().contains("no candidates"));
        assert!(PlanError::from(WireError::RouteTooLong(17))
            .to_string()
            .contains("17"));
        assert_eq!(
            PlanError::from(RouteError::DuplicateNode(NodeId(2))),
            PlanError::Route(RouteError::DuplicateNode(NodeId(2)))
        );
    }

    #[test]
    fn handled_predicate() {
        assert!(Handled::Consumed.consumed());
        assert!(!Handled::NotMine.consumed());
    }
}
