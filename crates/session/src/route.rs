//! Loose source routes: the initiator-specified depot path of a session.

use lsl_netsim::NodeId;

use crate::error::RouteError;

/// One hop of an LSL route: a depot's (or the sink's) address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Hop {
    pub node: NodeId,
    pub port: u16,
}

impl Hop {
    pub fn new(node: NodeId, port: u16) -> Hop {
        Hop { node, port }
    }
}

/// A session path from source to sink: zero or more depots, then the
/// destination. Zero depots is the degenerate "direct TCP" case the
/// paper compares against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LslPath {
    /// Intermediate depots in traversal order.
    pub depots: Vec<Hop>,
    /// Final destination (the LSL-aware server).
    pub dst: Hop,
}

impl LslPath {
    /// Direct path — no depots, plain end-to-end TCP semantics.
    pub fn direct(dst: Hop) -> LslPath {
        LslPath {
            depots: Vec::new(),
            dst,
        }
    }

    /// Cascade through the given depots.
    pub fn via(depots: Vec<Hop>, dst: Hop) -> LslPath {
        LslPath { depots, dst }
    }

    /// The first transport connection's target: the first depot, or the
    /// destination when direct.
    pub fn first_hop(&self) -> Hop {
        self.depots.first().copied().unwrap_or(self.dst)
    }

    /// The loose source route carried in the LSL header of the *first*
    /// sublink: every hop after the first, ending with the destination.
    /// Empty for a direct path — the first sublink's receiver *is* the
    /// destination, so the sink sees no residual route.
    pub fn remaining_route(&self) -> Vec<Hop> {
        if self.depots.is_empty() {
            return Vec::new();
        }
        let mut v: Vec<Hop> = self.depots.iter().skip(1).copied().collect();
        v.push(self.dst);
        v
    }

    /// Number of TCP sublinks the session will use.
    pub fn num_sublinks(&self) -> usize {
        self.depots.len() + 1
    }

    /// Validate: no node may appear twice (a routing loop) and the
    /// destination must not be a depot.
    pub fn validate(&self) -> Result<(), RouteError> {
        let mut seen = std::collections::BTreeSet::new();
        for hop in self.depots.iter().chain(std::iter::once(&self.dst)) {
            if !seen.insert(hop.node) {
                return Err(RouteError::DuplicateNode(hop.node));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(n: u32) -> Hop {
        Hop::new(NodeId(n), 7000)
    }

    #[test]
    fn direct_path() {
        let p = LslPath::direct(hop(9));
        assert_eq!(p.num_sublinks(), 1);
        assert_eq!(p.first_hop(), hop(9));
        assert_eq!(p.remaining_route(), Vec::<Hop>::new());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn cascade_route() {
        let p = LslPath::via(vec![hop(1), hop(2)], hop(9));
        assert_eq!(p.num_sublinks(), 3);
        assert_eq!(p.first_hop(), hop(1));
        assert_eq!(p.remaining_route(), vec![hop(2), hop(9)]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn loop_detected() {
        let p = LslPath::via(vec![hop(1), hop(1)], hop(9));
        assert_eq!(p.validate(), Err(RouteError::DuplicateNode(NodeId(1))));
        let p2 = LslPath::via(vec![hop(9)], hop(9));
        assert_eq!(p2.validate(), Err(RouteError::DuplicateNode(NodeId(9))));
    }
}
