//! Endpoint applications: a bulk data source and a verifying sink.
//!
//! These drive the paper's experiments: fixed-size synchronous transfers
//! measured wall-clock from connection initiation to the sink consuming
//! the full stream (including LSL header and digest overheads, and "all
//! concomitant processing overheads" of the depots in between).

use std::collections::BTreeMap;

use bytes::Bytes;
use lsl_digest::{md5, DigestChain, Md5, DIGEST_LEN};
use lsl_netsim::{Dur, NodeId, Time};
use lsl_tcp::{AppEvent, Net, SockEvent, SockId, TcpConfig};

use crate::error::{Handled, SessionError, WireError};
use crate::header::{LslHeader, Resume, HEADER_FLAG_DIGEST};
use crate::id::SessionId;
use crate::route::LslPath;

/// Resume granularity: the sink certifies delivery in blocks of this
/// many bytes, and grants resume offsets only at block boundaries.
pub const RESUME_BLOCK: u64 = 64 * 1024;

/// The MD5 a full resume block at index `block` must carry when the
/// stream follows the generator pattern — the sink's per-block
/// verification reference (the pattern plays the role a stored file's
/// on-disk blocks would play in a deployment).
pub fn expected_block_digest(block: u64) -> [u8; DIGEST_LEN] {
    md5(&payload_chunk(block * RESUME_BLOCK, RESUME_BLOCK as usize))
}

/// Whole-stream MD5 state fast-forwarded over pattern bytes
/// `[0, offset)` — how a resuming sender rebuilds the end-to-end digest
/// without resending a byte.
fn md5_fast_forward(offset: u64) -> Md5 {
    let mut h = Md5::new();
    let mut at = 0u64;
    while at < offset {
        let len = (offset - at).min(SEND_CHUNK) as usize;
        h.update(&payload_chunk(at, len));
        at += len as u64;
    }
    h
}

/// Deterministic payload byte at stream offset `i` (shared by sender and
/// verifying sink).
pub fn payload_byte(i: u64) -> u8 {
    ((i.wrapping_mul(131)).wrapping_add(7) % 251) as u8
}

/// Materialize payload bytes `[offset, offset+len)`.
pub fn payload_chunk(offset: u64, len: usize) -> Bytes {
    Bytes::from(
        (0..len as u64)
            .map(|i| payload_byte(offset + i))
            .collect::<Vec<u8>>(),
    )
}

/// How the sender frames the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendMode {
    /// Plain end-to-end TCP: raw payload only (the paper's baseline).
    DirectTcp,
    /// LSL: header first, then payload, then (optionally) the digest.
    /// `sync` is the paper's measured mode — the source streams only
    /// after the sink's one-byte session confirmation has travelled back
    /// through the cascade.
    Lsl { digest: bool, sync: bool },
}

impl SendMode {
    /// The paper's default LSL configuration.
    pub fn lsl() -> SendMode {
        SendMode::Lsl {
            digest: true,
            sync: true,
        }
    }
}

/// The sink's session-establishment confirmation byte.
pub const SESSION_CONFIRM: u8 = 0x4b; // 'K'

/// Sender progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderState {
    Connecting,
    /// Header sent; waiting for the sink's confirmation (sync mode).
    AwaitingConfirm,
    Streaming,
    Done,
    Failed(SessionError),
}

/// A bulk data source pushing `total` patterned bytes along `path`.
pub struct BulkSender {
    sock: SockId,
    mode: SendMode,
    state: SenderState,
    total: u64,
    sent: u64,
    header: Option<Bytes>,
    header_sent: usize,
    trailer: Option<Bytes>,
    trailer_sent: usize,
    md5: Option<Md5>,
    /// The resume request sent in the header (None = plain v1 attempt).
    resume_req: Option<Resume>,
    /// Offset the sink granted (set on confirmation, resume mode only).
    granted: Option<u64>,
    /// Accumulates the confirmation reply (1 byte plain, 9 with resume).
    confirm_buf: Vec<u8>,
    /// Stream offset this attempt started from (0 unless resumed).
    resume_base: u64,
    pub started_at: Time,
    pub finished_at: Option<Time>,
}

/// Per-send chunking granularity (bounds transient allocations).
const SEND_CHUNK: u64 = 256 * 1024;

impl BulkSender {
    /// Initiate the transfer: connect to the path's first hop.
    ///
    /// Passing `resume: Some(_)` sends a version-2 header carrying the
    /// request and expects the extended 9-byte confirmation (the sink's
    /// granted offset); it requires `SendMode::Lsl` with both `digest`
    /// and `sync` — resume is meaningless without block verification
    /// and the confirmation round-trip that carries the grant.
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring the LSL API surface
    pub fn start(
        net: &mut Net,
        src: NodeId,
        path: &LslPath,
        session: SessionId,
        total: u64,
        mode: SendMode,
        tcp: TcpConfig,
        trace_label: Option<&str>,
        resume: Option<Resume>,
    ) -> BulkSender {
        path.validate().expect("invalid LSL path");
        assert!(
            path.remaining_route().len() <= crate::header::MAX_HOPS,
            "route exceeds MAX_HOPS; build candidate sets through RoutePlan"
        );
        if resume.is_some() {
            assert!(
                matches!(
                    mode,
                    SendMode::Lsl {
                        digest: true,
                        sync: true
                    }
                ),
                "resume requires LSL mode with digest and sync"
            );
        }
        let first = path.first_hop();
        let sock = net.connect(src, first.node, first.port, tcp);
        if let Some(label) = trace_label {
            net.enable_trace(sock, label);
        }
        let header = match mode {
            SendMode::DirectTcp => {
                assert!(path.depots.is_empty(), "direct TCP cannot traverse depots");
                None
            }
            SendMode::Lsl { digest, .. } => Some(
                LslHeader {
                    session,
                    flags: if digest { HEADER_FLAG_DIGEST } else { 0 },
                    length: total,
                    resume,
                    route: path.remaining_route(),
                }
                .encode()
                .expect("route length asserted against MAX_HOPS above"),
            ),
        };
        let md5 = match mode {
            SendMode::Lsl { digest: true, .. } => Some(Md5::new()),
            _ => None,
        };
        BulkSender {
            sock,
            mode,
            state: SenderState::Connecting,
            total,
            sent: 0,
            header,
            header_sent: 0,
            trailer: None,
            trailer_sent: 0,
            md5,
            resume_req: resume,
            granted: None,
            confirm_buf: Vec::new(),
            resume_base: 0,
            started_at: net.now(),
            finished_at: None,
        }
    }

    pub fn sock(&self) -> SockId {
        self.sock
    }

    pub fn state(&self) -> SenderState {
        self.state
    }

    pub fn mode(&self) -> SendMode {
        self.mode
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state, SenderState::Done | SenderState::Failed(_))
    }

    /// Monotone progress metric for the recovery watchdog: bytes the
    /// socket has accepted so far (header + payload + digest trailer).
    pub fn progress(&self) -> u64 {
        self.header_sent as u64 + self.sent + self.trailer_sent as u64
    }

    /// The offset the sink granted this attempt (resume mode, after the
    /// confirmation round-trip). `None` before confirmation or when no
    /// resume request was sent.
    pub fn resume_granted(&self) -> Option<u64> {
        self.granted
    }

    /// Payload bytes this attempt has actually pushed into its socket —
    /// excludes the resumed-over prefix, so it measures what a resume
    /// *saved* re-sending.
    pub fn payload_sent(&self) -> u64 {
        self.sent - self.resume_base
    }

    /// Absolute stream offset reached so far (resume base + streamed
    /// payload) — what a later resumed attempt measures resend waste
    /// against.
    pub fn stream_offset(&self) -> u64 {
        self.sent
    }

    /// Tear the attempt down (recovery decided the sublink is dead):
    /// abort the socket and record the typed cause.
    pub fn fail(&mut self, net: &mut Net, err: SessionError) {
        if !self.is_done() {
            self.state = SenderState::Failed(err);
            self.finished_at.get_or_insert(net.now());
        }
        net.abort(self.sock);
    }

    /// Feed one event; [`Handled::Consumed`] means it was this sender's.
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        let AppEvent::Sock { sock, event } = ev else {
            // Timers belong to other components; fault notifications are
            // broadcast and stay unconsumed by convention.
            return Handled::NotMine;
        };
        if *sock != self.sock {
            return Handled::NotMine;
        }
        match event {
            SockEvent::Connected => {
                // Ship the header immediately; in sync mode the payload
                // waits for the sink's confirmation.
                self.send_header(net);
                match self.mode {
                    SendMode::Lsl { sync: true, .. } => {
                        self.state = SenderState::AwaitingConfirm;
                    }
                    _ => {
                        self.state = SenderState::Streaming;
                        self.pump(net);
                    }
                }
            }
            SockEvent::Readable if self.state == SenderState::AwaitingConfirm => {
                match self.resume_req {
                    None => {
                        let b = net.recv(self.sock, 1);
                        if b.first() == Some(&SESSION_CONFIRM) {
                            self.state = SenderState::Streaming;
                            self.pump(net);
                        }
                    }
                    Some(req) => {
                        // Resume confirmation: the confirm byte plus the
                        // sink's granted offset (may arrive fragmented).
                        let want = 9 - self.confirm_buf.len();
                        let b = net.recv(self.sock, want);
                        self.confirm_buf.extend_from_slice(&b);
                        if self.confirm_buf.len() == 9 && self.confirm_buf[0] == SESSION_CONFIRM {
                            let granted = u64::from_be_bytes(
                                self.confirm_buf[1..9].try_into().expect("8 bytes"),
                            );
                            self.on_grant(net, req, granted);
                        }
                    }
                }
            }
            SockEvent::Writable => self.pump(net),
            SockEvent::Error(e) => {
                self.state = SenderState::Failed(SessionError::Tcp(*e));
                self.finished_at.get_or_insert(net.now());
            }
            SockEvent::Closed => {
                self.finished_at.get_or_insert(net.now());
            }
            _ => {}
        }
        Handled::Consumed
    }

    /// The sink's grant arrived: sanity-check it, fast-forward the
    /// whole-stream digest over the skipped prefix, and stream from the
    /// granted offset. The sink is the verification authority, so a
    /// grant *below* the request is normal (we simply resend more); a
    /// grant that is misaligned or beyond the stream is protocol
    /// corruption and fails the attempt with the typed mismatch.
    fn on_grant(&mut self, net: &mut Net, req: Resume, granted: u64) {
        if !granted.is_multiple_of(RESUME_BLOCK) || granted > self.total {
            self.state = SenderState::Failed(SessionError::ResumeMismatch {
                requested: req.offset,
                granted,
            });
            self.finished_at.get_or_insert(net.now());
            net.abort(self.sock);
            return;
        }
        self.granted = Some(granted);
        self.resume_base = granted;
        self.sent = granted;
        if granted > 0 {
            // Rebuild the end-to-end digest as if the prefix had been
            // streamed: the trailer still covers bytes [0, total).
            let t = net.now().0;
            lsl_obs::span_begin(t, "session.resume.fast_forward", granted / RESUME_BLOCK);
            self.md5 = Some(md5_fast_forward(granted));
            lsl_obs::span_end(t, "session.resume.fast_forward", granted / RESUME_BLOCK);
        }
        self.state = SenderState::Streaming;
        self.pump(net);
    }

    fn send_header(&mut self, net: &mut Net) {
        if let Some(h) = &self.header {
            while self.header_sent < h.len() {
                let n = net.send(self.sock, &h.slice(self.header_sent..));
                self.header_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
    }

    fn pump(&mut self, net: &mut Net) {
        if self.state != SenderState::Streaming {
            return;
        }
        // 1. Header (when not already flushed pre-confirmation).
        if let Some(h) = &self.header {
            while self.header_sent < h.len() {
                let n = net.send(self.sock, &h.slice(self.header_sent..));
                self.header_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
        // 2. Payload.
        while self.sent < self.total {
            let len = (self.total - self.sent).min(SEND_CHUNK) as usize;
            let chunk = payload_chunk(self.sent, len);
            let n = net.send(self.sock, &chunk);
            if let Some(md5) = &mut self.md5 {
                md5.update(&chunk[..n]);
            }
            self.sent += n as u64;
            if n < len {
                return;
            }
        }
        // 3. Digest trailer.
        if let Some(md5) = self.md5.take() {
            self.trailer = Some(Bytes::copy_from_slice(&md5.finalize()));
        }
        if let Some(t) = &self.trailer {
            while self.trailer_sent < t.len() {
                let n = net.send(self.sock, &t.slice(self.trailer_sent..));
                self.trailer_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
        // 4. Done: half-close; FIN cascades to the sink.
        self.state = SenderState::Done;
        net.close(self.sock);
    }
}

/// How one inbound transfer attempt ended at the sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferStatus {
    /// Full stream received and every enabled check passed.
    Complete,
    /// The attempt failed for the given typed reason (replaces the old
    /// opaque `SinkServer::errors` counter).
    Failed(SessionError),
}

/// Result of one inbound transfer attempt at the sink — successful or
/// not, every attempt yields exactly one outcome.
#[derive(Clone, Debug)]
pub struct TransferOutcome {
    /// Session id (None for direct-TCP transfers or pre-header failures).
    pub session: Option<SessionId>,
    /// Typed disposition of the attempt.
    pub status: TransferStatus,
    /// Stream position reached, in payload bytes (header and digest
    /// excluded; for resumed attempts this includes the granted prefix,
    /// so it is the absolute high-water mark, not this attempt's count).
    pub bytes: u64,
    /// Digest verification result (None when no digest was sent or the
    /// stream died first).
    pub digest_ok: Option<bool>,
    /// Whether every payload byte matched the generator pattern.
    pub content_ok: bool,
    /// Highest *contiguously verified* block count for the session when
    /// this attempt ended — the sink's delivery verdict that resume
    /// grants are based on (0 for non-resume attempts).
    pub verified_blocks: u64,
    /// The offset the sink granted this attempt (0 = started fresh).
    pub resume_offset: u64,
    /// When the connection was accepted.
    pub accepted_at: Time,
    /// When the attempt ended (EOF/digest verified, or the failure).
    pub completed_at: Time,
}

impl TransferOutcome {
    /// Did this attempt deliver a fully verified stream?
    pub fn ok(&self) -> bool {
        self.status == TransferStatus::Complete
    }

    /// The typed failure reason, if any.
    pub fn failure(&self) -> Option<SessionError> {
        match self.status {
            TransferStatus::Complete => None,
            TransferStatus::Failed(e) => Some(e),
        }
    }
}

enum SinkConnState {
    /// LSL: accumulating header bytes.
    ReadingHeader(Vec<u8>),
    /// Consuming payload (+ digest tail when flagged).
    Body {
        header: Option<LslHeader>,
        md5: Md5,
        /// Payload bytes consumed by *this* attempt.
        received: u64,
        /// Last up-to-16 bytes seen, to peel the digest off the tail.
        tail: Vec<u8>,
        content_ok: bool,
        /// Stream offset this attempt started at (the granted resume
        /// offset; 0 for fresh and non-resume attempts).
        offset: u64,
    },
}

struct SinkConn {
    state: SinkConnState,
    accepted_at: Time,
    /// Cumulative bytes seen, sampled by the idle watchdog.
    activity: u64,
    /// Watchdog snapshot of `activity` at the last tick (`u64::MAX` =
    /// freshly accepted, grant one full interval of grace).
    checked: u64,
}

/// App-timer tokens with this bit belong to a [`SinkServer`] idle
/// watchdog. (Bit 63 is the net layer's app-timer discriminator, bit 62
/// the session client's; bit 61 is ours. Bits 32–47 carry the sink's
/// listening port so colocated sinks ignore each other.)
pub const SINK_TIMER_TAG: u64 = 1 << 61;

/// Per-session delivery state that *survives* attempt deaths — the
/// sink-side half of the resume protocol. The digest chain absorbs the
/// payload across attempts; `verified` is the contiguously certified
/// block boundary the sink grants resumes from.
struct SessionProgress {
    chain: DigestChain,
    /// Blocks verified contiguously from the stream head.
    verified: u64,
    /// A completed block failed its digest: the boundary is frozen
    /// until the next attempt rolls the chain back and resends it.
    corrupt: bool,
    /// The attempt currently feeding this session, if any. A new
    /// resume header supersedes (and fails) a lingering active conn.
    active: Option<SockId>,
}

/// A verifying sink server: accepts transfers (LSL-framed or raw TCP),
/// checks the payload pattern and the trailing MD5 digest, and records a
/// [`TransferOutcome`] per stream — failed attempts included, each with
/// its typed [`TransferStatus`]. Sessions whose headers carry a
/// [`Resume`] request additionally get per-block certification: the
/// sink tracks the highest contiguously verified block across attempts
/// and grants each new attempt a resume offset at that boundary.
pub struct SinkServer {
    listener: SockId,
    node: NodeId,
    port: u16,
    expects_lsl: bool,
    conns: BTreeMap<SockId, SinkConn>,
    sessions: BTreeMap<SessionId, SessionProgress>,
    outcomes: Vec<TransferOutcome>,
    /// Idle watchdog period: a conn that moves no byte across a full
    /// interval is failed [`SessionError::Stalled`]. None = no watchdog.
    idle: Option<Dur>,
    /// Whether a watchdog timer is currently in flight (the watchdog
    /// self-re-arms only while conns exist, so idle sims still quiesce).
    timer_armed: bool,
}

impl SinkServer {
    pub fn new(
        net: &mut Net,
        node: NodeId,
        port: u16,
        expects_lsl: bool,
        tcp: TcpConfig,
    ) -> SinkServer {
        let listener = net.listen(node, port, tcp);
        SinkServer {
            listener,
            node,
            port,
            expects_lsl,
            conns: BTreeMap::new(),
            sessions: BTreeMap::new(),
            outcomes: Vec::new(),
            idle: None,
            timer_armed: false,
        }
    }

    /// Arm an idle watchdog: any accepted conn that goes a full `d`
    /// without delivering a byte is failed with a typed
    /// [`SessionError::Stalled`] outcome. This is what turns a silently
    /// dying upstream (a crashed depot holds no socket to RST) into a
    /// recoverable event *after* the sender has already handed the whole
    /// stream to its sublink and can no longer watch progress itself.
    pub fn with_idle_timeout(mut self, d: Dur) -> SinkServer {
        self.idle = Some(d);
        self
    }

    /// All recorded outcomes, failed attempts included.
    pub fn outcomes(&self) -> &[TransferOutcome] {
        &self.outcomes
    }

    /// The contiguously verified block count for `session` (0 when the
    /// session is unknown or never negotiated resume).
    pub fn verified_blocks(&self, session: SessionId) -> u64 {
        self.sessions.get(&session).map_or(0, |p| p.verified)
    }

    pub fn take_outcomes(&mut self) -> Vec<TransferOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Feed one event; [`Handled::Consumed`] means it was this sink's.
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        if let AppEvent::Timer { node, token } = ev {
            if *node == self.node
                && token & SINK_TIMER_TAG != 0
                && (token >> 32) & 0xffff == self.port as u64
            {
                self.on_idle_tick(net);
                return Handled::Consumed;
            }
            return Handled::NotMine;
        }
        let AppEvent::Sock { sock, event } = ev else {
            return Handled::NotMine;
        };
        if *sock == self.listener {
            if let SockEvent::Accepted { conn } = event {
                let state = if self.expects_lsl {
                    SinkConnState::ReadingHeader(Vec::new())
                } else {
                    SinkConnState::Body {
                        header: None,
                        md5: Md5::new(),
                        received: 0,
                        tail: Vec::new(),
                        content_ok: true,
                        offset: 0,
                    }
                };
                self.conns.insert(
                    *conn,
                    SinkConn {
                        state,
                        accepted_at: net.now(),
                        activity: 0,
                        checked: u64::MAX,
                    },
                );
                self.ensure_watchdog(net);
            }
            return Handled::Consumed;
        }
        if !self.conns.contains_key(sock) {
            return Handled::NotMine;
        }
        match event {
            SockEvent::Readable | SockEvent::PeerFin => self.drain(net, *sock),
            SockEvent::Error(e) => self.fail_conn(net, *sock, SessionError::Tcp(*e)),
            SockEvent::Closed => {
                net.release(*sock);
                if let Some(conn) = self.conns.remove(sock) {
                    self.release_session_conn(*sock, &conn.state);
                }
            }
            _ => {}
        }
        Handled::Consumed
    }

    /// Detach a finished/removed conn from its session's `active` slot,
    /// so a later resume cannot mistake a reused socket id for a live
    /// predecessor. Returns the session's verified block count.
    fn release_session_conn(&mut self, sock: SockId, state: &SinkConnState) -> u64 {
        let SinkConnState::Body {
            header: Some(h), ..
        } = state
        else {
            return 0;
        };
        if h.resume.is_none() {
            return 0;
        }
        let Some(p) = self.sessions.get_mut(&h.session) else {
            return 0;
        };
        if p.active == Some(sock) {
            p.active = None;
        }
        p.verified
    }

    /// Arm the next watchdog tick if the watchdog is enabled and not
    /// already in flight. Called on accept and after each tick, so the
    /// timer chain dies with the last conn and the sim can quiesce.
    fn ensure_watchdog(&mut self, net: &mut Net) {
        if let Some(d) = self.idle {
            if !self.timer_armed {
                let token = SINK_TIMER_TAG | ((self.port as u64) << 32);
                net.set_app_timer(self.node, net.now() + d, token);
                self.timer_armed = true;
            }
        }
    }

    /// Watchdog tick: fail every conn that moved no byte since the last
    /// tick (freshly accepted conns get one full interval of grace).
    fn on_idle_tick(&mut self, net: &mut Net) {
        self.timer_armed = false;
        let mut stalled = Vec::new();
        for (sock, conn) in self.conns.iter_mut() {
            if conn.checked == conn.activity {
                stalled.push(*sock);
            } else {
                conn.checked = conn.activity;
            }
        }
        for sock in stalled {
            self.fail_conn(net, sock, SessionError::Stalled);
            net.abort(sock);
        }
        if !self.conns.is_empty() {
            self.ensure_watchdog(net);
        }
    }

    /// Record a failed attempt as a typed outcome and drop the
    /// connection state.
    fn fail_conn(&mut self, net: &mut Net, sock: SockId, err: SessionError) {
        let Some(conn) = self.conns.remove(&sock) else {
            return;
        };
        let verified_blocks = self.release_session_conn(sock, &conn.state);
        let (session, bytes, content_ok, resume_offset) = match conn.state {
            SinkConnState::ReadingHeader(_) => (None, 0, true, 0),
            SinkConnState::Body {
                header,
                received,
                content_ok,
                offset,
                ..
            } => (
                header.map(|h| h.session),
                offset + received,
                content_ok,
                offset,
            ),
        };
        self.outcomes.push(TransferOutcome {
            session,
            status: TransferStatus::Failed(err),
            bytes,
            digest_ok: None,
            content_ok,
            verified_blocks,
            resume_offset,
            accepted_at: conn.accepted_at,
            completed_at: net.now(),
        });
    }

    fn drain(&mut self, net: &mut Net, sock: SockId) {
        loop {
            let chunk = net.recv(sock, 1 << 20);
            if chunk.is_empty() {
                break;
            }
            // Split-borrow the conn table and the session map: body
            // bytes flow into the per-session digest chain.
            let conns = &mut self.conns;
            let sessions = &mut self.sessions;
            let Some(conn) = conns.get_mut(&sock) else {
                return;
            };
            conn.activity += chunk.len() as u64;
            let parsed = match &mut conn.state {
                SinkConnState::ReadingHeader(buf) => {
                    buf.extend_from_slice(&chunk);
                    match LslHeader::decode(buf) {
                        Ok(None) => None,
                        Ok(Some((header, used))) => {
                            let leftover = buf.split_off(used);
                            Some(Ok((header, leftover)))
                        }
                        Err(e) => Some(Err(e)),
                    }
                }
                st @ SinkConnState::Body { .. } => {
                    Self::feed_body(st, sessions, &chunk);
                    None
                }
            };
            match parsed {
                None => {}
                Some(Ok((header, leftover))) => self.on_header(net, sock, header, &leftover),
                Some(Err(e)) => {
                    self.fail_conn(net, sock, SessionError::Wire(e));
                    net.abort(sock);
                    return;
                }
            }
        }
        // EOF: finalize.
        if net.at_eof(sock) {
            let conn = self.conns.remove(&sock).expect("present");
            net.close(sock);
            match conn.state {
                SinkConnState::Body {
                    header,
                    md5,
                    received,
                    tail,
                    content_ok,
                    offset,
                } => {
                    let obs_sid = header.as_ref().map(|h| h.session.0 as u64).unwrap_or(0);
                    lsl_obs::span_begin(net.now().0, "sink.verdict.drain", obs_sid);
                    // For resume sessions the end-to-end digest lives in
                    // the session chain (it spans attempts); otherwise
                    // in this conn's own hasher.
                    let resumed = header.as_ref().is_some_and(|h| h.resume.is_some());
                    let mut verified_blocks = 0;
                    let mut whole: Option<[u8; DIGEST_LEN]> = None;
                    if resumed {
                        if let Some(p) = header
                            .as_ref()
                            .and_then(|h| self.sessions.get_mut(&h.session))
                        {
                            if p.active == Some(sock) {
                                p.active = None;
                            }
                            verified_blocks = p.verified;
                            whole = Some(p.chain.whole_digest());
                        }
                    }
                    let bytes = offset + received;
                    let digest_ok = match &header {
                        Some(h) if h.has_digest() => {
                            // The final 16 bytes are the digest; they were
                            // kept out of the hashers by feed_body.
                            let d = whole.unwrap_or_else(|| md5.finalize());
                            Some(tail.len() == 16 && d[..] == tail[..])
                        }
                        _ => None,
                    };
                    // Most-specific failure first: a short stream explains
                    // a bad digest, a bad digest trumps a content scan.
                    let declared = header.as_ref().map(|h| h.length).filter(|&l| l != u64::MAX);
                    let status = if declared.is_some_and(|l| bytes < l) {
                        TransferStatus::Failed(SessionError::TruncatedStream)
                    } else if digest_ok == Some(false) {
                        TransferStatus::Failed(SessionError::DigestMismatch)
                    } else if !content_ok {
                        TransferStatus::Failed(SessionError::ContentMismatch)
                    } else {
                        TransferStatus::Complete
                    };
                    let verdict_ok = matches!(status, TransferStatus::Complete);
                    self.outcomes.push(TransferOutcome {
                        session: header.as_ref().map(|h| h.session),
                        status,
                        bytes,
                        digest_ok,
                        content_ok,
                        verified_blocks,
                        resume_offset: offset,
                        accepted_at: conn.accepted_at,
                        completed_at: net.now(),
                    });
                    lsl_obs::gauge_set("sink.verified_blocks", obs_sid, verified_blocks);
                    lsl_obs::counter_add(
                        if verdict_ok {
                            "sink.verdict.complete"
                        } else {
                            "sink.verdict.failed"
                        },
                        0,
                        1,
                    );
                    lsl_obs::span_end(net.now().0, "sink.verdict.drain", obs_sid);
                }
                SinkConnState::ReadingHeader(_) => {
                    // EOF mid-header.
                    self.outcomes.push(TransferOutcome {
                        session: None,
                        status: TransferStatus::Failed(SessionError::Wire(
                            WireError::TruncatedHeader,
                        )),
                        bytes: 0,
                        digest_ok: None,
                        content_ok: true,
                        verified_blocks: 0,
                        resume_offset: 0,
                        accepted_at: conn.accepted_at,
                        completed_at: net.now(),
                    });
                }
            }
        }
    }

    /// A complete header arrived on `sock`: confirm the session back
    /// through the cascade (granting a resume offset when requested) and
    /// switch the conn to body consumption.
    fn on_header(&mut self, net: &mut Net, sock: SockId, header: LslHeader, leftover: &[u8]) {
        assert!(
            header.route.is_empty(),
            "sink received header with residual route"
        );
        let mut offset = 0u64;
        if header.resume.is_some() {
            // A new attempt supersedes any lingering conn of the same
            // session (e.g. one whose death the sink has not noticed).
            if let Some(stale) = self
                .sessions
                .get(&header.session)
                .and_then(|p| p.active)
                .filter(|&s| s != sock)
            {
                self.fail_conn(net, stale, SessionError::Stalled);
                net.abort(stale);
            }
            let progress = self
                .sessions
                .entry(header.session)
                .or_insert_with(|| SessionProgress {
                    chain: DigestChain::new(RESUME_BLOCK),
                    verified: 0,
                    corrupt: false,
                    active: None,
                });
            // Roll the chain back to the verified boundary: unverified
            // blocks and partial bytes from a dead (or corrupt) attempt
            // are junk the new attempt will resend.
            progress.chain.truncate_to(progress.verified);
            progress.corrupt = false;
            progress.active = Some(sock);
            offset = progress.verified * RESUME_BLOCK;
            // Grant: confirm byte + the offset this attempt streams from.
            let mut reply = Vec::with_capacity(9);
            reply.push(SESSION_CONFIRM);
            reply.extend_from_slice(&offset.to_be_bytes());
            let n = net.send(sock, &Bytes::from(reply));
            debug_assert_eq!(n, 9);
        } else {
            // Plain v1 confirmation — bit-identical to the pre-resume
            // handshake.
            let n = net.send(sock, &Bytes::from_static(&[SESSION_CONFIRM]));
            debug_assert_eq!(n, 1);
        }
        let mut st = SinkConnState::Body {
            header: Some(header),
            md5: Md5::new(),
            received: 0,
            tail: Vec::new(),
            content_ok: true,
            offset,
        };
        Self::feed_body(&mut st, &mut self.sessions, leftover);
        if let Some(conn) = self.conns.get_mut(&sock) {
            conn.state = st;
        }
    }

    /// Append payload bytes, maintaining the 16-byte digest tail window
    /// when a digest is expected. Resume sessions hash into the
    /// session's [`DigestChain`] (which certifies completed blocks);
    /// everything else into the conn's own whole-stream hasher.
    fn feed_body(
        state: &mut SinkConnState,
        sessions: &mut BTreeMap<SessionId, SessionProgress>,
        data: &[u8],
    ) {
        let SinkConnState::Body {
            header,
            md5,
            received,
            tail,
            content_ok,
            offset,
        } = state
        else {
            unreachable!("feed_body on header state");
        };
        let digest_expected = header.as_ref().is_some_and(|h| h.has_digest());
        let progress = header
            .as_ref()
            .filter(|h| h.resume.is_some())
            .and_then(|h| sessions.get_mut(&h.session));
        if !digest_expected {
            Self::absorb(data, *offset, received, content_ok, md5, progress);
            return;
        }
        // Keep a sliding 16-byte tail: everything before it is payload.
        tail.extend_from_slice(data);
        if tail.len() > 16 {
            let payload_len = tail.len() - 16;
            // Split so the drained prefix can be absorbed in place.
            let payload: Vec<u8> = tail.drain(..payload_len).collect();
            Self::absorb(&payload, *offset, received, content_ok, md5, progress);
        }
    }

    /// Absorb verified-position payload bytes: pattern-check, hash, and
    /// (for resume sessions) advance the certified block boundary.
    fn absorb(
        payload: &[u8],
        offset: u64,
        received: &mut u64,
        content_ok: &mut bool,
        md5: &mut Md5,
        progress: Option<&mut SessionProgress>,
    ) {
        if *content_ok {
            for (i, &b) in payload.iter().enumerate() {
                if b != payload_byte(offset + *received + i as u64) {
                    *content_ok = false;
                    break;
                }
            }
        }
        match progress {
            Some(p) => {
                p.chain.update(payload);
                // Certify newly completed blocks against the pattern; a
                // mismatch freezes the boundary until the block is
                // resent (the next attempt truncates the chain back).
                while !p.corrupt && p.verified < p.chain.completed() {
                    if p.chain.digest_of(p.verified) == Some(expected_block_digest(p.verified)) {
                        p.verified += 1;
                    } else {
                        p.corrupt = true;
                    }
                }
            }
            None => md5.update(payload),
        }
        *received += payload.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_pattern_is_deterministic_and_nontrivial() {
        assert_eq!(payload_byte(0), payload_byte(0));
        let c = payload_chunk(100, 50);
        assert_eq!(c.len(), 50);
        assert_eq!(c[0], payload_byte(100));
        // Not constant.
        assert!(c.iter().any(|&b| b != c[0]));
    }

    #[test]
    fn payload_chunk_is_offset_consistent() {
        let a = payload_chunk(0, 100);
        let b = payload_chunk(50, 50);
        assert_eq!(&a[50..], &b[..]);
    }
}
