//! Endpoint applications: a bulk data source and a verifying sink.
//!
//! These drive the paper's experiments: fixed-size synchronous transfers
//! measured wall-clock from connection initiation to the sink consuming
//! the full stream (including LSL header and digest overheads, and "all
//! concomitant processing overheads" of the depots in between).

use std::collections::BTreeMap;

use bytes::Bytes;
use lsl_digest::Md5;
use lsl_netsim::{NodeId, Time};
use lsl_tcp::{AppEvent, Net, SockEvent, SockId, TcpConfig};

use crate::error::{Handled, SessionError, WireError};
use crate::header::{LslHeader, HEADER_FLAG_DIGEST};
use crate::id::SessionId;
use crate::route::LslPath;

/// Deterministic payload byte at stream offset `i` (shared by sender and
/// verifying sink).
pub fn payload_byte(i: u64) -> u8 {
    ((i.wrapping_mul(131)).wrapping_add(7) % 251) as u8
}

/// Materialize payload bytes `[offset, offset+len)`.
pub fn payload_chunk(offset: u64, len: usize) -> Bytes {
    Bytes::from(
        (0..len as u64)
            .map(|i| payload_byte(offset + i))
            .collect::<Vec<u8>>(),
    )
}

/// How the sender frames the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendMode {
    /// Plain end-to-end TCP: raw payload only (the paper's baseline).
    DirectTcp,
    /// LSL: header first, then payload, then (optionally) the digest.
    /// `sync` is the paper's measured mode — the source streams only
    /// after the sink's one-byte session confirmation has travelled back
    /// through the cascade.
    Lsl { digest: bool, sync: bool },
}

impl SendMode {
    /// The paper's default LSL configuration.
    pub fn lsl() -> SendMode {
        SendMode::Lsl {
            digest: true,
            sync: true,
        }
    }
}

/// The sink's session-establishment confirmation byte.
pub const SESSION_CONFIRM: u8 = 0x4b; // 'K'

/// Sender progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderState {
    Connecting,
    /// Header sent; waiting for the sink's confirmation (sync mode).
    AwaitingConfirm,
    Streaming,
    Done,
    Failed(SessionError),
}

/// A bulk data source pushing `total` patterned bytes along `path`.
pub struct BulkSender {
    sock: SockId,
    mode: SendMode,
    state: SenderState,
    total: u64,
    sent: u64,
    header: Option<Bytes>,
    header_sent: usize,
    trailer: Option<Bytes>,
    trailer_sent: usize,
    md5: Option<Md5>,
    pub started_at: Time,
    pub finished_at: Option<Time>,
}

/// Per-send chunking granularity (bounds transient allocations).
const SEND_CHUNK: u64 = 256 * 1024;

impl BulkSender {
    /// Initiate the transfer: connect to the path's first hop.
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring the LSL API surface
    pub fn start(
        net: &mut Net,
        src: NodeId,
        path: &LslPath,
        session: SessionId,
        total: u64,
        mode: SendMode,
        tcp: TcpConfig,
        trace_label: Option<&str>,
    ) -> BulkSender {
        path.validate().expect("invalid LSL path");
        let first = path.first_hop();
        let sock = net.connect(src, first.node, first.port, tcp);
        if let Some(label) = trace_label {
            net.enable_trace(sock, label);
        }
        let header = match mode {
            SendMode::DirectTcp => {
                assert!(path.depots.is_empty(), "direct TCP cannot traverse depots");
                None
            }
            SendMode::Lsl { digest, .. } => Some(
                LslHeader {
                    session,
                    flags: if digest { HEADER_FLAG_DIGEST } else { 0 },
                    length: total,
                    route: path.remaining_route(),
                }
                .encode(),
            ),
        };
        let md5 = match mode {
            SendMode::Lsl { digest: true, .. } => Some(Md5::new()),
            _ => None,
        };
        BulkSender {
            sock,
            mode,
            state: SenderState::Connecting,
            total,
            sent: 0,
            header,
            header_sent: 0,
            trailer: None,
            trailer_sent: 0,
            md5,
            started_at: net.now(),
            finished_at: None,
        }
    }

    pub fn sock(&self) -> SockId {
        self.sock
    }

    pub fn state(&self) -> SenderState {
        self.state
    }

    pub fn mode(&self) -> SendMode {
        self.mode
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state, SenderState::Done | SenderState::Failed(_))
    }

    /// Monotone progress metric for the recovery watchdog: bytes the
    /// socket has accepted so far (header + payload + digest trailer).
    pub fn progress(&self) -> u64 {
        self.header_sent as u64 + self.sent + self.trailer_sent as u64
    }

    /// Tear the attempt down (recovery decided the sublink is dead):
    /// abort the socket and record the typed cause.
    pub fn fail(&mut self, net: &mut Net, err: SessionError) {
        if !self.is_done() {
            self.state = SenderState::Failed(err);
            self.finished_at.get_or_insert(net.now());
        }
        net.abort(self.sock);
    }

    /// Feed one event; [`Handled::Consumed`] means it was this sender's.
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        let AppEvent::Sock { sock, event } = ev else {
            // Timers belong to other components; fault notifications are
            // broadcast and stay unconsumed by convention.
            return Handled::NotMine;
        };
        if *sock != self.sock {
            return Handled::NotMine;
        }
        match event {
            SockEvent::Connected => {
                // Ship the header immediately; in sync mode the payload
                // waits for the sink's confirmation.
                self.send_header(net);
                match self.mode {
                    SendMode::Lsl { sync: true, .. } => {
                        self.state = SenderState::AwaitingConfirm;
                    }
                    _ => {
                        self.state = SenderState::Streaming;
                        self.pump(net);
                    }
                }
            }
            SockEvent::Readable if self.state == SenderState::AwaitingConfirm => {
                let b = net.recv(self.sock, 1);
                if b.first() == Some(&SESSION_CONFIRM) {
                    self.state = SenderState::Streaming;
                    self.pump(net);
                }
            }
            SockEvent::Writable => self.pump(net),
            SockEvent::Error(e) => {
                self.state = SenderState::Failed(SessionError::Tcp(*e));
                self.finished_at.get_or_insert(net.now());
            }
            SockEvent::Closed => {
                self.finished_at.get_or_insert(net.now());
            }
            _ => {}
        }
        Handled::Consumed
    }

    fn send_header(&mut self, net: &mut Net) {
        if let Some(h) = &self.header {
            while self.header_sent < h.len() {
                let n = net.send(self.sock, &h.slice(self.header_sent..));
                self.header_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
    }

    fn pump(&mut self, net: &mut Net) {
        if self.state != SenderState::Streaming {
            return;
        }
        // 1. Header (when not already flushed pre-confirmation).
        if let Some(h) = &self.header {
            while self.header_sent < h.len() {
                let n = net.send(self.sock, &h.slice(self.header_sent..));
                self.header_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
        // 2. Payload.
        while self.sent < self.total {
            let len = (self.total - self.sent).min(SEND_CHUNK) as usize;
            let chunk = payload_chunk(self.sent, len);
            let n = net.send(self.sock, &chunk);
            if let Some(md5) = &mut self.md5 {
                md5.update(&chunk[..n]);
            }
            self.sent += n as u64;
            if n < len {
                return;
            }
        }
        // 3. Digest trailer.
        if let Some(md5) = self.md5.take() {
            self.trailer = Some(Bytes::copy_from_slice(&md5.finalize()));
        }
        if let Some(t) = &self.trailer {
            while self.trailer_sent < t.len() {
                let n = net.send(self.sock, &t.slice(self.trailer_sent..));
                self.trailer_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
        // 4. Done: half-close; FIN cascades to the sink.
        self.state = SenderState::Done;
        net.close(self.sock);
    }
}

/// How one inbound transfer attempt ended at the sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferStatus {
    /// Full stream received and every enabled check passed.
    Complete,
    /// The attempt failed for the given typed reason (replaces the old
    /// opaque `SinkServer::errors` counter).
    Failed(SessionError),
}

/// Result of one inbound transfer attempt at the sink — successful or
/// not, every attempt yields exactly one outcome.
#[derive(Clone, Debug)]
pub struct TransferOutcome {
    /// Session id (None for direct-TCP transfers or pre-header failures).
    pub session: Option<SessionId>,
    /// Typed disposition of the attempt.
    pub status: TransferStatus,
    /// Payload bytes received (header and digest excluded).
    pub bytes: u64,
    /// Digest verification result (None when no digest was sent or the
    /// stream died first).
    pub digest_ok: Option<bool>,
    /// Whether every payload byte matched the generator pattern.
    pub content_ok: bool,
    /// When the connection was accepted.
    pub accepted_at: Time,
    /// When the attempt ended (EOF/digest verified, or the failure).
    pub completed_at: Time,
}

impl TransferOutcome {
    /// Did this attempt deliver a fully verified stream?
    pub fn ok(&self) -> bool {
        self.status == TransferStatus::Complete
    }

    /// The typed failure reason, if any.
    pub fn failure(&self) -> Option<SessionError> {
        match self.status {
            TransferStatus::Complete => None,
            TransferStatus::Failed(e) => Some(e),
        }
    }
}

enum SinkConnState {
    /// LSL: accumulating header bytes.
    ReadingHeader(Vec<u8>),
    /// Consuming payload (+ digest tail when flagged).
    Body {
        header: Option<LslHeader>,
        md5: Md5,
        received: u64,
        /// Last up-to-16 bytes seen, to peel the digest off the tail.
        tail: Vec<u8>,
        content_ok: bool,
    },
}

struct SinkConn {
    state: SinkConnState,
    accepted_at: Time,
}

/// A verifying sink server: accepts transfers (LSL-framed or raw TCP),
/// checks the payload pattern and the trailing MD5 digest, and records a
/// [`TransferOutcome`] per stream — failed attempts included, each with
/// its typed [`TransferStatus`].
pub struct SinkServer {
    listener: SockId,
    expects_lsl: bool,
    conns: BTreeMap<SockId, SinkConn>,
    outcomes: Vec<TransferOutcome>,
}

impl SinkServer {
    pub fn new(
        net: &mut Net,
        node: NodeId,
        port: u16,
        expects_lsl: bool,
        tcp: TcpConfig,
    ) -> SinkServer {
        let listener = net.listen(node, port, tcp);
        SinkServer {
            listener,
            expects_lsl,
            conns: BTreeMap::new(),
            outcomes: Vec::new(),
        }
    }

    /// All recorded outcomes, failed attempts included.
    pub fn outcomes(&self) -> &[TransferOutcome] {
        &self.outcomes
    }

    pub fn take_outcomes(&mut self) -> Vec<TransferOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Feed one event; [`Handled::Consumed`] means it was this sink's.
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        let AppEvent::Sock { sock, event } = ev else {
            return Handled::NotMine;
        };
        if *sock == self.listener {
            if let SockEvent::Accepted { conn } = event {
                let state = if self.expects_lsl {
                    SinkConnState::ReadingHeader(Vec::new())
                } else {
                    SinkConnState::Body {
                        header: None,
                        md5: Md5::new(),
                        received: 0,
                        tail: Vec::new(),
                        content_ok: true,
                    }
                };
                self.conns.insert(
                    *conn,
                    SinkConn {
                        state,
                        accepted_at: net.now(),
                    },
                );
            }
            return Handled::Consumed;
        }
        if !self.conns.contains_key(sock) {
            return Handled::NotMine;
        }
        match event {
            SockEvent::Readable | SockEvent::PeerFin => self.drain(net, *sock),
            SockEvent::Error(e) => self.fail_conn(net, *sock, SessionError::Tcp(*e)),
            SockEvent::Closed => {
                net.release(*sock);
                self.conns.remove(sock);
            }
            _ => {}
        }
        Handled::Consumed
    }

    /// Record a failed attempt as a typed outcome and drop the
    /// connection state.
    fn fail_conn(&mut self, net: &mut Net, sock: SockId, err: SessionError) {
        let Some(conn) = self.conns.remove(&sock) else {
            return;
        };
        let (session, bytes, content_ok) = match conn.state {
            SinkConnState::ReadingHeader(_) => (None, 0, true),
            SinkConnState::Body {
                header,
                received,
                content_ok,
                ..
            } => (header.map(|h| h.session), received, content_ok),
        };
        self.outcomes.push(TransferOutcome {
            session,
            status: TransferStatus::Failed(err),
            bytes,
            digest_ok: None,
            content_ok,
            accepted_at: conn.accepted_at,
            completed_at: net.now(),
        });
    }

    fn drain(&mut self, net: &mut Net, sock: SockId) {
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        loop {
            let chunk = net.recv(sock, 1 << 20);
            if chunk.is_empty() {
                break;
            }
            match &mut conn.state {
                SinkConnState::ReadingHeader(buf) => {
                    buf.extend_from_slice(&chunk);
                    match LslHeader::decode(buf) {
                        Ok(None) => {}
                        Ok(Some((header, used))) => {
                            assert!(
                                header.route.is_empty(),
                                "sink received header with residual route"
                            );
                            // Session established: confirm to the source
                            // (relayed back through the cascade).
                            let n = net.send(sock, &Bytes::from_static(&[SESSION_CONFIRM]));
                            debug_assert_eq!(n, 1);
                            let leftover = buf.split_off(used);
                            let mut st = SinkConnState::Body {
                                header: Some(header),
                                md5: Md5::new(),
                                received: 0,
                                tail: Vec::new(),
                                content_ok: true,
                            };
                            Self::feed_body(&mut st, &leftover);
                            conn.state = st;
                        }
                        Err(e) => {
                            self.fail_conn(net, sock, SessionError::Wire(e));
                            net.abort(sock);
                            return;
                        }
                    }
                }
                st @ SinkConnState::Body { .. } => Self::feed_body(st, &chunk),
            }
        }
        // EOF: finalize.
        if net.at_eof(sock) {
            let conn = self.conns.remove(&sock).expect("present");
            net.close(sock);
            match conn.state {
                SinkConnState::Body {
                    header,
                    md5,
                    received,
                    tail,
                    content_ok,
                } => {
                    let (bytes, digest_ok) = match &header {
                        Some(h) if h.has_digest() => {
                            // The final 16 bytes are the digest; they were
                            // kept out of `md5`/`received` by feed_body.
                            let ok = tail.len() == 16 && md5.finalize()[..] == tail[..];
                            (received, Some(ok))
                        }
                        _ => (received, None),
                    };
                    // Most-specific failure first: a short stream explains
                    // a bad digest, a bad digest trumps a content scan.
                    let declared = header.as_ref().map(|h| h.length).filter(|&l| l != u64::MAX);
                    let status = if declared.is_some_and(|l| bytes < l) {
                        TransferStatus::Failed(SessionError::TruncatedStream)
                    } else if digest_ok == Some(false) {
                        TransferStatus::Failed(SessionError::DigestMismatch)
                    } else if !content_ok {
                        TransferStatus::Failed(SessionError::ContentMismatch)
                    } else {
                        TransferStatus::Complete
                    };
                    self.outcomes.push(TransferOutcome {
                        session: header.as_ref().map(|h| h.session),
                        status,
                        bytes,
                        digest_ok,
                        content_ok,
                        accepted_at: conn.accepted_at,
                        completed_at: net.now(),
                    });
                }
                SinkConnState::ReadingHeader(_) => {
                    // EOF mid-header.
                    self.outcomes.push(TransferOutcome {
                        session: None,
                        status: TransferStatus::Failed(SessionError::Wire(
                            WireError::TruncatedHeader,
                        )),
                        bytes: 0,
                        digest_ok: None,
                        content_ok: true,
                        accepted_at: conn.accepted_at,
                        completed_at: net.now(),
                    });
                }
            }
        }
    }

    /// Append payload bytes, maintaining the 16-byte digest tail window
    /// when a digest is expected.
    fn feed_body(state: &mut SinkConnState, data: &[u8]) {
        let SinkConnState::Body {
            header,
            md5,
            received,
            tail,
            content_ok,
        } = state
        else {
            unreachable!("feed_body on header state");
        };
        let digest_expected = header.as_ref().is_some_and(|h| h.has_digest());
        if !digest_expected {
            for (i, &b) in data.iter().enumerate() {
                if b != payload_byte(*received + i as u64) {
                    *content_ok = false;
                    break;
                }
            }
            md5.update(data);
            *received += data.len() as u64;
            return;
        }
        // Keep a sliding 16-byte tail: everything before it is payload.
        tail.extend_from_slice(data);
        if tail.len() > 16 {
            let payload_len = tail.len() - 16;
            let payload = &tail[..payload_len];
            for (i, &b) in payload.iter().enumerate() {
                if b != payload_byte(*received + i as u64) {
                    *content_ok = false;
                    break;
                }
            }
            md5.update(payload);
            *received += payload_len as u64;
            tail.drain(..payload_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_pattern_is_deterministic_and_nontrivial() {
        assert_eq!(payload_byte(0), payload_byte(0));
        let c = payload_chunk(100, 50);
        assert_eq!(c.len(), 50);
        assert_eq!(c[0], payload_byte(100));
        // Not constant.
        assert!(c.iter().any(|&b| b != c[0]));
    }

    #[test]
    fn payload_chunk_is_offset_consistent() {
        let a = payload_chunk(0, 100);
        let b = payload_chunk(50, 50);
        assert_eq!(&a[50..], &b[..]);
    }
}
