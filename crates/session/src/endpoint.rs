//! Endpoint applications: a bulk data source and a verifying sink.
//!
//! These drive the paper's experiments: fixed-size synchronous transfers
//! measured wall-clock from connection initiation to the sink consuming
//! the full stream (including LSL header and digest overheads, and "all
//! concomitant processing overheads" of the depots in between).

use std::collections::BTreeMap;

use bytes::Bytes;
use lsl_digest::{md5, BlockLedger, DigestChain, Md5, DIGEST_LEN};
use lsl_netsim::{Dur, NodeId, Time};
use lsl_tcp::{AppEvent, Net, SockEvent, SockId, TcpConfig};

use crate::error::{Handled, SessionError, WireError};
use crate::header::{LslHeader, Resume, StripeReq, HEADER_FLAG_DIGEST};
use crate::id::SessionId;
use crate::route::LslPath;

/// Resume granularity: the sink certifies delivery in blocks of this
/// many bytes, and grants resume offsets only at block boundaries.
pub const RESUME_BLOCK: u64 = 64 * 1024;

/// The MD5 a full resume block at index `block` must carry when the
/// stream follows the generator pattern — the sink's per-block
/// verification reference (the pattern plays the role a stored file's
/// on-disk blocks would play in a deployment).
pub fn expected_block_digest(block: u64) -> [u8; DIGEST_LEN] {
    md5(&payload_chunk(block * RESUME_BLOCK, RESUME_BLOCK as usize))
}

/// Like [`expected_block_digest`], but bounded by the stream length:
/// the stream's final block may be shorter than [`RESUME_BLOCK`], and a
/// striped range reaching the stream end certifies that short tail too.
pub fn expected_block_digest_bounded(block: u64, total: u64) -> [u8; DIGEST_LEN] {
    let start = block * RESUME_BLOCK;
    let len = RESUME_BLOCK.min(total.saturating_sub(start));
    md5(&payload_chunk(start, len as usize))
}

/// Number of [`RESUME_BLOCK`]-sized blocks covering a `total`-byte
/// stream (the last block may be short).
pub fn stream_blocks(total: u64) -> u64 {
    total.div_ceil(RESUME_BLOCK)
}

/// Whole-stream MD5 state fast-forwarded over pattern bytes
/// `[0, offset)` — how a resuming sender rebuilds the end-to-end digest
/// without resending a byte.
fn md5_fast_forward(offset: u64) -> Md5 {
    let mut h = Md5::new();
    let mut at = 0u64;
    while at < offset {
        let len = (offset - at).min(SEND_CHUNK) as usize;
        h.update(&payload_chunk(at, len));
        at += len as u64;
    }
    h
}

/// Deterministic payload byte at stream offset `i` (shared by sender and
/// verifying sink).
pub fn payload_byte(i: u64) -> u8 {
    ((i.wrapping_mul(131)).wrapping_add(7) % 251) as u8
}

/// Materialize payload bytes `[offset, offset+len)`.
pub fn payload_chunk(offset: u64, len: usize) -> Bytes {
    Bytes::from(
        (0..len as u64)
            .map(|i| payload_byte(offset + i))
            .collect::<Vec<u8>>(),
    )
}

/// How the sender frames the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendMode {
    /// Plain end-to-end TCP: raw payload only (the paper's baseline).
    DirectTcp,
    /// LSL: header first, then payload, then (optionally) the digest.
    /// `sync` is the paper's measured mode — the source streams only
    /// after the sink's one-byte session confirmation has travelled back
    /// through the cascade.
    Lsl { digest: bool, sync: bool },
}

impl SendMode {
    /// The paper's default LSL configuration.
    pub fn lsl() -> SendMode {
        SendMode::Lsl {
            digest: true,
            sync: true,
        }
    }
}

/// The sink's session-establishment confirmation byte.
pub const SESSION_CONFIRM: u8 = 0x4b; // 'K'

/// Sender progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderState {
    Connecting,
    /// Header sent; waiting for the sink's confirmation (sync mode).
    AwaitingConfirm,
    Streaming,
    Done,
    Failed(SessionError),
}

/// A bulk data source pushing `total` patterned bytes along `path`.
pub struct BulkSender {
    sock: SockId,
    mode: SendMode,
    state: SenderState,
    total: u64,
    sent: u64,
    /// One past the last byte this attempt streams (== `total` except
    /// for striped attempts, whose granted range may end mid-stream).
    limit: u64,
    header: Option<Bytes>,
    header_sent: usize,
    trailer: Option<Bytes>,
    trailer_sent: usize,
    md5: Option<Md5>,
    /// The resume request sent in the header (None = plain v1 attempt).
    resume_req: Option<Resume>,
    /// The stripe block-range request sent in the header (v3 attempts).
    stripe_req: Option<StripeReq>,
    /// Offset the sink granted (set on confirmation, resume mode only).
    granted: Option<u64>,
    /// Block range the sink granted (set on confirmation, stripe mode).
    stripe_grant: Option<(u64, u64)>,
    /// Accumulates the confirmation reply (1 byte plain, 9 with resume,
    /// 17 with a stripe request).
    confirm_buf: Vec<u8>,
    /// Stream offset this attempt started from (0 unless resumed or
    /// striped).
    resume_base: u64,
    pub started_at: Time,
    pub finished_at: Option<Time>,
}

/// Per-send chunking granularity (bounds transient allocations).
const SEND_CHUNK: u64 = 256 * 1024;

impl BulkSender {
    /// Initiate the transfer: connect to the path's first hop.
    ///
    /// Passing `resume: Some(_)` sends a version-2 header carrying the
    /// request and expects the extended 9-byte confirmation (the sink's
    /// granted offset); it requires `SendMode::Lsl` with both `digest`
    /// and `sync` — resume is meaningless without block verification
    /// and the confirmation round-trip that carries the grant.
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring the LSL API surface
    pub fn start(
        net: &mut Net,
        src: NodeId,
        path: &LslPath,
        session: SessionId,
        total: u64,
        mode: SendMode,
        tcp: TcpConfig,
        trace_label: Option<&str>,
        resume: Option<Resume>,
    ) -> BulkSender {
        path.validate().expect("invalid LSL path");
        assert!(
            path.remaining_route().len() <= crate::header::MAX_HOPS,
            "route exceeds MAX_HOPS; build candidate sets through RoutePlan"
        );
        if resume.is_some() {
            assert!(
                matches!(
                    mode,
                    SendMode::Lsl {
                        digest: true,
                        sync: true
                    }
                ),
                "resume requires LSL mode with digest and sync"
            );
        }
        let first = path.first_hop();
        let sock = net.connect(src, first.node, first.port, tcp);
        if let Some(label) = trace_label {
            net.enable_trace(sock, label);
        }
        let header = match mode {
            SendMode::DirectTcp => {
                assert!(path.depots.is_empty(), "direct TCP cannot traverse depots");
                None
            }
            SendMode::Lsl { digest, .. } => Some(
                LslHeader {
                    session,
                    flags: if digest { HEADER_FLAG_DIGEST } else { 0 },
                    length: total,
                    resume,
                    stripe: None,
                    route: path.remaining_route(),
                }
                .encode()
                .expect("route length asserted against MAX_HOPS above"),
            ),
        };
        let md5 = match mode {
            SendMode::Lsl { digest: true, .. } => Some(Md5::new()),
            _ => None,
        };
        BulkSender {
            sock,
            mode,
            state: SenderState::Connecting,
            total,
            sent: 0,
            limit: total,
            header,
            header_sent: 0,
            trailer: None,
            trailer_sent: 0,
            md5,
            resume_req: resume,
            stripe_req: None,
            granted: None,
            stripe_grant: None,
            confirm_buf: Vec::new(),
            resume_base: 0,
            started_at: net.now(),
            finished_at: None,
        }
    }

    /// Initiate one striped cascade: connect along `path` and offer to
    /// carry blocks `[stripe.start_block, stripe.end_block)` of the
    /// session's stream. The sink replies with the range it grants
    /// (possibly narrowed — another cascade may have delivered the
    /// head); this attempt then streams exactly the granted range and
    /// trails it with an MD5 over *those bytes only*, so each range is
    /// independently end-to-end verified. Always LSL sync+digest mode:
    /// striping is meaningless without block certification.
    #[allow(clippy::too_many_arguments)] // mirrors `start`, the non-striped constructor
    pub fn start_stripe(
        net: &mut Net,
        src: NodeId,
        path: &LslPath,
        session: SessionId,
        total: u64,
        tcp: TcpConfig,
        trace_label: Option<&str>,
        stripe: StripeReq,
    ) -> BulkSender {
        path.validate().expect("invalid LSL path");
        assert!(
            path.remaining_route().len() <= crate::header::MAX_HOPS,
            "route exceeds MAX_HOPS; build candidate sets through RoutePlan"
        );
        assert!(
            stripe.start_block <= stripe.end_block && stripe.end_block <= stream_blocks(total),
            "stripe range outside the stream"
        );
        let first = path.first_hop();
        let sock = net.connect(src, first.node, first.port, tcp);
        if let Some(label) = trace_label {
            net.enable_trace(sock, label);
        }
        let header = LslHeader {
            session,
            flags: HEADER_FLAG_DIGEST,
            length: total,
            resume: None,
            stripe: Some(stripe),
            route: path.remaining_route(),
        }
        .encode()
        .expect("route length asserted against MAX_HOPS above");
        BulkSender {
            sock,
            mode: SendMode::lsl(),
            state: SenderState::Connecting,
            total,
            sent: 0,
            limit: total,
            header: Some(header),
            header_sent: 0,
            trailer: None,
            trailer_sent: 0,
            md5: Some(Md5::new()),
            resume_req: None,
            stripe_req: Some(stripe),
            granted: None,
            stripe_grant: None,
            confirm_buf: Vec::new(),
            resume_base: 0,
            started_at: net.now(),
            finished_at: None,
        }
    }

    pub fn sock(&self) -> SockId {
        self.sock
    }

    pub fn state(&self) -> SenderState {
        self.state
    }

    pub fn mode(&self) -> SendMode {
        self.mode
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state, SenderState::Done | SenderState::Failed(_))
    }

    /// Monotone progress metric for the recovery watchdog: bytes the
    /// socket has accepted so far (header + payload + digest trailer).
    pub fn progress(&self) -> u64 {
        self.header_sent as u64 + self.sent + self.trailer_sent as u64
    }

    /// The offset the sink granted this attempt (resume mode, after the
    /// confirmation round-trip). `None` before confirmation or when no
    /// resume request was sent.
    pub fn resume_granted(&self) -> Option<u64> {
        self.granted
    }

    /// The block range the sink granted this striped attempt. `None`
    /// before confirmation or for non-striped attempts.
    pub fn stripe_granted(&self) -> Option<(u64, u64)> {
        self.stripe_grant
    }

    /// The block range this striped attempt requested, if any.
    pub fn stripe_requested(&self) -> Option<StripeReq> {
        self.stripe_req
    }

    /// Payload bytes this attempt has actually pushed into its socket —
    /// excludes the resumed-over prefix, so it measures what a resume
    /// *saved* re-sending.
    pub fn payload_sent(&self) -> u64 {
        self.sent - self.resume_base
    }

    /// Absolute stream offset reached so far (resume base + streamed
    /// payload) — what a later resumed attempt measures resend waste
    /// against.
    pub fn stream_offset(&self) -> u64 {
        self.sent
    }

    /// Tear the attempt down (recovery decided the sublink is dead):
    /// abort the socket and record the typed cause.
    pub fn fail(&mut self, net: &mut Net, err: SessionError) {
        if !self.is_done() {
            self.state = SenderState::Failed(err);
            self.finished_at.get_or_insert(net.now());
        }
        net.abort(self.sock);
    }

    /// Feed one event; [`Handled::Consumed`] means it was this sender's.
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        let AppEvent::Sock { sock, event } = ev else {
            // Timers belong to other components; fault notifications are
            // broadcast and stay unconsumed by convention.
            return Handled::NotMine;
        };
        if *sock != self.sock {
            return Handled::NotMine;
        }
        match event {
            SockEvent::Connected => {
                // Ship the header immediately; in sync mode the payload
                // waits for the sink's confirmation.
                self.send_header(net);
                match self.mode {
                    SendMode::Lsl { sync: true, .. } => {
                        self.state = SenderState::AwaitingConfirm;
                    }
                    _ => {
                        self.state = SenderState::Streaming;
                        self.pump(net);
                    }
                }
            }
            SockEvent::Readable if self.state == SenderState::AwaitingConfirm => {
                match (self.resume_req, self.stripe_req) {
                    (None, None) => {
                        let b = net.recv(self.sock, 1);
                        if b.first() == Some(&SESSION_CONFIRM) {
                            self.state = SenderState::Streaming;
                            self.pump(net);
                        }
                    }
                    (Some(req), None) => {
                        // Resume confirmation: the confirm byte plus the
                        // sink's granted offset (may arrive fragmented).
                        let want = 9 - self.confirm_buf.len();
                        let b = net.recv(self.sock, want);
                        self.confirm_buf.extend_from_slice(&b);
                        if self.confirm_buf.len() == 9 && self.confirm_buf[0] == SESSION_CONFIRM {
                            let granted = u64::from_be_bytes(
                                self.confirm_buf[1..9].try_into().expect("8 bytes"),
                            );
                            self.on_grant(net, req, granted);
                        }
                    }
                    (None, Some(req)) => {
                        // Stripe confirmation: the confirm byte plus the
                        // granted block range (may arrive fragmented).
                        let want = 17 - self.confirm_buf.len();
                        let b = net.recv(self.sock, want);
                        self.confirm_buf.extend_from_slice(&b);
                        if self.confirm_buf.len() == 17 && self.confirm_buf[0] == SESSION_CONFIRM {
                            let gstart = u64::from_be_bytes(
                                self.confirm_buf[1..9].try_into().expect("8 bytes"),
                            );
                            let gend = u64::from_be_bytes(
                                self.confirm_buf[9..17].try_into().expect("8 bytes"),
                            );
                            self.on_stripe_grant(net, req, gstart, gend);
                        }
                    }
                    (Some(_), Some(_)) => unreachable!("constructors forbid resume+stripe"),
                }
            }
            SockEvent::Writable => self.pump(net),
            SockEvent::Error(e) => {
                self.state = SenderState::Failed(SessionError::Tcp(*e));
                self.finished_at.get_or_insert(net.now());
            }
            SockEvent::Closed => {
                self.finished_at.get_or_insert(net.now());
            }
            _ => {}
        }
        Handled::Consumed
    }

    /// The sink's grant arrived: sanity-check it, fast-forward the
    /// whole-stream digest over the skipped prefix, and stream from the
    /// granted offset. The sink is the verification authority, so a
    /// grant *below* the request is normal (we simply resend more); a
    /// grant that is misaligned or beyond the stream is protocol
    /// corruption and fails the attempt with the typed mismatch.
    fn on_grant(&mut self, net: &mut Net, req: Resume, granted: u64) {
        if !granted.is_multiple_of(RESUME_BLOCK) || granted > self.total {
            self.state = SenderState::Failed(SessionError::ResumeMismatch {
                requested: req.offset,
                granted,
            });
            self.finished_at.get_or_insert(net.now());
            net.abort(self.sock);
            return;
        }
        self.granted = Some(granted);
        self.resume_base = granted;
        self.sent = granted;
        if granted > 0 {
            // Rebuild the end-to-end digest as if the prefix had been
            // streamed: the trailer still covers bytes [0, total).
            let t = net.now().0;
            lsl_obs::span_begin(t, "session.resume.fast_forward", granted / RESUME_BLOCK);
            self.md5 = Some(md5_fast_forward(granted));
            lsl_obs::span_end(t, "session.resume.fast_forward", granted / RESUME_BLOCK);
        }
        self.state = SenderState::Streaming;
        self.pump(net);
    }

    /// The sink's stripe grant arrived: it must be a sub-range of the
    /// request (the sink only ever *narrows* — skipping blocks another
    /// cascade delivered — never widens). This attempt streams bytes
    /// `[gstart·B, min(gend·B, total))` and its trailer hashes exactly
    /// those bytes. An empty grant is a clean no-op attempt: everything
    /// we offered to carry is already verified.
    fn on_stripe_grant(&mut self, net: &mut Net, req: StripeReq, gstart: u64, gend: u64) {
        if gstart > gend || gstart < req.start_block || gend > req.end_block {
            self.state = SenderState::Failed(SessionError::StripeMismatch {
                granted_start: gstart,
                granted_end: gend,
            });
            self.finished_at.get_or_insert(net.now());
            net.abort(self.sock);
            return;
        }
        self.stripe_grant = Some((gstart, gend));
        self.sent = gstart * RESUME_BLOCK;
        self.resume_base = self.sent;
        self.limit = (gend * RESUME_BLOCK).min(self.total);
        // The trailer covers only this range: start the hash fresh.
        self.md5 = Some(Md5::new());
        self.state = SenderState::Streaming;
        self.pump(net);
    }

    fn send_header(&mut self, net: &mut Net) {
        if let Some(h) = &self.header {
            while self.header_sent < h.len() {
                let n = net.send(self.sock, &h.slice(self.header_sent..));
                self.header_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
    }

    fn pump(&mut self, net: &mut Net) {
        if self.state != SenderState::Streaming {
            return;
        }
        // 1. Header (when not already flushed pre-confirmation).
        if let Some(h) = &self.header {
            while self.header_sent < h.len() {
                let n = net.send(self.sock, &h.slice(self.header_sent..));
                self.header_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
        // 2. Payload (bounded by the granted range for striped attempts).
        while self.sent < self.limit {
            let len = (self.limit - self.sent).min(SEND_CHUNK) as usize;
            let chunk = payload_chunk(self.sent, len);
            let n = net.send(self.sock, &chunk);
            if let Some(md5) = &mut self.md5 {
                md5.update(&chunk[..n]);
            }
            self.sent += n as u64;
            if n < len {
                return;
            }
        }
        // 3. Digest trailer.
        if let Some(md5) = self.md5.take() {
            self.trailer = Some(Bytes::copy_from_slice(&md5.finalize()));
        }
        if let Some(t) = &self.trailer {
            while self.trailer_sent < t.len() {
                let n = net.send(self.sock, &t.slice(self.trailer_sent..));
                self.trailer_sent += n;
                if n == 0 {
                    return;
                }
            }
        }
        // 4. Done: half-close; FIN cascades to the sink.
        self.state = SenderState::Done;
        net.close(self.sock);
    }
}

/// How one inbound transfer attempt ended at the sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferStatus {
    /// Full stream received and every enabled check passed.
    Complete,
    /// The attempt failed for the given typed reason (replaces the old
    /// opaque `SinkServer::errors` counter).
    Failed(SessionError),
}

/// Result of one inbound transfer attempt at the sink — successful or
/// not, every attempt yields exactly one outcome.
#[derive(Clone, Debug)]
pub struct TransferOutcome {
    /// Session id (None for direct-TCP transfers or pre-header failures).
    pub session: Option<SessionId>,
    /// Typed disposition of the attempt.
    pub status: TransferStatus,
    /// Stream position reached, in payload bytes (header and digest
    /// excluded; for resumed attempts this includes the granted prefix,
    /// so it is the absolute high-water mark, not this attempt's count).
    pub bytes: u64,
    /// Payload bytes *this* attempt (this cascade's connection) actually
    /// delivered — honest per-cascade attribution, excluding any
    /// resumed-over prefix that `bytes` folds in.
    pub attempt_bytes: u64,
    /// Blocks this attempt newly certified (duplicates another cascade
    /// already delivered are excluded — they were discarded).
    pub blocks_certified: u64,
    /// The block range the sink granted a striped attempt (None for
    /// non-striped attempts).
    pub stripe: Option<(u64, u64)>,
    /// Session-wide verified block count (in any order) when this
    /// attempt ended. Equals `verified_blocks` for single-cascade
    /// sessions; for striped sessions it includes out-of-order blocks
    /// beyond the contiguous prefix.
    pub session_verified: u64,
    /// Digest verification result (None when no digest was sent or the
    /// stream died first).
    pub digest_ok: Option<bool>,
    /// Whether every payload byte matched the generator pattern.
    pub content_ok: bool,
    /// Highest *contiguously verified* block count for the session when
    /// this attempt ended — the sink's delivery verdict that resume
    /// grants are based on (0 for non-resume attempts).
    pub verified_blocks: u64,
    /// The offset the sink granted this attempt (0 = started fresh).
    pub resume_offset: u64,
    /// When the connection was accepted.
    pub accepted_at: Time,
    /// When the attempt ended (EOF/digest verified, or the failure).
    pub completed_at: Time,
}

impl TransferOutcome {
    /// Did this attempt deliver a fully verified stream?
    pub fn ok(&self) -> bool {
        self.status == TransferStatus::Complete
    }

    /// The typed failure reason, if any.
    pub fn failure(&self) -> Option<SessionError> {
        match self.status {
            TransferStatus::Complete => None,
            TransferStatus::Failed(e) => Some(e),
        }
    }
}

/// Per-connection certification state for one striped cascade: a
/// [`DigestChain`] over *this connection's granted range only*, so its
/// blocks certify independently of the other cascades' arrival order.
struct StripeBody {
    /// Granted range `[start_block, end_block)`.
    start_block: u64,
    end_block: u64,
    /// Range-local chain: block `i` here is stream block
    /// `start_block + i`.
    chain: DigestChain,
    /// Chain blocks already checked against the reference digests.
    scanned: u64,
    /// Blocks this connection newly certified in the session ledger.
    certified: u64,
    /// A completed block failed its digest; certification is frozen.
    corrupt: bool,
}

enum SinkConnState {
    /// LSL: accumulating header bytes.
    ReadingHeader(Vec<u8>),
    /// Consuming payload (+ digest tail when flagged).
    Body {
        /// Boxed (like `stripe`) so the enum stays near the small
        /// `ReadingHeader` variant's size.
        header: Option<Box<LslHeader>>,
        md5: Md5,
        /// Payload bytes consumed by *this* attempt.
        received: u64,
        /// Last up-to-16 bytes seen, to peel the digest off the tail.
        tail: Vec<u8>,
        content_ok: bool,
        /// Stream offset this attempt started at (the granted resume
        /// offset or stripe-range start; 0 for fresh attempts).
        offset: u64,
        /// Session blocks verified when this attempt started — the
        /// baseline per-attempt `blocks_certified` is measured against
        /// (contiguous count for resume attempts; unused for stripes,
        /// which count certifications directly).
        blocks_at_start: u64,
        /// Striped-cascade certification state (stripe attempts only;
        /// boxed so the idle `ReadingHeader` state stays small).
        stripe: Option<Box<StripeBody>>,
    },
}

struct SinkConn {
    state: SinkConnState,
    accepted_at: Time,
    /// Cumulative bytes seen, sampled by the idle watchdog.
    activity: u64,
    /// Watchdog snapshot of `activity` at the last tick (`u64::MAX` =
    /// freshly accepted, grant one full interval of grace).
    checked: u64,
}

/// App-timer tokens with this bit belong to a [`SinkServer`] idle
/// watchdog. (Bit 63 is the net layer's app-timer discriminator, bit 62
/// the session client's; bit 61 is ours. Bits 32–47 carry the sink's
/// listening port so colocated sinks ignore each other.)
pub const SINK_TIMER_TAG: u64 = 1 << 61;

/// Per-session delivery state that *survives* attempt deaths — the
/// sink-side half of the resume protocol. The digest chain absorbs the
/// payload across attempts; `verified` is the contiguously certified
/// block boundary the sink grants resumes from.
struct SessionProgress {
    chain: DigestChain,
    /// Blocks verified contiguously from the stream head.
    verified: u64,
    /// A completed block failed its digest: the boundary is frozen
    /// until the next attempt rolls the chain back and resends it.
    corrupt: bool,
    /// The attempt currently feeding this session, if any. A new
    /// resume header supersedes (and fails) a lingering active conn.
    /// Striped sessions run many conns concurrently and leave this
    /// `None` — they certify through `ledger` instead.
    active: Option<SockId>,
    /// Out-of-order block ledger (striped sessions only): which of the
    /// stream's blocks have been certified, by any cascade.
    ledger: Option<BlockLedger>,
}

/// A verifying sink server: accepts transfers (LSL-framed or raw TCP),
/// checks the payload pattern and the trailing MD5 digest, and records a
/// [`TransferOutcome`] per stream — failed attempts included, each with
/// its typed [`TransferStatus`]. Sessions whose headers carry a
/// [`Resume`] request additionally get per-block certification: the
/// sink tracks the highest contiguously verified block across attempts
/// and grants each new attempt a resume offset at that boundary.
pub struct SinkServer {
    listener: SockId,
    node: NodeId,
    port: u16,
    expects_lsl: bool,
    conns: BTreeMap<SockId, SinkConn>,
    sessions: BTreeMap<SessionId, SessionProgress>,
    outcomes: Vec<TransferOutcome>,
    /// Idle watchdog period: a conn that moves no byte across a full
    /// interval is failed [`SessionError::Stalled`]. None = no watchdog.
    idle: Option<Dur>,
    /// Whether a watchdog timer is currently in flight (the watchdog
    /// self-re-arms only while conns exist, so idle sims still quiesce).
    timer_armed: bool,
    /// Verified blocks that appeared inside a stripe grant — must stay
    /// 0: the sink advances every grant past verified blocks, so a
    /// nonzero count means a verified block was re-sent (the striped
    /// chaos contract machine-checks this).
    stripe_regrants: u64,
}

impl SinkServer {
    pub fn new(
        net: &mut Net,
        node: NodeId,
        port: u16,
        expects_lsl: bool,
        tcp: TcpConfig,
    ) -> SinkServer {
        let listener = net.listen(node, port, tcp);
        SinkServer {
            listener,
            node,
            port,
            expects_lsl,
            conns: BTreeMap::new(),
            sessions: BTreeMap::new(),
            outcomes: Vec::new(),
            idle: None,
            timer_armed: false,
            stripe_regrants: 0,
        }
    }

    /// Arm an idle watchdog: any accepted conn that goes a full `d`
    /// without delivering a byte is failed with a typed
    /// [`SessionError::Stalled`] outcome. This is what turns a silently
    /// dying upstream (a crashed depot holds no socket to RST) into a
    /// recoverable event *after* the sender has already handed the whole
    /// stream to its sublink and can no longer watch progress itself.
    pub fn with_idle_timeout(mut self, d: Dur) -> SinkServer {
        self.idle = Some(d);
        self
    }

    /// All recorded outcomes, failed attempts included.
    pub fn outcomes(&self) -> &[TransferOutcome] {
        &self.outcomes
    }

    /// The contiguously verified block count for `session` (0 when the
    /// session is unknown or never negotiated resume).
    pub fn verified_blocks(&self, session: SessionId) -> u64 {
        self.sessions.get(&session).map_or(0, |p| p.verified)
    }

    /// Session-wide verified block count, in any order: the ledger
    /// count for striped sessions, the contiguous count otherwise.
    pub fn session_certified(&self, session: SessionId) -> u64 {
        self.sessions.get(&session).map_or(0, |p| {
            p.ledger.as_ref().map_or(p.verified, |l| l.verified_count())
        })
    }

    /// Duplicate block deliveries discarded for `session` — the cost of
    /// redundant (k-of-n) tail dispatch, which the striped campaign
    /// accounts for explicitly.
    pub fn duplicate_blocks(&self, session: SessionId) -> u64 {
        self.sessions
            .get(&session)
            .and_then(|p| p.ledger.as_ref())
            .map_or(0, |l| l.duplicates())
    }

    /// Verified blocks that ever appeared inside a stripe grant (see
    /// the field: this staying 0 *is* the zero-verified-resend
    /// guarantee).
    pub fn stripe_regrants(&self) -> u64 {
        self.stripe_regrants
    }

    pub fn take_outcomes(&mut self) -> Vec<TransferOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Feed one event; [`Handled::Consumed`] means it was this sink's.
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        if let AppEvent::Timer { node, token } = ev {
            if *node == self.node
                && token & SINK_TIMER_TAG != 0
                && (token >> 32) & 0xffff == self.port as u64
            {
                self.on_idle_tick(net);
                return Handled::Consumed;
            }
            return Handled::NotMine;
        }
        let AppEvent::Sock { sock, event } = ev else {
            return Handled::NotMine;
        };
        if *sock == self.listener {
            if let SockEvent::Accepted { conn } = event {
                let state = if self.expects_lsl {
                    SinkConnState::ReadingHeader(Vec::new())
                } else {
                    SinkConnState::Body {
                        header: None,
                        md5: Md5::new(),
                        received: 0,
                        tail: Vec::new(),
                        content_ok: true,
                        offset: 0,
                        blocks_at_start: 0,
                        stripe: None,
                    }
                };
                self.conns.insert(
                    *conn,
                    SinkConn {
                        state,
                        accepted_at: net.now(),
                        activity: 0,
                        checked: u64::MAX,
                    },
                );
                self.ensure_watchdog(net);
            }
            return Handled::Consumed;
        }
        if !self.conns.contains_key(sock) {
            return Handled::NotMine;
        }
        match event {
            SockEvent::Readable | SockEvent::PeerFin => self.drain(net, *sock),
            SockEvent::Error(e) => self.fail_conn(net, *sock, SessionError::Tcp(*e)),
            SockEvent::Closed => {
                net.release(*sock);
                if let Some(conn) = self.conns.remove(sock) {
                    self.release_session_conn(*sock, &conn.state);
                }
            }
            _ => {}
        }
        Handled::Consumed
    }

    /// Detach a finished/removed conn from its session's `active` slot,
    /// so a later resume cannot mistake a reused socket id for a live
    /// predecessor. Returns the session's verified block count.
    fn release_session_conn(&mut self, sock: SockId, state: &SinkConnState) -> u64 {
        let SinkConnState::Body {
            header: Some(h), ..
        } = state
        else {
            return 0;
        };
        if h.resume.is_none() && h.stripe.is_none() {
            return 0;
        }
        let Some(p) = self.sessions.get_mut(&h.session) else {
            return 0;
        };
        if p.active == Some(sock) {
            p.active = None;
        }
        p.ledger
            .as_ref()
            .map_or(p.verified, |l| l.contiguous_verified())
    }

    /// Arm the next watchdog tick if the watchdog is enabled and not
    /// already in flight. Called on accept and after each tick, so the
    /// timer chain dies with the last conn and the sim can quiesce.
    fn ensure_watchdog(&mut self, net: &mut Net) {
        if let Some(d) = self.idle {
            if !self.timer_armed {
                let token = SINK_TIMER_TAG | ((self.port as u64) << 32);
                net.set_app_timer(self.node, net.now() + d, token);
                self.timer_armed = true;
            }
        }
    }

    /// Watchdog tick: fail every conn that moved no byte since the last
    /// tick (freshly accepted conns get one full interval of grace).
    fn on_idle_tick(&mut self, net: &mut Net) {
        self.timer_armed = false;
        let mut stalled = Vec::new();
        for (sock, conn) in self.conns.iter_mut() {
            if conn.checked == conn.activity {
                stalled.push(*sock);
            } else {
                conn.checked = conn.activity;
            }
        }
        for sock in stalled {
            self.fail_conn(net, sock, SessionError::Stalled);
            net.abort(sock);
        }
        if !self.conns.is_empty() {
            self.ensure_watchdog(net);
        }
    }

    /// Record a failed attempt as a typed outcome and drop the
    /// connection state.
    fn fail_conn(&mut self, net: &mut Net, sock: SockId, err: SessionError) {
        let Some(conn) = self.conns.remove(&sock) else {
            return;
        };
        let verified_blocks = self.release_session_conn(sock, &conn.state);
        let (session, bytes, attempt_bytes, content_ok, resume_offset, blocks_certified, stripe) =
            match &conn.state {
                SinkConnState::ReadingHeader(_) => (None, 0, 0, true, 0, 0, None),
                SinkConnState::Body {
                    header,
                    received,
                    content_ok,
                    offset,
                    blocks_at_start,
                    stripe,
                    ..
                } => (
                    header.as_ref().map(|h| h.session),
                    offset + received,
                    *received,
                    *content_ok,
                    *offset,
                    match stripe {
                        Some(s) => s.certified,
                        None => verified_blocks.saturating_sub(*blocks_at_start),
                    },
                    stripe.as_ref().map(|s| (s.start_block, s.end_block)),
                ),
            };
        let session_verified = session.map_or(0, |sid| self.session_certified(sid));
        self.outcomes.push(TransferOutcome {
            session,
            status: TransferStatus::Failed(err),
            bytes,
            attempt_bytes,
            blocks_certified,
            stripe,
            session_verified,
            digest_ok: None,
            content_ok,
            verified_blocks,
            resume_offset,
            accepted_at: conn.accepted_at,
            completed_at: net.now(),
        });
    }

    fn drain(&mut self, net: &mut Net, sock: SockId) {
        loop {
            let chunk = net.recv(sock, 1 << 20);
            if chunk.is_empty() {
                break;
            }
            // Split-borrow the conn table and the session map: body
            // bytes flow into the per-session digest chain.
            let conns = &mut self.conns;
            let sessions = &mut self.sessions;
            let Some(conn) = conns.get_mut(&sock) else {
                return;
            };
            conn.activity += chunk.len() as u64;
            let parsed = match &mut conn.state {
                SinkConnState::ReadingHeader(buf) => {
                    buf.extend_from_slice(&chunk);
                    match LslHeader::decode(buf) {
                        Ok(None) => None,
                        Ok(Some((header, used))) => {
                            let leftover = buf.split_off(used);
                            Some(Ok((header, leftover)))
                        }
                        Err(e) => Some(Err(e)),
                    }
                }
                st @ SinkConnState::Body { .. } => {
                    Self::feed_body(st, sessions, &chunk);
                    None
                }
            };
            match parsed {
                None => {}
                Some(Ok((header, leftover))) => self.on_header(net, sock, header, &leftover),
                Some(Err(e)) => {
                    self.fail_conn(net, sock, SessionError::Wire(e));
                    net.abort(sock);
                    return;
                }
            }
        }
        // EOF: finalize.
        if net.at_eof(sock) {
            let conn = self.conns.remove(&sock).expect("present");
            net.close(sock);
            match conn.state {
                SinkConnState::Body {
                    header,
                    md5,
                    received,
                    tail,
                    content_ok,
                    offset,
                    blocks_at_start,
                    stripe,
                } => {
                    let obs_sid = header.as_ref().map(|h| h.session.0 as u64).unwrap_or(0);
                    lsl_obs::span_begin(net.now().0, "sink.verdict.drain", obs_sid);
                    // For resume sessions the end-to-end digest lives in
                    // the session chain (it spans attempts); for striped
                    // attempts in the conn's range chain; otherwise in
                    // this conn's own hasher.
                    let resumed = header.as_ref().is_some_and(|h| h.resume.is_some());
                    let mut verified_blocks = 0;
                    let mut session_verified = 0;
                    let mut blocks_certified = 0;
                    let mut stripe_range = None;
                    let mut whole: Option<[u8; DIGEST_LEN]> = None;
                    // The truncation check compares against what *this*
                    // attempt was to deliver: the whole stream normally,
                    // the granted range for a striped attempt.
                    let mut declared = header.as_ref().map(|h| h.length).filter(|&l| l != u64::MAX);
                    if let Some(mut sb) = stripe {
                        let h = header.as_ref().expect("stripe state implies header");
                        let total = h.length;
                        let range_end = (sb.end_block * RESUME_BLOCK).min(total);
                        declared = Some(range_end.saturating_sub(offset));
                        whole = Some(sb.chain.whole_digest());
                        if let Some(p) = self.sessions.get_mut(&h.session) {
                            // The stream's final block may be short:
                            // close and certify the trailing partial.
                            sb.chain.finish_partial();
                            if let Some(l) = p.ledger.as_mut() {
                                Self::certify_stripe_blocks(&mut sb, l, total, obs_sid);
                                verified_blocks = l.contiguous_verified();
                                session_verified = l.verified_count();
                            }
                        }
                        blocks_certified = sb.certified;
                        stripe_range = Some((sb.start_block, sb.end_block));
                    } else if resumed {
                        if let Some(p) = header
                            .as_ref()
                            .and_then(|h| self.sessions.get_mut(&h.session))
                        {
                            if p.active == Some(sock) {
                                p.active = None;
                            }
                            verified_blocks = p.verified;
                            session_verified = p.verified;
                            whole = Some(p.chain.whole_digest());
                        }
                        blocks_certified = verified_blocks.saturating_sub(blocks_at_start);
                    }
                    let bytes = offset + received;
                    let digest_ok = match &header {
                        Some(h) if h.has_digest() => {
                            // The final 16 bytes are the digest; they were
                            // kept out of the hashers by feed_body.
                            let d = whole.unwrap_or_else(|| md5.finalize());
                            Some(tail.len() == 16 && d[..] == tail[..])
                        }
                        _ => None,
                    };
                    // Most-specific failure first: a short stream explains
                    // a bad digest, a bad digest trumps a content scan.
                    let delivered = if stripe_range.is_some() {
                        received
                    } else {
                        bytes
                    };
                    let status = if declared.is_some_and(|l| delivered < l) {
                        TransferStatus::Failed(SessionError::TruncatedStream)
                    } else if digest_ok == Some(false) {
                        TransferStatus::Failed(SessionError::DigestMismatch)
                    } else if !content_ok {
                        TransferStatus::Failed(SessionError::ContentMismatch)
                    } else {
                        TransferStatus::Complete
                    };
                    let verdict_ok = matches!(status, TransferStatus::Complete);
                    self.outcomes.push(TransferOutcome {
                        session: header.as_ref().map(|h| h.session),
                        status,
                        bytes,
                        attempt_bytes: received,
                        blocks_certified,
                        stripe: stripe_range,
                        session_verified,
                        digest_ok,
                        content_ok,
                        verified_blocks,
                        resume_offset: offset,
                        accepted_at: conn.accepted_at,
                        completed_at: net.now(),
                    });
                    lsl_obs::gauge_set("sink.verified_blocks", obs_sid, verified_blocks);
                    lsl_obs::counter_add(
                        if verdict_ok {
                            "sink.verdict.complete"
                        } else {
                            "sink.verdict.failed"
                        },
                        0,
                        1,
                    );
                    lsl_obs::span_end(net.now().0, "sink.verdict.drain", obs_sid);
                }
                SinkConnState::ReadingHeader(_) => {
                    // EOF mid-header.
                    self.outcomes.push(TransferOutcome {
                        session: None,
                        status: TransferStatus::Failed(SessionError::Wire(
                            WireError::TruncatedHeader,
                        )),
                        bytes: 0,
                        attempt_bytes: 0,
                        blocks_certified: 0,
                        stripe: None,
                        session_verified: 0,
                        digest_ok: None,
                        content_ok: true,
                        verified_blocks: 0,
                        resume_offset: 0,
                        accepted_at: conn.accepted_at,
                        completed_at: net.now(),
                    });
                }
            }
        }
    }

    /// Check every newly completed chain block of a striped range
    /// against its reference digest and certify matches in the session
    /// ledger (duplicates are counted and discarded). A mismatch
    /// freezes certification for this connection.
    fn certify_stripe_blocks(sb: &mut StripeBody, ledger: &mut BlockLedger, total: u64, sid: u64) {
        while !sb.corrupt && sb.scanned < sb.chain.completed() {
            let abs = sb.start_block + sb.scanned;
            if sb.chain.digest_of(sb.scanned) == Some(expected_block_digest_bounded(abs, total)) {
                if ledger.certify(abs) {
                    sb.certified += 1;
                } else {
                    lsl_obs::counter_add("sink.stripe.dup_block", sid, 1);
                }
                sb.scanned += 1;
            } else {
                sb.corrupt = true;
            }
        }
    }

    /// A complete header arrived on `sock`: confirm the session back
    /// through the cascade (granting a resume offset when requested) and
    /// switch the conn to body consumption.
    fn on_header(&mut self, net: &mut Net, sock: SockId, header: LslHeader, leftover: &[u8]) {
        assert!(
            header.route.is_empty(),
            "sink received header with residual route"
        );
        let mut offset = 0u64;
        let mut blocks_at_start = 0u64;
        let mut stripe_body = None;
        if let Some(req) = header.stripe {
            // A striped cascade: grant the sub-range of the request the
            // session still needs. Unlike resume, many striped conns
            // feed one session concurrently — no supersede, no `active`.
            assert!(
                header.length != u64::MAX,
                "striped sessions must declare a stream length"
            );
            let total_blocks = stream_blocks(header.length);
            let progress = self
                .sessions
                .entry(header.session)
                .or_insert_with(|| SessionProgress {
                    chain: DigestChain::new(RESUME_BLOCK),
                    verified: 0,
                    corrupt: false,
                    active: None,
                    ledger: None,
                });
            let ledger = progress
                .ledger
                .get_or_insert_with(|| BlockLedger::new(total_blocks));
            let gend = req.end_block.min(total_blocks);
            // Advance the grant past blocks some cascade already
            // delivered: verified blocks are never re-sent.
            let gstart = ledger.skip_verified(req.start_block.min(gend)).min(gend);
            let granted_verified = (gend - gstart) - ledger.missing_in(gstart, gend);
            if granted_verified > 0 {
                // Should be structurally impossible; recorded so the
                // striped chaos contract can machine-check it per seed.
                self.stripe_regrants += granted_verified;
                lsl_obs::counter_add(
                    "sink.stripe.regrant_verified",
                    header.session.0 as u64,
                    granted_verified,
                );
            }
            offset = gstart * RESUME_BLOCK;
            stripe_body = Some(Box::new(StripeBody {
                start_block: gstart,
                end_block: gend,
                chain: DigestChain::new(RESUME_BLOCK),
                scanned: 0,
                certified: 0,
                corrupt: false,
            }));
            // Grant: confirm byte + the granted block range.
            let mut reply = Vec::with_capacity(17);
            reply.push(SESSION_CONFIRM);
            reply.extend_from_slice(&gstart.to_be_bytes());
            reply.extend_from_slice(&gend.to_be_bytes());
            let n = net.send(sock, &Bytes::from(reply));
            debug_assert_eq!(n, 17);
        } else if header.resume.is_some() {
            // A new attempt supersedes any lingering conn of the same
            // session (e.g. one whose death the sink has not noticed).
            if let Some(stale) = self
                .sessions
                .get(&header.session)
                .and_then(|p| p.active)
                .filter(|&s| s != sock)
            {
                self.fail_conn(net, stale, SessionError::Stalled);
                net.abort(stale);
            }
            let progress = self
                .sessions
                .entry(header.session)
                .or_insert_with(|| SessionProgress {
                    chain: DigestChain::new(RESUME_BLOCK),
                    verified: 0,
                    corrupt: false,
                    active: None,
                    ledger: None,
                });
            // Roll the chain back to the verified boundary: unverified
            // blocks and partial bytes from a dead (or corrupt) attempt
            // are junk the new attempt will resend.
            progress.chain.truncate_to(progress.verified);
            progress.corrupt = false;
            progress.active = Some(sock);
            blocks_at_start = progress.verified;
            offset = progress.verified * RESUME_BLOCK;
            // Grant: confirm byte + the offset this attempt streams from.
            let mut reply = Vec::with_capacity(9);
            reply.push(SESSION_CONFIRM);
            reply.extend_from_slice(&offset.to_be_bytes());
            let n = net.send(sock, &Bytes::from(reply));
            debug_assert_eq!(n, 9);
        } else {
            // Plain v1 confirmation — bit-identical to the pre-resume
            // handshake.
            let n = net.send(sock, &Bytes::from_static(&[SESSION_CONFIRM]));
            debug_assert_eq!(n, 1);
        }
        let mut st = SinkConnState::Body {
            header: Some(Box::new(header)),
            md5: Md5::new(),
            received: 0,
            tail: Vec::new(),
            content_ok: true,
            offset,
            blocks_at_start,
            stripe: stripe_body,
        };
        Self::feed_body(&mut st, &mut self.sessions, leftover);
        if let Some(conn) = self.conns.get_mut(&sock) {
            conn.state = st;
        }
    }

    /// Append payload bytes, maintaining the 16-byte digest tail window
    /// when a digest is expected. Resume sessions hash into the
    /// session's [`DigestChain`] (which certifies completed blocks);
    /// everything else into the conn's own whole-stream hasher.
    fn feed_body(
        state: &mut SinkConnState,
        sessions: &mut BTreeMap<SessionId, SessionProgress>,
        data: &[u8],
    ) {
        let SinkConnState::Body {
            header,
            md5,
            received,
            tail,
            content_ok,
            offset,
            blocks_at_start: _,
            stripe,
        } = state
        else {
            unreachable!("feed_body on header state");
        };
        let digest_expected = header.as_ref().is_some_and(|h| h.has_digest());
        let into = match (stripe.as_mut(), header.as_ref()) {
            (Some(sb), Some(h)) => {
                let ledger = sessions
                    .get_mut(&h.session)
                    .and_then(|p| p.ledger.as_mut())
                    .expect("striped conn without a session ledger");
                AbsorbInto::Stripe {
                    sb,
                    ledger,
                    total: h.length,
                    sid: h.session.0 as u64,
                }
            }
            _ => match header
                .as_ref()
                .filter(|h| h.resume.is_some())
                .and_then(|h| sessions.get_mut(&h.session))
            {
                Some(p) => AbsorbInto::Resume(p),
                None => AbsorbInto::Plain(md5),
            },
        };
        if !digest_expected {
            Self::absorb(data, *offset, received, content_ok, into);
            return;
        }
        // Keep a sliding 16-byte tail: everything before it is payload.
        tail.extend_from_slice(data);
        if tail.len() > 16 {
            let payload_len = tail.len() - 16;
            // Split so the drained prefix can be absorbed in place.
            let payload: Vec<u8> = tail.drain(..payload_len).collect();
            Self::absorb(&payload, *offset, received, content_ok, into);
        }
    }

    /// Absorb verified-position payload bytes: pattern-check, hash, and
    /// (for resume/striped sessions) advance the certified blocks.
    fn absorb(
        payload: &[u8],
        offset: u64,
        received: &mut u64,
        content_ok: &mut bool,
        into: AbsorbInto<'_>,
    ) {
        if *content_ok {
            for (i, &b) in payload.iter().enumerate() {
                if b != payload_byte(offset + *received + i as u64) {
                    *content_ok = false;
                    break;
                }
            }
        }
        match into {
            AbsorbInto::Plain(md5) => md5.update(payload),
            AbsorbInto::Resume(p) => {
                p.chain.update(payload);
                // Certify newly completed blocks against the pattern; a
                // mismatch freezes the boundary until the block is
                // resent (the next attempt truncates the chain back).
                while !p.corrupt && p.verified < p.chain.completed() {
                    if p.chain.digest_of(p.verified) == Some(expected_block_digest(p.verified)) {
                        p.verified += 1;
                    } else {
                        p.corrupt = true;
                    }
                }
            }
            AbsorbInto::Stripe {
                sb,
                ledger,
                total,
                sid,
            } => {
                sb.chain.update(payload);
                Self::certify_stripe_blocks(sb, ledger, total, sid);
            }
        }
        *received += payload.len() as u64;
    }
}

/// Where [`SinkServer::absorb`] routes a conn's payload bytes: the
/// conn's own whole-stream hasher (plain transfers), the session's
/// in-order digest chain (v2 resume), or the conn's range chain plus
/// the session block ledger (v3 stripes).
enum AbsorbInto<'a> {
    Plain(&'a mut Md5),
    Resume(&'a mut SessionProgress),
    Stripe {
        sb: &'a mut StripeBody,
        ledger: &'a mut BlockLedger,
        total: u64,
        sid: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_pattern_is_deterministic_and_nontrivial() {
        assert_eq!(payload_byte(0), payload_byte(0));
        let c = payload_chunk(100, 50);
        assert_eq!(c.len(), 50);
        assert_eq!(c[0], payload_byte(100));
        // Not constant.
        assert!(c.iter().any(|&b| b != c[0]));
    }

    #[test]
    fn payload_chunk_is_offset_consistent() {
        let a = payload_chunk(0, 100);
        let b = payload_chunk(50, 50);
        assert_eq!(&a[50..], &b[..]);
    }
}
