//! Depot/path selection from forecast sublink characteristics.
//!
//! "LSL clients and depots are assumed to have network performance
//! information available from a system such as the Network Weather
//! Service, in order to make decisions about paths" (§III). This module
//! turns per-sublink forecasts into a ranked choice among candidate
//! cascades using the analytic models in [`crate::model`].

use crate::model::{CascadeModel, TcpPathModel};
use crate::route::LslPath;

/// A candidate path plus the forecast characteristics of each of its
/// sublinks (one entry per TCP connection the session would use).
#[derive(Clone, Debug)]
pub struct Candidate {
    pub path: LslPath,
    pub sublinks: Vec<TcpPathModel>,
}

impl Candidate {
    pub fn new(path: LslPath, sublinks: Vec<TcpPathModel>) -> Candidate {
        assert_eq!(
            sublinks.len(),
            path.num_sublinks(),
            "one forecast per sublink required"
        );
        Candidate { path, sublinks }
    }

    /// Predicted wall-clock time for a transfer of `size` bytes.
    pub fn predicted_time(&self, size: u64, init_cwnd: u64) -> f64 {
        if self.sublinks.len() == 1 {
            // Direct TCP: handshake + stream, no framing/depot overheads.
            let m = &self.sublinks[0];
            m.handshake_time() + m.transfer_time(size, init_cwnd)
        } else {
            CascadeModel::new(self.sublinks.clone()).transfer_time(size, init_cwnd)
        }
    }
}

/// A scored candidate as returned by [`rank_paths`].
#[derive(Clone, Debug)]
pub struct RankedPath {
    pub path: LslPath,
    pub predicted_time: f64,
    pub predicted_bps: f64,
}

/// Rank candidate paths for a transfer of `size` bytes, fastest first.
pub fn rank_paths(candidates: &[Candidate], size: u64, init_cwnd: u64) -> Vec<RankedPath> {
    let mut ranked: Vec<RankedPath> = candidates
        .iter()
        .map(|c| {
            let t = c.predicted_time(size, init_cwnd);
            RankedPath {
                path: c.path.clone(),
                predicted_time: t,
                predicted_bps: size as f64 * 8.0 / t,
            }
        })
        .collect();
    ranked.sort_by(|a, b| a.predicted_time.total_cmp(&b.predicted_time));
    ranked
}

/// Convenience: the single best path, or `None` on an empty candidate
/// set.
pub fn select_best(candidates: &[Candidate], size: u64, init_cwnd: u64) -> Option<RankedPath> {
    rank_paths(candidates, size, init_cwnd).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Hop;
    use lsl_netsim::NodeId;

    const INIT_CWND: u64 = 2 * 1460;

    fn hop(n: u32) -> Hop {
        Hop::new(NodeId(n), 7000)
    }

    fn candidates() -> Vec<Candidate> {
        let direct = Candidate::new(
            LslPath::direct(hop(9)),
            vec![TcpPathModel::new(0.06, 622e6, 1e-4)],
        );
        // The depot detour costs a little extra RTT (Fig 3/4's pattern).
        let via_depot = Candidate::new(
            LslPath::via(vec![hop(5)], hop(9)),
            vec![
                TcpPathModel::new(0.035, 622e6, 1e-4),
                TcpPathModel::new(0.035, 622e6, 1e-4),
            ],
        );
        vec![direct, via_depot]
    }

    #[test]
    fn large_transfers_prefer_the_cascade() {
        let best = select_best(&candidates(), 64 << 20, INIT_CWND).unwrap();
        assert_eq!(best.path.num_sublinks(), 2, "64MB should go via the depot");
    }

    #[test]
    fn small_transfers_prefer_direct() {
        let best = select_best(&candidates(), 16 << 10, INIT_CWND).unwrap();
        assert_eq!(best.path.num_sublinks(), 1, "16KB should go direct");
    }

    #[test]
    fn ranking_is_sorted() {
        let ranked = rank_paths(&candidates(), 8 << 20, INIT_CWND);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].predicted_time <= ranked[1].predicted_time);
        assert!(ranked[0].predicted_bps >= ranked[1].predicted_bps);
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert!(select_best(&[], 1 << 20, INIT_CWND).is_none());
    }

    #[test]
    #[should_panic(expected = "one forecast per sublink")]
    fn mismatched_forecast_count_rejected() {
        Candidate::new(
            LslPath::via(vec![hop(5)], hop(9)),
            vec![TcpPathModel::new(0.03, 1e6, 0.0)],
        );
    }
}
