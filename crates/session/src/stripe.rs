//! RAIL-style striped multi-cascade sessions.
//!
//! One session opens up to N depot cascades *concurrently* — the
//! top-ranked [`RoutePlan`] candidates — and schedules the stream's
//! [`crate::RESUME_BLOCK`]-sized blocks across them. Each cascade carries version-3
//! headers ([`StripeReq`]): it offers a block range, the sink grants the
//! sub-range it still needs (advancing past blocks some other cascade
//! already certified), and the cascade streams exactly the granted
//! range, trailed by an MD5 over those bytes only. The sink certifies
//! blocks out of order through its [`lsl_digest::BlockLedger`], so
//! stripe arrival order is irrelevant to end-to-end verification.
//!
//! Scheduling is work-stealing over per-lane chunk queues: the stream is
//! first partitioned into contiguous macro-stripes sized by the
//! candidates' forecast scores (a faster forecast gets more blocks),
//! each split into [`StripeConfig::chunk_blocks`]-sized chunks. A lane
//! that drains its own queue steals from the back of the longest
//! surviving queue, so observed throughput — not the forecast — decides
//! the final distribution. When every queue is dry, an idle lane may
//! *redundantly* re-request a chunk still in flight on a slower lane
//! (k-of-n tail dispatch, budgeted by [`StripeConfig::redundant_tail`]);
//! the sink discards duplicate certifications, counting them.
//!
//! Cascade death re-stripes: a lane that exhausts its reconnect backoff
//! ladder fails over to an unused candidate route, and when none is
//! left, dies — its unverified in-flight blocks go back on the dispatch
//! queue ([`SessionEvent::StripeLost`]) and surviving cascades pick them
//! up ([`SessionEvent::StripeRebalanced`]). Because the sink's grant
//! always skips verified blocks, a kill mid-transfer can only ever cause
//! *in-flight* blocks to be resent — never certified ones.
//!
//! With one cascade the wrapper delegates to [`SessionClient`]
//! wholesale, so degraded striping is byte-identical to the
//! single-cascade client.

use std::collections::VecDeque;

use lsl_netsim::{NodeId, Time};
use lsl_tcp::{AppEvent, Net, TcpConfig};

use crate::client::{ClientState, RecoveryConfig, SessionClient};
use crate::endpoint::{stream_blocks, BulkSender, SendMode, SenderState, TransferOutcome};
use crate::error::{Handled, SessionError, SessionEvent};
use crate::header::StripeReq;
use crate::id::SessionId;
use crate::plan::RoutePlan;
use crate::route::LslPath;
use crate::score::rank_candidates;

/// App-timer tokens with this bit (and bits 63..60 clear) belong to a
/// striped session's lanes. Bit 63 is the net layer's discriminator,
/// 62 the [`SessionClient`], 61 the sink, 60 the forecast plane.
pub const STRIPE_TIMER_TAG: u64 = 1 << 59;

/// Striping policy knobs. Recovery (backoff ladder, watchdog,
/// retransfer budget) is per *lane*, reusing [`RecoveryConfig`].
#[derive(Clone, Debug)]
pub struct StripeConfig {
    /// Cascades opened concurrently (clamped to the plan's candidate
    /// count). 1 degrades to the plain [`SessionClient`].
    pub max_cascades: usize,
    /// Dispatch quantum: blocks per chunk a lane requests at a time.
    pub chunk_blocks: u64,
    /// Redundant tail attempts allowed per session (k-of-n dispatch of
    /// chunks already in flight elsewhere). 0 disables redundancy.
    pub redundant_tail: u32,
    /// Per-lane recovery policy (reconnect backoff, progress watchdog,
    /// retransfer budget). `direct_fallback` appends a depot-free
    /// candidate lanes may fail over to, exactly as for the single
    /// client.
    pub recovery: RecoveryConfig,
}

impl Default for StripeConfig {
    fn default() -> StripeConfig {
        StripeConfig {
            max_cascades: 2,
            chunk_blocks: 16,
            redundant_tail: 2,
            recovery: RecoveryConfig::default(),
        }
    }
}

/// Per-lane dispatch statistics, for experiment reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneStat {
    /// Candidate index the lane currently (or last) used.
    pub route: usize,
    /// Blocks dispatched on this lane (including re-dispatches).
    pub blocks_dispatched: u64,
    /// Blocks this lane stole from other lanes' queues.
    pub blocks_stolen: u64,
    /// Redundant (k-of-n) attempts this lane initiated.
    pub redundant_attempts: u64,
    /// The lane died (routes exhausted) and its work was re-striped.
    pub dead: bool,
}

/// A session striped over N concurrent cascades, or — when N is 1 — the
/// plain single-cascade [`SessionClient`], verbatim.
pub struct StripedSession {
    inner: StripedInner,
}

enum StripedInner {
    Single(Box<SessionClient>),
    Striped(Box<StripedClient>),
}

impl StripedSession {
    /// Begin the session over `min(cfg.max_cascades, plan.len())`
    /// cascades. Always LSL sync+digest mode: striping (like resume) is
    /// meaningless without block certification.
    ///
    /// # Panics
    ///
    /// On a zero `max_cascades` or `chunk_blocks`, or more than 15
    /// cascades (the lane field of the timer token is 4 bits).
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring SessionClient::start
    pub fn start(
        net: &mut Net,
        node: NodeId,
        plan: RoutePlan,
        session: SessionId,
        total: u64,
        tcp: TcpConfig,
        cfg: StripeConfig,
        trace_label: Option<&str>,
    ) -> StripedSession {
        assert!(
            cfg.max_cascades >= 1,
            "a session needs at least one cascade"
        );
        assert!(
            cfg.max_cascades <= 15,
            "timer tokens carry a 4-bit lane index"
        );
        assert!(cfg.chunk_blocks >= 1, "chunks must hold at least one block");
        let lanes = cfg.max_cascades.min(plan.len());
        // A single-block stream cannot stripe either; fall through to
        // the plain client so tiny transfers behave identically.
        let inner = if lanes <= 1 || stream_blocks(total) < 2 {
            StripedInner::Single(Box::new(SessionClient::start(
                net,
                node,
                plan,
                session,
                total,
                SendMode::lsl(),
                tcp,
                cfg.recovery,
                trace_label,
            )))
        } else {
            StripedInner::Striped(Box::new(StripedClient::start(
                net,
                node,
                plan,
                session,
                total,
                tcp,
                cfg,
                trace_label,
            )))
        };
        StripedSession { inner }
    }

    pub fn session(&self) -> SessionId {
        match &self.inner {
            StripedInner::Single(c) => c.session(),
            StripedInner::Striped(c) => c.session,
        }
    }

    pub fn state(&self) -> ClientState {
        match &self.inner {
            StripedInner::Single(c) => c.state(),
            StripedInner::Striped(c) => c.state,
        }
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state(), ClientState::Done | ClientState::Failed(_))
    }

    /// Number of cascades the session striped over (1 = degraded to the
    /// single-cascade client).
    pub fn cascades(&self) -> usize {
        match &self.inner {
            StripedInner::Single(_) => 1,
            StripedInner::Striped(c) => c.lanes.len(),
        }
    }

    /// Per-lane dispatch statistics (empty for the degraded single).
    pub fn lane_stats(&self) -> Vec<LaneStat> {
        match &self.inner {
            StripedInner::Single(_) => Vec::new(),
            StripedInner::Striped(c) => c
                .lanes
                .iter()
                .map(|l| LaneStat {
                    route: l.route_idx,
                    blocks_dispatched: l.dispatched,
                    blocks_stolen: l.stolen,
                    redundant_attempts: l.redundant,
                    dead: l.state == LaneState::Dead,
                })
                .collect(),
        }
    }

    /// The timestamped lifecycle so far.
    pub fn events(&self) -> &[(Time, SessionEvent)] {
        match &self.inner {
            StripedInner::Single(c) => c.events(),
            StripedInner::Striped(c) => &c.events,
        }
    }

    pub fn take_events(&mut self) -> Vec<(Time, SessionEvent)> {
        match &mut self.inner {
            StripedInner::Single(c) => c.take_events(),
            StripedInner::Striped(c) => std::mem::take(&mut c.events),
        }
    }

    pub fn started_at(&self) -> Time {
        match &self.inner {
            StripedInner::Single(c) => c.started_at,
            StripedInner::Striped(c) => c.started_at,
        }
    }

    pub fn finished_at(&self) -> Option<Time> {
        match &self.inner {
            StripedInner::Single(c) => c.finished_at,
            StripedInner::Striped(c) => c.finished_at,
        }
    }

    /// Feed one event; [`Handled::Consumed`] means it belonged to one
    /// of this session's lanes (or the delegated single client).
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        match &mut self.inner {
            StripedInner::Single(c) => c.handle(net, ev),
            StripedInner::Striped(c) => c.handle(net, ev),
        }
    }

    /// The harness observed a sink outcome for this session.
    pub fn on_outcome(&mut self, net: &mut Net, outcome: &TransferOutcome) {
        match &mut self.inner {
            StripedInner::Single(c) => c.on_outcome(net, outcome),
            StripedInner::Striped(c) => c.on_outcome(net, outcome),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LaneState {
    /// No chunk in hand (queues dry, redundancy budget spent).
    Idle,
    /// An attempt is in flight.
    Running,
    /// Backing off before re-attempting the in-flight chunk.
    Backoff,
    /// Routes exhausted; work re-striped onto survivors.
    Dead,
}

/// A dispatchable block range. `lost_at` is set when the chunk was
/// requeued off a dead lane — the rebalance-latency clock.
struct Chunk {
    start: u64,
    end: u64,
    lost_at: Option<Time>,
}

impl Chunk {
    fn blocks(&self) -> u64 {
        self.end - self.start
    }
}

/// One cascade of a striped session: a route, the chunk it is carrying,
/// and its private share of the dispatch queue.
struct Lane {
    route_idx: usize,
    state: LaneState,
    sender: Option<BulkSender>,
    /// The chunk in flight (kept across reconnects of the same lane: the
    /// re-attempt re-requests it and the sink's grant skips whatever
    /// certified before the failure).
    chunk: Option<Chunk>,
    queue: VecDeque<Chunk>,
    reconnects: u32,
    retransfers: u32,
    last_progress: u64,
    timer_gen: u64,
    dispatched: u64,
    stolen: u64,
    redundant: u64,
}

/// The N-cascade dispatcher behind [`StripedSession`].
struct StripedClient {
    node: NodeId,
    session: SessionId,
    total: u64,
    total_blocks: u64,
    tcp: TcpConfig,
    trace_label: Option<String>,
    plan: RoutePlan,
    cfg: StripeConfig,
    lanes: Vec<Lane>,
    /// Per-candidate: currently driven by some lane.
    assigned: Vec<bool>,
    /// Per-candidate: spent by some lane's recovery ladder.
    dead_routes: Vec<bool>,
    /// Sink-reported session-wide verified block count (monotone).
    verified: u64,
    redundant_left: u32,
    established: bool,
    confirmed: bool,
    state: ClientState,
    events: Vec<(Time, SessionEvent)>,
    started_at: Time,
    finished_at: Option<Time>,
}

impl StripedClient {
    #[allow(clippy::too_many_arguments)] // constructor mirroring StripedSession::start
    fn start(
        net: &mut Net,
        node: NodeId,
        plan: RoutePlan,
        session: SessionId,
        total: u64,
        tcp: TcpConfig,
        cfg: StripeConfig,
        trace_label: Option<&str>,
    ) -> StripedClient {
        let mut plan = plan;
        if cfg.recovery.direct_fallback && !plan.has_depot_free() {
            let _ = plan.push_failover(LslPath::direct(plan.dst()));
        }
        let total_blocks = stream_blocks(total);
        // Lanes ride the top-ranked candidates; macro-stripes sized by
        // forecast score (unscored plans split evenly).
        let scores: Vec<Option<u64>> = plan.candidates().iter().map(|c| c.score).collect();
        let ranked = rank_candidates(&scores);
        let n = cfg.max_cascades.min(ranked.len());
        let routes: Vec<usize> = ranked[..n].to_vec();
        let weights = lane_weights(&routes.iter().map(|&i| scores[i]).collect::<Vec<_>>());
        let stripes = partition(total_blocks, &weights);
        let mut assigned = vec![false; plan.len()];
        let lanes: Vec<Lane> = routes
            .iter()
            .zip(&stripes)
            .map(|(&route_idx, &(a, b))| {
                assigned[route_idx] = true;
                Lane {
                    route_idx,
                    state: LaneState::Idle,
                    sender: None,
                    chunk: None,
                    queue: chop(a, b, cfg.chunk_blocks),
                    reconnects: 0,
                    retransfers: 0,
                    last_progress: 0,
                    timer_gen: 0,
                    dispatched: 0,
                    stolen: 0,
                    redundant: 0,
                }
            })
            .collect();
        let mut client = StripedClient {
            node,
            session,
            total,
            total_blocks,
            tcp,
            trace_label: trace_label.map(str::to_owned),
            dead_routes: vec![false; plan.len()],
            plan,
            redundant_left: cfg.redundant_tail,
            cfg,
            lanes,
            assigned,
            verified: 0,
            established: false,
            confirmed: false,
            state: ClientState::Running,
            events: Vec::new(),
            started_at: net.now(),
            finished_at: None,
        };
        lsl_obs::span_begin(net.now().0, "session.striped", session.0 as u64);
        client.pump_idle(net);
        client
    }

    fn is_done(&self) -> bool {
        matches!(self.state, ClientState::Done | ClientState::Failed(_))
    }

    fn push_event(&mut self, net: &Net, ev: SessionEvent) {
        self.obs_event(net.now(), &ev);
        self.events.push((net.now(), ev));
    }

    fn obs_event(&self, t: Time, ev: &SessionEvent) {
        let sid = self.session.0 as u64;
        match ev {
            SessionEvent::StripeLost { cascade, .. } => {
                lsl_obs::instant(t.0, "session.stripe.lost", *cascade as u64);
            }
            SessionEvent::StripeRebalanced { to, .. } => {
                lsl_obs::instant(t.0, "session.stripe.rebalance", *to as u64);
            }
            SessionEvent::Completed => {
                lsl_obs::instant(t.0, "session.completed", sid);
                lsl_obs::span_end(t.0, "session.striped", sid);
            }
            SessionEvent::Failed(_) => {
                lsl_obs::instant(t.0, "session.failed", sid);
                lsl_obs::span_end(t.0, "session.striped", sid);
            }
            _ => {}
        }
    }

    /// Timer token: stripe tag, 23 bits of session id, 4 bits of lane,
    /// 32 bits of per-lane generation.
    fn lane_token(&self, lane: usize, gen: u64) -> u64 {
        let sid = (self.session.0 as u64) & 0x007f_ffff;
        STRIPE_TIMER_TAG | (sid << 36) | ((lane as u64 & 0xf) << 32) | (gen & 0xffff_ffff)
    }

    fn arm_lane_timer(&mut self, net: &mut Net, lane: usize, delay: lsl_netsim::Dur) {
        self.lanes[lane].timer_gen += 1;
        let token = self.lane_token(lane, self.lanes[lane].timer_gen);
        net.set_app_timer(self.node, net.now() + delay, token);
    }

    /// Give every idle lane a chunk (initial kick, post-completion, and
    /// post-rebalance).
    fn pump_idle(&mut self, net: &mut Net) {
        for i in 0..self.lanes.len() {
            if self.lanes[i].state == LaneState::Idle && self.lanes[i].sender.is_none() {
                self.dispatch(net, i);
            }
        }
    }

    /// Hand lane `i` its next chunk: own queue first, then steal from
    /// the back of the longest surviving queue, then (tail only) a
    /// redundant re-request of a chunk in flight elsewhere.
    fn dispatch(&mut self, net: &mut Net, i: usize) {
        if self.is_done() || self.lanes[i].state == LaneState::Dead {
            return;
        }
        if self.lanes[i].chunk.is_none() {
            let mut chunk = self.lanes[i].queue.pop_front();
            if chunk.is_none() {
                // Work-stealing: the longest queue loses its tail chunk.
                let victim = (0..self.lanes.len())
                    .filter(|&j| j != i && !self.lanes[j].queue.is_empty())
                    .max_by_key(|&j| (self.lanes[j].queue.len(), usize::MAX - j));
                if let Some(j) = victim {
                    chunk = self.lanes[j].queue.pop_back();
                    if let Some(c) = &chunk {
                        self.lanes[i].stolen += c.blocks();
                        lsl_obs::counter_add("stripe.blocks_stolen", i as u64, c.blocks());
                    }
                }
            }
            if chunk.is_none() && self.redundant_left > 0 {
                // k-of-n tail: double up on a chunk a slower lane is
                // still carrying. The sink discards the duplicates.
                let target = (0..self.lanes.len())
                    .filter(|&j| j != i && self.lanes[j].state != LaneState::Dead)
                    .find(|&j| self.lanes[j].chunk.is_some());
                if let Some(j) = target {
                    if let Some(c) = &self.lanes[j].chunk {
                        chunk = Some(Chunk {
                            start: c.start,
                            end: c.end,
                            lost_at: None,
                        });
                        self.redundant_left -= 1;
                        self.lanes[i].redundant += 1;
                        lsl_obs::counter_add("stripe.redundant_dispatch", i as u64, 1);
                    }
                }
            }
            let Some(mut c) = chunk else {
                self.lanes[i].state = LaneState::Idle;
                return;
            };
            if let Some(lost) = c.lost_at.take() {
                // This chunk came off a dead cascade: it is now safely
                // re-striped; record how long the blocks sat orphaned.
                let blocks = c.blocks();
                lsl_obs::hist_observe("session.stripe.rebalance_ns", (net.now() - lost).0);
                self.push_event(net, SessionEvent::StripeRebalanced { to: i, blocks });
            }
            self.lanes[i].dispatched += c.blocks();
            lsl_obs::counter_add("stripe.blocks_dispatched", i as u64, c.blocks());
            self.lanes[i].chunk = Some(c);
        }
        self.start_attempt(net, i);
    }

    /// Open a cascade for lane `i`'s in-flight chunk.
    fn start_attempt(&mut self, net: &mut Net, i: usize) {
        let Some(c) = self.lanes[i].chunk.as_ref() else {
            return;
        };
        let req = StripeReq {
            start_block: c.start,
            end_block: c.end,
        };
        let path = self.plan.candidates()[self.lanes[i].route_idx].path.clone();
        let sender = BulkSender::start_stripe(
            net,
            self.node,
            &path,
            self.session,
            self.total,
            self.tcp.clone(),
            self.trace_label.as_deref(),
            req,
        );
        self.lanes[i].last_progress = sender.progress();
        self.lanes[i].sender = Some(sender);
        self.lanes[i].state = LaneState::Running;
        if let Some(d) = self.cfg.recovery.progress_timeout {
            self.arm_lane_timer(net, i, d);
        }
    }

    fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        if let AppEvent::Timer { node, token } = ev {
            let mine = *node == self.node
                && token >> 60 == 0
                && token & STRIPE_TIMER_TAG != 0
                && (token >> 36) & 0x007f_ffff == (self.session.0 as u64) & 0x007f_ffff;
            if !mine {
                return Handled::NotMine;
            }
            let lane = ((token >> 32) & 0xf) as usize;
            let gen = token & 0xffff_ffff;
            if lane < self.lanes.len() {
                self.on_lane_timer(net, lane, gen);
            }
            return Handled::Consumed;
        }
        let mut hit = None;
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            if let Some(s) = lane.sender.as_mut() {
                let before = s.state();
                if s.handle(net, ev).consumed() {
                    hit = Some((i, before, s.state()));
                    break;
                }
            }
        }
        let Some((i, before, after)) = hit else {
            return Handled::NotMine;
        };
        if before != after {
            if before == SenderState::Connecting
                && matches!(after, SenderState::AwaitingConfirm | SenderState::Streaming)
                && !self.established
            {
                self.established = true;
                self.push_event(net, SessionEvent::Established);
            }
            match after {
                SenderState::Failed(err) => self.on_lane_failed(net, i, err),
                SenderState::Streaming | SenderState::Done
                    if before == SenderState::AwaitingConfirm && !self.confirmed =>
                {
                    self.confirmed = true;
                    self.push_event(net, SessionEvent::Confirmed);
                }
                _ => {}
            }
        }
        Handled::Consumed
    }

    fn on_lane_timer(&mut self, net: &mut Net, i: usize, gen: u64) {
        if self.is_done() || gen != self.lanes[i].timer_gen & 0xffff_ffff {
            return; // stale generation
        }
        match self.lanes[i].state {
            LaneState::Backoff => self.start_attempt(net, i),
            LaneState::Running => {
                let Some(sender) = self.lanes[i].sender.as_ref() else {
                    return;
                };
                if sender.is_done() {
                    return; // outcome pending at the sink
                }
                let progress = sender.progress();
                if progress == self.lanes[i].last_progress {
                    self.on_lane_failed(net, i, SessionError::Stalled);
                } else {
                    self.lanes[i].last_progress = progress;
                    if let Some(d) = self.cfg.recovery.progress_timeout {
                        self.arm_lane_timer(net, i, d);
                    }
                }
            }
            LaneState::Idle | LaneState::Dead => {}
        }
    }

    /// Lane `i`'s attempt died: reconnect with backoff, fail over to an
    /// unused candidate, or die and re-stripe.
    fn on_lane_failed(&mut self, net: &mut Net, i: usize, err: SessionError) {
        self.push_event(net, SessionEvent::SublinkDown(err));
        if let Some(s) = self.lanes[i].sender.take() {
            net.abort(s.sock());
        }
        if self.lanes[i].reconnects < self.cfg.recovery.max_reconnects {
            self.lanes[i].reconnects += 1;
            let exp = self.lanes[i].reconnects.saturating_sub(1).min(16);
            let delay =
                (self.cfg.recovery.backoff_base * 2u64.pow(exp)).min(self.cfg.recovery.backoff_cap);
            self.push_event(
                net,
                SessionEvent::Reconnecting {
                    attempt: self.lanes[i].reconnects,
                    delay,
                },
            );
            self.lanes[i].state = LaneState::Backoff;
            self.arm_lane_timer(net, i, delay);
            return;
        }
        // Route spent: fail over to the best unassigned survivor.
        self.dead_routes[self.lanes[i].route_idx] = true;
        self.assigned[self.lanes[i].route_idx] = false;
        if let Some(next) = self.next_free_route() {
            self.assigned[next] = true;
            self.lanes[i].route_idx = next;
            self.lanes[i].reconnects = 0;
            if self.plan.candidates()[next].path.depots.is_empty() {
                self.push_event(net, SessionEvent::Degraded);
            } else {
                self.push_event(net, SessionEvent::FailedOver { route: next });
            }
            self.start_attempt(net, i);
            return;
        }
        self.kill_lane(net, i);
    }

    /// The best candidate no lane is using and no ladder has spent,
    /// forecast rank order.
    fn next_free_route(&self) -> Option<usize> {
        let scores: Vec<Option<u64>> = self.plan.candidates().iter().map(|c| c.score).collect();
        rank_candidates(&scores)
            .into_iter()
            .find(|&i| !self.dead_routes[i] && !self.assigned[i])
    }

    /// Lane `i` is out of routes: mark it dead, requeue its unverified
    /// blocks onto survivors, and kick idle survivors so the re-striped
    /// work starts moving immediately.
    fn kill_lane(&mut self, net: &mut Net, i: usize) {
        let now = net.now();
        self.lanes[i].state = LaneState::Dead;
        let mut orphans: Vec<Chunk> = Vec::new();
        if let Some(mut c) = self.lanes[i].chunk.take() {
            c.lost_at = Some(now);
            orphans.push(c);
        }
        for mut c in self.lanes[i].queue.drain(..) {
            c.lost_at = Some(now);
            orphans.push(c);
        }
        let blocks: u64 = orphans.iter().map(Chunk::blocks).sum();
        self.push_event(net, SessionEvent::StripeLost { cascade: i, blocks });
        let survivors: Vec<usize> = (0..self.lanes.len())
            .filter(|&j| self.lanes[j].state != LaneState::Dead)
            .collect();
        if survivors.is_empty() {
            self.fail(net, SessionError::RoutesExhausted);
            return;
        }
        // Round-robin the orphans across survivors; stealing evens out
        // any imbalance this leaves.
        for (k, c) in orphans.into_iter().enumerate() {
            self.lanes[survivors[k % survivors.len()]]
                .queue
                .push_back(c);
        }
        self.pump_idle(net);
    }

    fn fail(&mut self, net: &mut Net, err: SessionError) {
        self.push_event(net, SessionEvent::Failed(err));
        self.state = ClientState::Failed(err);
        self.finished_at.get_or_insert(net.now());
        self.teardown(net);
    }

    fn complete(&mut self, net: &mut Net) {
        self.push_event(net, SessionEvent::Completed);
        self.state = ClientState::Done;
        self.finished_at.get_or_insert(net.now());
        self.teardown(net);
    }

    /// Abort every outstanding attempt (redundant stragglers included)
    /// and void all timers.
    fn teardown(&mut self, net: &mut Net) {
        for lane in &mut self.lanes {
            if let Some(s) = lane.sender.take() {
                net.abort(s.sock());
            }
            lane.timer_gen += 1;
        }
    }

    fn on_outcome(&mut self, net: &mut Net, outcome: &TransferOutcome) {
        if self.is_done() {
            return;
        }
        debug_assert!(
            outcome.session.is_none() || outcome.session == Some(self.session),
            "outcome routed to the wrong client"
        );
        // Every outcome — even a failed straggler's — reports the
        // session-wide certified count; fold it in first.
        self.verified = self.verified.max(outcome.session_verified);
        if self.verified >= self.total_blocks {
            self.complete(net);
            return;
        }
        // Attribute the outcome to the lane whose finished attempt
        // carried this granted range. Unmatched outcomes (attempts we
        // already aborted) only contribute the fold above.
        let Some(range) = outcome.stripe else {
            return;
        };
        let Some(i) = self.lanes.iter().position(|l| {
            l.sender.as_ref().is_some_and(|s| {
                s.state() == SenderState::Done && s.stripe_granted() == Some(range)
            })
        }) else {
            return;
        };
        if outcome.ok() {
            // Chunk delivered and certified: release it, pull the next.
            if let Some(s) = self.lanes[i].sender.take() {
                net.abort(s.sock());
            }
            self.lanes[i].chunk = None;
            self.lanes[i].reconnects = 0;
            self.lanes[i].state = LaneState::Idle;
            self.dispatch(net, i);
        } else if self.lanes[i].retransfers < self.cfg.recovery.max_retransfers {
            // Completed-but-unverified (digest/content/truncation):
            // burn a lane retransfer and re-request the same chunk —
            // the grant narrows past whatever did certify.
            self.lanes[i].retransfers += 1;
            self.push_event(
                net,
                SessionEvent::Retransfer {
                    attempt: self.lanes[i].retransfers,
                },
            );
            if let Some(s) = self.lanes[i].sender.take() {
                net.abort(s.sock());
            }
            self.start_attempt(net, i);
        } else {
            self.fail(net, SessionError::RetransfersExhausted);
        }
    }
}

/// Relative lane weights from forecast scores (predicted transfer time,
/// lower = faster = more blocks). Any unscored candidate makes the
/// split even — a static plan has no basis for asymmetry.
fn lane_weights(scores: &[Option<u64>]) -> Vec<u64> {
    let Some(all) = scores.iter().copied().collect::<Option<Vec<u64>>>() else {
        return vec![1; scores.len()];
    };
    let max = all.iter().copied().max().unwrap_or(1).max(1);
    all.iter()
        .map(|&s| ((max as u128 * 16 / s.max(1) as u128).min(1 << 20) as u64).max(1))
        .collect()
}

/// Contiguous macro-stripes over `[0, total_blocks)` proportional to
/// `weights` (remainders land on earlier lanes; every range is kept in
/// bounds and non-overlapping; later lanes may be empty when the stream
/// is short).
fn partition(total_blocks: u64, weights: &[u64]) -> Vec<(u64, u64)> {
    let sum: u128 = weights.iter().map(|&w| w as u128).sum::<u128>().max(1);
    let mut out = Vec::with_capacity(weights.len());
    let mut at = 0u64;
    let mut acc = 0u128;
    for (i, &w) in weights.iter().enumerate() {
        acc += w as u128;
        let end = if i == weights.len() - 1 {
            total_blocks
        } else {
            ((total_blocks as u128 * acc / sum) as u64).clamp(at, total_blocks)
        };
        out.push((at, end));
        at = end;
    }
    out
}

/// Split macro-stripe `[a, b)` into dispatch chunks of `chunk_blocks`.
fn chop(a: u64, b: u64, chunk_blocks: u64) -> VecDeque<Chunk> {
    let mut q = VecDeque::new();
    let mut at = a;
    while at < b {
        let end = (at + chunk_blocks).min(b);
        q.push_back(Chunk {
            start: at,
            end,
            lost_at: None,
        });
        at = end;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::CLIENT_TIMER_TAG;

    #[test]
    fn partition_covers_stream_in_order() {
        for (total, weights) in [
            (100u64, vec![1u64, 1]),
            (7, vec![3, 1]),
            (1000, vec![16, 8, 1]),
            (2, vec![1, 1, 1, 1]),
        ] {
            let p = partition(total, &weights);
            assert_eq!(p.len(), weights.len());
            assert_eq!(p[0].0, 0);
            assert_eq!(p.last().unwrap().1, total);
            for w in p.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous, non-overlapping");
            }
            for &(a, b) in &p {
                assert!(a <= b);
            }
        }
    }

    #[test]
    fn partition_is_weight_proportional() {
        let p = partition(100, &[3, 1]);
        assert_eq!(p, vec![(0, 75), (75, 100)]);
    }

    #[test]
    fn lane_weights_prefer_fast_forecasts() {
        // Lower score = faster route = heavier weight.
        let w = lane_weights(&[Some(100), Some(400)]);
        assert!(w[0] > w[1], "faster lane gets more blocks: {w:?}");
        // Any unscored candidate forces an even split.
        assert_eq!(lane_weights(&[Some(100), None]), vec![1, 1]);
        assert_eq!(lane_weights(&[None, None, None]), vec![1, 1, 1]);
    }

    #[test]
    fn chop_produces_chunk_quanta() {
        let q = chop(10, 45, 16);
        let ranges: Vec<(u64, u64)> = q.iter().map(|c| (c.start, c.end)).collect();
        assert_eq!(ranges, vec![(10, 26), (26, 42), (42, 45)]);
        assert!(chop(5, 5, 16).is_empty());
    }

    #[test]
    fn stripe_timer_tokens_never_look_like_client_tokens() {
        // A stripe token must never set the client tag bit, and the
        // stripe filter (bits 63..60 clear + bit 59 set) must reject
        // every client token, whatever session id bits it carries.
        let stripe_token = |sid: u64, lane: u64, gen: u64| {
            STRIPE_TIMER_TAG | ((sid & 0x007f_ffff) << 36) | ((lane & 0xf) << 32) | gen
        };
        let t = stripe_token(0x7f_ffff, 15, 0xffff_ffff);
        assert_eq!(t & CLIENT_TIMER_TAG, 0);
        assert_eq!(t >> 60, 0);
        // Client token whose 30-bit session field sets bit 59.
        let clientish = CLIENT_TIMER_TAG | (0x3fff_ffffu64 << 32) | 7;
        assert!(clientish >> 60 != 0, "client tokens carry bit 62");
    }
}
