//! 128-bit session identifiers.
//!
//! The paper (§III): "The session is described by a 128-bit session
//! identifier" — the sending and receiving ports need not exist at the
//! same time, so the identifier, not the transport 4-tuple, names the
//! conversation.

use std::fmt;

use rand::Rng;

/// A 128-bit session identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u128);

impl SessionId {
    /// Draw a fresh identifier from the caller's RNG (deterministic
    /// experiments pass a seeded generator).
    pub fn generate<R: Rng>(rng: &mut R) -> SessionId {
        SessionId(rng.random())
    }

    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    pub fn from_bytes(b: [u8; 16]) -> SessionId {
        SessionId(u128::from_be_bytes(b))
    }
}

impl fmt::Debug for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SessionId({:032x})", self.0)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_bytes() {
        let id = SessionId(0x0123456789abcdef_fedcba9876543210);
        assert_eq!(SessionId::from_bytes(id.to_bytes()), id);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        assert_eq!(SessionId::generate(&mut r1), SessionId::generate(&mut r2));
    }

    #[test]
    fn generate_distinct_ids() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = SessionId::generate(&mut rng);
        let b = SessionId::generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_32_hex_chars() {
        let id = SessionId(0xff);
        let s = id.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.ends_with("ff"));
    }
}
