//! Session-layer recovery: reconnect, failover, retransfer, degrade.
//!
//! The paper's session layer gives the *endpoints* responsibility for
//! end-to-end correctness (the depots hold only small, volatile relay
//! buffers). [`SessionClient`] is that endpoint logic: it owns a
//! [`BulkSender`] attempt and, when the attempt dies, decides — in
//! order — whether to
//!
//! 1. **reconnect** over the same route with capped exponential backoff,
//! 2. **fail over** to the next candidate depot route (as ranked by
//!    [`crate::path`]),
//! 3. **degrade** to a direct TCP path when every depot route is gone,
//! 4. give up with a typed [`SessionError`].
//!
//! Verified delivery failures (digest/content mismatch, truncation)
//! reported by the sink trigger a bounded **retransfer**. With
//! [`RecoveryConfig::resume`] on (the default), retransfer and failover
//! attempts do *not* restart from byte 0: each new attempt carries a
//! [`Resume`] request and streams from the offset the sink grants — the
//! last contiguously verified [`RESUME_BLOCK`] boundary — so only
//! unverified bytes are resent. Every decision is recorded as a
//! timestamped [`SessionEvent`], which experiments export as a recovery
//! timeline.
//!
//! Detection does not rely on TCP alone: an idle-but-dead sublink (a
//! depot host that crashed while the sender awaited the session
//! confirmation) produces no segments and thus no RTO, so a progress
//! watchdog declares the attempt [`SessionError::Stalled`] when no byte
//! moves for a full timeout window.

use lsl_netsim::{Dur, NodeId, Time};
use lsl_tcp::{AppEvent, Net};

use crate::endpoint::{BulkSender, SendMode, SenderState, TransferOutcome, RESUME_BLOCK};
use crate::error::{Handled, SessionError, SessionEvent};
use crate::header::{Resume, NO_VERIFIED_BLOCK};
use crate::id::SessionId;
use crate::plan::RoutePlan;
use crate::route::LslPath;
use crate::score::rank_candidates;

/// App-timer tokens with this bit belong to a [`SessionClient`], not to
/// a depot that happens to share the node. (Bit 63 is the net-layer
/// app-timer discriminator; bit 62 is ours.)
pub const CLIENT_TIMER_TAG: u64 = 1 << 62;

/// Proactive-reroute hysteresis: the live route's forecast score must be
/// at least this many times worse than the best alternative before the
/// client abandons a working sublink mid-stream. A reroute costs a fresh
/// cascade setup, so a marginal forecast edge must not cause flapping.
const REROUTE_HYSTERESIS: u64 = 2;

/// Recovery policy knobs.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Reconnection attempts per route before failing over.
    pub max_reconnects: u32,
    /// First reconnect delay; doubles per attempt.
    pub backoff_base: Dur,
    /// Ceiling for the backoff doubling.
    pub backoff_cap: Dur,
    /// Progress watchdog: declare the attempt stalled when no byte is
    /// accepted by the socket for this long. `None` disables it (then
    /// only TCP errors trigger recovery).
    pub progress_timeout: Option<Dur>,
    /// Retransfers allowed after failed delivery checks. With
    /// [`RecoveryConfig::resume`] on, each retransfer resumes from the
    /// last sink-verified block rather than resending the whole stream.
    pub max_retransfers: u32,
    /// Append a direct (depot-free) path as the route of last resort
    /// when the candidate list has none.
    pub direct_fallback: bool,
    /// Negotiate mid-stream resume: every attempt carries a [`Resume`]
    /// request (version-2 header) and streams from the offset the sink
    /// grants. Requires the full-verification send mode
    /// (`SendMode::Lsl { digest: true, sync: true }`); silently inert
    /// for any other mode.
    pub resume: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_reconnects: 2,
            backoff_base: Dur::from_millis(100),
            backoff_cap: Dur::from_secs(5),
            progress_timeout: Some(Dur::from_secs(3)),
            max_retransfers: 2,
            direct_fallback: true,
            resume: true,
        }
    }
}

impl RecoveryConfig {
    /// Validated construction; see [`RecoveryConfigBuilder`].
    pub fn builder() -> RecoveryConfigBuilder {
        RecoveryConfigBuilder {
            cfg: RecoveryConfig::default(),
        }
    }
}

/// Builder for [`RecoveryConfig`] that rejects nonsensical policies at
/// construction time instead of letting them produce a client that can
/// never recover (or whose backoff ladder is inverted).
#[derive(Clone, Debug)]
pub struct RecoveryConfigBuilder {
    cfg: RecoveryConfig,
}

impl RecoveryConfigBuilder {
    pub fn max_reconnects(mut self, n: u32) -> Self {
        self.cfg.max_reconnects = n;
        self
    }

    pub fn backoff_base(mut self, d: Dur) -> Self {
        self.cfg.backoff_base = d;
        self
    }

    pub fn backoff_cap(mut self, d: Dur) -> Self {
        self.cfg.backoff_cap = d;
        self
    }

    pub fn progress_timeout(mut self, d: Option<Dur>) -> Self {
        self.cfg.progress_timeout = d;
        self
    }

    pub fn max_retransfers(mut self, n: u32) -> Self {
        self.cfg.max_retransfers = n;
        self
    }

    pub fn direct_fallback(mut self, on: bool) -> Self {
        self.cfg.direct_fallback = on;
        self
    }

    pub fn resume(mut self, on: bool) -> Self {
        self.cfg.resume = on;
        self
    }

    /// Validate and produce the config.
    ///
    /// # Panics
    ///
    /// On policies that cannot work: a backoff base above the cap (the
    /// ladder would *shrink* on the first doubling, violating the
    /// monotone-backoff contract), or zero reconnects combined with
    /// `direct_fallback: false` (a client whose only route dies would
    /// have no recovery arm left at all).
    pub fn build(self) -> RecoveryConfig {
        assert!(
            self.cfg.backoff_base <= self.cfg.backoff_cap,
            "backoff_base exceeds backoff_cap: the backoff ladder must be monotone"
        );
        assert!(
            self.cfg.max_reconnects > 0 || self.cfg.direct_fallback,
            "max_reconnects of 0 with direct_fallback off leaves no recovery arm"
        );
        self.cfg
    }
}

/// Where the client is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientState {
    /// An attempt is in flight (or its outcome is awaited).
    Running,
    /// Backing off before the next reconnect.
    Backoff,
    /// The sink verified a complete delivery.
    Done,
    /// Recovery exhausted its options.
    Failed(SessionError),
}

/// A recovering session endpoint: drives [`BulkSender`] attempts across
/// a ranked list of candidate routes until the sink verifies delivery
/// or the [`RecoveryConfig`] budgets run out.
pub struct SessionClient {
    node: NodeId,
    session: SessionId,
    total: u64,
    mode: SendMode,
    tcp: lsl_tcp::TcpConfig,
    trace_label: Option<String>,
    plan: RoutePlan,
    route_idx: usize,
    /// Candidates spent by the recovery ladder (reconnect budget
    /// exhausted); never offered again.
    dead: Vec<bool>,
    cfg: RecoveryConfig,
    sender: Option<BulkSender>,
    state: ClientState,
    /// Reconnect attempts burned on the current route.
    reconnects: u32,
    retransfers: u32,
    /// Progress snapshot at the last watchdog check.
    last_progress: u64,
    /// Highest sink-verified block count this client has learned of
    /// (from delivery verdicts and resume grants) — the floor every new
    /// attempt's [`Resume`] request advertises.
    verified_floor: u64,
    /// Timer generation; a fired token with a stale generation is void.
    timer_gen: u64,
    events: Vec<(Time, SessionEvent)>,
    /// Attempt ordinal across the whole client lifetime: the id of the
    /// `session.attempt` / `session.sublink.establish` obs spans.
    attempt_seq: u64,
    /// Whether the current attempt reached `Established` (closes the
    /// establish span exactly once).
    attempt_established: bool,
    /// Sim time of the first unrecovered `SublinkDown`, for the
    /// `session.recovery_ns` fault-recovery-latency histogram.
    down_since: Option<Time>,
    /// Highest absolute stream offset any attempt reached; a resume
    /// grant below it means the gap is resent
    /// (`session.bytes_resent_after_resume`).
    high_offset: u64,
    pub started_at: Time,
    pub finished_at: Option<Time>,
}

impl SessionClient {
    /// Begin the session: connect the first attempt over the best route.
    ///
    /// `plan` is the validated candidate set (see [`RoutePlan`]); the
    /// client starts on the best-ranked candidate — forecast score
    /// ascending when scores are present, plan order otherwise. With
    /// [`RecoveryConfig::direct_fallback`] set and no depot-free
    /// candidate present, a direct path is appended as the last resort.
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring BulkSender::start
    pub fn start(
        net: &mut Net,
        node: NodeId,
        plan: RoutePlan,
        session: SessionId,
        total: u64,
        mode: SendMode,
        tcp: lsl_tcp::TcpConfig,
        recovery: RecoveryConfig,
        trace_label: Option<&str>,
    ) -> SessionClient {
        let mut plan = plan;
        if recovery.direct_fallback && !plan.has_depot_free() {
            // A direct path to the plan's own destination always
            // validates, so the Result carries no information here.
            let _ = plan.push_failover(LslPath::direct(plan.dst()));
        }
        let dead = vec![false; plan.len()];
        let mut client = SessionClient {
            node,
            session,
            total,
            mode,
            tcp,
            trace_label: trace_label.map(str::to_owned),
            plan,
            route_idx: 0,
            dead,
            cfg: recovery,
            sender: None,
            state: ClientState::Running,
            reconnects: 0,
            retransfers: 0,
            last_progress: 0,
            verified_floor: 0,
            timer_gen: 0,
            events: Vec::new(),
            attempt_seq: 0,
            attempt_established: false,
            down_since: None,
            high_offset: 0,
            started_at: net.now(),
            finished_at: None,
        };
        // Forecast-best start: with scored candidates the ranking picks
        // the lowest predicted transfer time; unscored (static) plans
        // keep plan order, so pre-forecast behavior is unchanged.
        client.route_idx = client.next_route().unwrap_or(0);
        lsl_obs::span_begin(net.now().0, "session.client", session.0 as u64);
        client.start_attempt(net);
        client
    }

    pub fn session(&self) -> SessionId {
        self.session
    }

    pub fn state(&self) -> ClientState {
        self.state
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state, ClientState::Done | ClientState::Failed(_))
    }

    /// The route currently (or last) in use, as an index into the
    /// candidate list passed to [`SessionClient::start`].
    pub fn route_index(&self) -> usize {
        self.route_idx
    }

    /// The validated candidate set, including any appended direct
    /// fallback and the latest forecast scores.
    pub fn plan(&self) -> &RoutePlan {
        &self.plan
    }

    /// The path currently (or last) in use.
    pub fn current_path(&self) -> &LslPath {
        &self.plan.candidates()[self.route_idx].path
    }

    /// The active sublink socket, if an attempt is in flight — lets a
    /// measurement plane piggyback passive RTT observations off live
    /// session traffic.
    pub fn sock(&self) -> Option<lsl_tcp::SockId> {
        self.sender.as_ref().map(BulkSender::sock)
    }

    /// Bytes the active attempt has pushed into its socket so far (for
    /// passive goodput estimation); `None` between attempts.
    pub fn attempt_progress(&self) -> Option<u64> {
        self.sender.as_ref().map(BulkSender::progress)
    }

    /// The timestamped lifecycle so far.
    pub fn events(&self) -> &[(Time, SessionEvent)] {
        &self.events
    }

    pub fn take_events(&mut self) -> Vec<(Time, SessionEvent)> {
        std::mem::take(&mut self.events)
    }

    fn push_event(&mut self, net: &Net, ev: SessionEvent) {
        self.obs_event(net.now(), &ev);
        self.events.push((net.now(), ev));
    }

    /// Mirror a lifecycle event into the observability plane: recovery
    /// arms become instants, establishment closes the per-attempt
    /// establish span, and recovery latency feeds a histogram.
    fn obs_event(&mut self, t: Time, ev: &SessionEvent) {
        let sid = self.session.0 as u64;
        match ev {
            SessionEvent::Established => {
                if !self.attempt_established {
                    self.attempt_established = true;
                    lsl_obs::span_end(t.0, "session.sublink.establish", self.attempt_seq);
                }
                if let Some(down) = self.down_since.take() {
                    lsl_obs::hist_observe("session.recovery_ns", (t - down).0);
                }
            }
            SessionEvent::Confirmed => lsl_obs::instant(t.0, "session.confirmed", sid),
            SessionEvent::SublinkDown(_) => {
                lsl_obs::instant(t.0, "session.sublink.down", sid);
                self.down_since.get_or_insert(t);
            }
            SessionEvent::Reconnecting { attempt, .. } => {
                lsl_obs::instant(t.0, "session.reconnect", *attempt as u64);
            }
            SessionEvent::FailedOver { route } => {
                lsl_obs::instant(t.0, "session.failover", *route as u64);
            }
            SessionEvent::Rerouted { to, .. } => {
                lsl_obs::instant(t.0, "session.reroute", *to as u64);
            }
            SessionEvent::Degraded => {
                lsl_obs::instant(t.0, "session.degrade", self.route_idx as u64);
            }
            SessionEvent::Retransfer { attempt } => {
                lsl_obs::instant(t.0, "session.retransfer", *attempt as u64);
            }
            SessionEvent::Resumed { from_block, offset } => {
                lsl_obs::instant(t.0, "session.resume", *from_block);
                lsl_obs::gauge_set("session.resume_offset", sid, *offset);
                lsl_obs::counter_add(
                    "session.bytes_resent_after_resume",
                    0,
                    self.high_offset.saturating_sub(*offset),
                );
            }
            SessionEvent::StripeLost { cascade, .. } => {
                lsl_obs::instant(t.0, "session.stripe.lost", *cascade as u64);
            }
            SessionEvent::StripeRebalanced { to, .. } => {
                lsl_obs::instant(t.0, "session.stripe.rebalance", *to as u64);
            }
            SessionEvent::Completed => {
                lsl_obs::instant(t.0, "session.completed", sid);
                lsl_obs::span_end(t.0, "session.client", sid);
            }
            SessionEvent::Failed(_) => {
                lsl_obs::instant(t.0, "session.failed", sid);
                lsl_obs::span_end(t.0, "session.client", sid);
            }
        }
    }

    /// Timer token: tag bit, 30 bits of session id (so concurrent
    /// clients on one node ignore each other's timers), 32 bits of
    /// generation.
    fn timer_token(&self, gen: u64) -> u64 {
        let sid = (self.session.0 as u64) & 0x3fff_ffff;
        CLIENT_TIMER_TAG | (sid << 32) | (gen & 0xffff_ffff)
    }

    fn arm_timer(&mut self, net: &mut Net, delay: Dur) {
        self.timer_gen += 1;
        let token = self.timer_token(self.timer_gen);
        net.set_app_timer(self.node, net.now() + delay, token);
    }

    /// The [`Resume`] request the next attempt should carry: the highest
    /// verified boundary this client knows of. Advisory — the sink's own
    /// verified state decides the actual grant. `None` when resume is
    /// off or the send mode cannot support it.
    fn resume_request(&self) -> Option<Resume> {
        if !self.cfg.resume {
            return None;
        }
        let SendMode::Lsl {
            digest: true,
            sync: true,
        } = self.mode
        else {
            return None;
        };
        Some(Resume {
            offset: self.verified_floor * RESUME_BLOCK,
            verified_block: match self.verified_floor {
                0 => NO_VERIFIED_BLOCK,
                n => n - 1,
            },
        })
    }

    /// Fold a resume grant or delivery verdict into the verified floor
    /// (monotone: the sink never un-verifies a block).
    fn observe_verified(&mut self, blocks: u64) {
        self.verified_floor = self.verified_floor.max(blocks);
    }

    fn start_attempt(&mut self, net: &mut Net) {
        self.attempt_seq += 1;
        self.attempt_established = false;
        lsl_obs::span_begin(net.now().0, "session.attempt", self.attempt_seq);
        lsl_obs::span_begin(net.now().0, "session.sublink.establish", self.attempt_seq);
        let path = self.current_path().clone();
        let sender = BulkSender::start(
            net,
            self.node,
            &path,
            self.session,
            self.total,
            self.mode,
            self.tcp.clone(),
            self.trace_label.as_deref(),
            self.resume_request(),
        );
        self.last_progress = sender.progress();
        self.sender = Some(sender);
        self.state = ClientState::Running;
        if let Some(d) = self.cfg.progress_timeout {
            self.arm_timer(net, d);
        }
    }

    /// Drop the current attempt's socket (already failed or finished),
    /// keeping any resume grant it learned: a grant is the sink
    /// attesting that many blocks were already verified.
    fn discard_sender(&mut self, net: &mut Net) {
        if let Some(s) = self.sender.take() {
            if let Some(granted) = s.resume_granted() {
                self.observe_verified(granted / RESUME_BLOCK);
            }
            self.high_offset = self.high_offset.max(s.stream_offset());
            net.abort(s.sock());
            if !self.attempt_established {
                // Attempt died while connecting: close the establish
                // span so the trace pairs up.
                self.attempt_established = true;
                lsl_obs::span_end(net.now().0, "session.sublink.establish", self.attempt_seq);
            }
            lsl_obs::span_end(net.now().0, "session.attempt", self.attempt_seq);
        }
    }

    /// The current attempt died with `err`: reconnect, fail over,
    /// degrade, or give up.
    fn on_attempt_failed(&mut self, net: &mut Net, err: SessionError) {
        self.push_event(net, SessionEvent::SublinkDown(err));
        self.discard_sender(net);
        if self.reconnects < self.cfg.max_reconnects {
            self.reconnects += 1;
            let exp = self.reconnects.saturating_sub(1).min(16);
            let delay = (self.cfg.backoff_base * 2u64.pow(exp)).min(self.cfg.backoff_cap);
            self.push_event(
                net,
                SessionEvent::Reconnecting {
                    attempt: self.reconnects,
                    delay,
                },
            );
            self.state = ClientState::Backoff;
            self.arm_timer(net, delay);
            return;
        }
        // This route is spent: fail over to the best surviving
        // candidate — forecast score ascending when scores are present,
        // plan order otherwise (which is exactly the old next-in-list
        // ladder for static plans).
        self.dead[self.route_idx] = true;
        if let Some(next) = self.next_route() {
            self.route_idx = next;
            self.reconnects = 0;
            if self.current_path().depots.is_empty() {
                self.push_event(net, SessionEvent::Degraded);
            } else {
                self.push_event(
                    net,
                    SessionEvent::FailedOver {
                        route: self.route_idx,
                    },
                );
            }
            self.start_attempt(net);
            return;
        }
        self.fail(net, SessionError::RoutesExhausted);
    }

    /// The best candidate the ladder may use next: lowest forecast
    /// score first (ties and unscored candidates by plan order),
    /// skipping spent routes. `None` when every candidate is spent.
    fn next_route(&self) -> Option<usize> {
        let scores: Vec<Option<u64>> = self.plan.candidates().iter().map(|c| c.score).collect();
        rank_candidates(&scores)
            .into_iter()
            .find(|&i| !self.dead[i])
    }

    /// The best *scored*, non-spent alternative to the current route.
    fn best_alternative(&self) -> Option<(usize, u64)> {
        let scores: Vec<Option<u64>> = self.plan.candidates().iter().map(|c| c.score).collect();
        rank_candidates(&scores)
            .into_iter()
            .filter(|&i| i != self.route_idx && !self.dead[i])
            .find_map(|i| scores[i].map(|s| (i, s)))
    }

    /// Feed fresh forecast scores (index-aligned with
    /// [`SessionClient::plan`]; `None` = the forecaster has no usable
    /// prediction for that candidate), then consider a proactive
    /// re-route: when the live route's forecast has degraded to at
    /// least [`REROUTE_HYSTERESIS`]× the best alternative's predicted
    /// time — or vanished entirely — the client abandons the working
    /// sublink *before* it fails, resuming on the new route via the
    /// sink's block grant. Static sessions never call this, so their
    /// timelines are untouched.
    ///
    /// A `Some` score also *revives* a candidate the ladder had written
    /// off: a spent route the sensors now see healthy (its outage
    /// repaired) goes back into the failover rotation, where a blind
    /// ladder would have exhausted its list.
    pub fn update_scores(&mut self, net: &mut Net, scores: &[Option<u64>]) {
        for (i, s) in scores.iter().enumerate() {
            self.plan.set_score(i, *s);
            if s.is_some() {
                self.dead[i] = false;
            }
        }
        if self.state != ClientState::Running {
            return;
        }
        let Some(sender) = self.sender.as_ref() else {
            return;
        };
        if sender.is_done() {
            return; // outcome pending at the sink; too late to reroute
        }
        let Some((to, alt_score)) = self.best_alternative() else {
            return;
        };
        let cur = self.plan.candidates()[self.route_idx].score;
        let degraded = match cur {
            // The forecaster dropped the live route entirely (e.g. the
            // probe plane sees its sublink down).
            None => true,
            Some(c) => c >= alt_score.saturating_mul(REROUTE_HYSTERESIS),
        };
        if !degraded {
            return;
        }
        let from = self.route_idx;
        self.push_event(net, SessionEvent::Rerouted { from, to });
        self.discard_sender(net);
        self.route_idx = to;
        self.reconnects = 0;
        self.start_attempt(net);
    }

    fn fail(&mut self, net: &mut Net, err: SessionError) {
        if self.sender.is_some() {
            // Terminal failure with the attempt still in hand (e.g.
            // retransfers exhausted): close its spans here — the sender
            // is never discarded after this point.
            if !self.attempt_established {
                self.attempt_established = true;
                lsl_obs::span_end(net.now().0, "session.sublink.establish", self.attempt_seq);
            }
            lsl_obs::span_end(net.now().0, "session.attempt", self.attempt_seq);
        }
        self.push_event(net, SessionEvent::Failed(err));
        self.state = ClientState::Failed(err);
        self.finished_at.get_or_insert(net.now());
        self.timer_gen += 1; // void outstanding timers
    }

    /// Feed one event; [`Handled::Consumed`] means it was this client's
    /// (its watchdog/retry timer or its active sublink socket).
    pub fn handle(&mut self, net: &mut Net, ev: &AppEvent) -> Handled {
        if let AppEvent::Timer { node, token } = ev {
            if *node == self.node
                && token & CLIENT_TIMER_TAG != 0
                && token & (0x3fff_ffff << 32) == self.timer_token(0) & (0x3fff_ffff << 32)
            {
                self.on_timer(net, *token);
                return Handled::Consumed;
            }
            return Handled::NotMine;
        }
        let Some(sender) = self.sender.as_mut() else {
            return Handled::NotMine;
        };
        let before = sender.state();
        if !sender.handle(net, ev).consumed() {
            return Handled::NotMine;
        }
        let after = sender.state();
        if before != after {
            match after {
                SenderState::AwaitingConfirm | SenderState::Streaming
                    if before == SenderState::Connecting =>
                {
                    self.push_event(net, SessionEvent::Established);
                }
                SenderState::Streaming if before == SenderState::AwaitingConfirm => {
                    self.push_event(net, SessionEvent::Confirmed);
                    // A non-zero grant means this attempt skips the
                    // verified prefix: surface the resume decision.
                    let granted = self.sender.as_ref().and_then(BulkSender::resume_granted);
                    if let Some(offset) = granted.filter(|&g| g > 0) {
                        self.observe_verified(offset / RESUME_BLOCK);
                        self.push_event(
                            net,
                            SessionEvent::Resumed {
                                from_block: offset / RESUME_BLOCK,
                                offset,
                            },
                        );
                    }
                }
                SenderState::Failed(err) => self.on_attempt_failed(net, err),
                _ => {}
            }
        }
        Handled::Consumed
    }

    fn on_timer(&mut self, net: &mut Net, token: u64) {
        if token & 0xffff_ffff != self.timer_gen & 0xffff_ffff || self.is_done() {
            return; // stale generation
        }
        match self.state {
            ClientState::Backoff => {
                // Backoff elapsed. Before reconnecting over the same
                // route, re-score the survivors: if the forecast now
                // ranks another candidate strictly better than the one
                // that just dropped us, reconnect *there* instead.
                // Unscored (static) plans have no scored alternative,
                // so they always stay put.
                if let Some((to, alt_score)) = self.best_alternative() {
                    let cur = self.plan.candidates()[self.route_idx].score;
                    if cur.is_none_or(|c| c > alt_score) {
                        let from = self.route_idx;
                        self.push_event(net, SessionEvent::Rerouted { from, to });
                        self.route_idx = to;
                        self.reconnects = 0;
                    }
                }
                self.start_attempt(net);
            }
            ClientState::Running => {
                // Watchdog tick: stalled unless some byte moved.
                let Some(sender) = self.sender.as_ref() else {
                    return;
                };
                if sender.is_done() {
                    return; // outcome pending at the sink; nothing to watch
                }
                let progress = sender.progress();
                if progress == self.last_progress {
                    self.on_attempt_failed(net, SessionError::Stalled);
                } else {
                    self.last_progress = progress;
                    if let Some(d) = self.cfg.progress_timeout {
                        self.arm_timer(net, d);
                    }
                }
            }
            ClientState::Done | ClientState::Failed(_) => {}
        }
    }

    /// The harness observed a sink outcome for this session: verified
    /// delivery finishes the client; a failed delivery burns one
    /// retransfer and resends the stream over the current route.
    pub fn on_outcome(&mut self, net: &mut Net, outcome: &TransferOutcome) {
        if self.is_done() {
            return;
        }
        debug_assert!(
            outcome.session.is_none() || outcome.session == Some(self.session),
            "outcome routed to the wrong client"
        );
        // The verdict's verified count feeds the next attempt's resume
        // request (fold it in before any retransfer starts below).
        self.observe_verified(outcome.verified_blocks);
        if outcome.ok() {
            self.push_event(net, SessionEvent::Completed);
            self.state = ClientState::Done;
            self.finished_at.get_or_insert(net.now());
            self.timer_gen += 1;
            self.discard_sender(net);
            return;
        }
        // The *sink* rejected the stream (digest/content/truncation).
        // If our sender also already knows it failed, the sublink error
        // path owns recovery; only a completed-but-unverified attempt
        // triggers a retransfer here.
        // If the sublink instead died mid-stream, the sender's own
        // failure handling (or its watchdog) drives the reconnect — the
        // sink outcome is just the other half of the same event.
        if let Some(SenderState::Done) = self.sender.as_ref().map(BulkSender::state) {
            if self.retransfers < self.cfg.max_retransfers {
                self.retransfers += 1;
                self.push_event(
                    net,
                    SessionEvent::Retransfer {
                        attempt: self.retransfers,
                    },
                );
                self.discard_sender(net);
                self.start_attempt(net);
            } else {
                self.fail(net, SessionError::RetransfersExhausted);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RecoveryConfig::default();
        let mut delays = Vec::new();
        for attempt in 1u32..=8 {
            let exp = attempt.saturating_sub(1).min(16);
            delays.push((cfg.backoff_base * 2u64.pow(exp)).min(cfg.backoff_cap));
        }
        assert_eq!(delays[0], Dur::from_millis(100));
        assert_eq!(delays[1], Dur::from_millis(200));
        assert_eq!(delays[2], Dur::from_millis(400));
        assert_eq!(*delays.last().unwrap(), Dur::from_secs(5));
        assert!(delays.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn timer_tokens_embed_tag_session_and_generation() {
        // Two sessions on one node must never consume each other's
        // timers: tokens differ in the session field.
        let sid_a = SessionId(0x1111);
        let sid_b = SessionId(0x2222);
        let tok = |sid: SessionId, gen: u64| {
            CLIENT_TIMER_TAG | (((sid.0 as u64) & 0x3fff_ffff) << 32) | (gen & 0xffff_ffff)
        };
        assert_ne!(tok(sid_a, 1), tok(sid_b, 1));
        assert_ne!(tok(sid_a, 1), tok(sid_a, 2));
        assert!(tok(sid_a, 1) & CLIENT_TIMER_TAG != 0);
    }
}
