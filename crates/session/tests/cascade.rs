//! End-to-end LSL session tests: cascades of 1–4 depots, digest
//! verification, backpressure, overheads, and the core LSL effect.

use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Topology, TopologyBuilder};
use lsl_session::endpoint::{payload_chunk, SendMode, SenderState};
use lsl_session::{
    BulkSender, Depot, DepotConfig, Hop, LslHeader, LslPath, Resume, SessionId, SinkServer,
    TransferStatus, HEADER_FLAG_DIGEST,
};
use lsl_tcp::{AppEvent, Net, SockEvent, TcpConfig};

const SINK_PORT: u16 = 5000;
const DEPOT_PORT: u16 = 7000;

/// Source — depot(s) — sink in a chain; every inter-node link identical.
fn chain_topology(n_middle: usize, bw: u64, delay: Dur, loss: f64) -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let mut nodes = vec![b.node("src")];
    for i in 0..n_middle {
        nodes.push(b.node(&format!("d{i}")));
    }
    nodes.push(b.node("sink"));
    for w in 0..nodes.len() - 1 {
        b.duplex(
            nodes[w],
            nodes[w + 1],
            LinkSpec::new(bw, delay).with_loss(LossModel::bernoulli(loss)),
        );
    }
    (b.build(), nodes)
}

struct Harness {
    net: Net,
    depots: Vec<Depot>,
    sink: SinkServer,
    sender: BulkSender,
}

impl Harness {
    fn run(mut self) -> (Net, Vec<Depot>, SinkServer, BulkSender) {
        while let Some(ev) = self.net.poll() {
            if self.sender.handle(&mut self.net, &ev).consumed() {
                continue;
            }
            if self.sink.handle(&mut self.net, &ev).consumed() {
                continue;
            }
            let mut handled = false;
            for d in &mut self.depots {
                if d.handle(&mut self.net, &ev).consumed() {
                    handled = true;
                    break;
                }
            }
            let _ = handled;
        }
        (self.net, self.depots, self.sink, self.sender)
    }
}

fn run_cascade(
    n_depots: usize,
    total: u64,
    loss: f64,
    seed: u64,
    digest: bool,
) -> (
    Vec<lsl_session::TransferOutcome>,
    Vec<lsl_session::DepotStats>,
    SenderState,
    f64,
) {
    let (topo, nodes) = chain_topology(n_depots, 50_000_000, Dur::from_millis(5), loss);
    let mut net = Net::new(topo.into_sim(seed));
    let tcp = TcpConfig {
        time_wait: Dur::from_millis(10),
        ..TcpConfig::default()
    };
    let depots: Vec<Depot> = (0..n_depots)
        .map(|i| {
            Depot::new(
                &mut net,
                nodes[1 + i],
                DepotConfig {
                    port: DEPOT_PORT,
                    relay_buf: 256 * 1024,
                    tcp: tcp.clone(),
                    setup_delay: lsl_netsim::Dur::ZERO,
                    trace_downstream: None,
                },
            )
        })
        .collect();
    let sink_node = *nodes.last().unwrap();
    let sink = SinkServer::new(&mut net, sink_node, SINK_PORT, true, tcp.clone());
    let path = LslPath::via(
        (0..n_depots)
            .map(|i| Hop::new(nodes[1 + i], DEPOT_PORT))
            .collect(),
        Hop::new(sink_node, SINK_PORT),
    );
    let sender = BulkSender::start(
        &mut net,
        nodes[0],
        &path,
        SessionId(42),
        total,
        SendMode::Lsl { digest, sync: true },
        tcp,
        None,
        None,
    );
    let h = Harness {
        net,
        depots,
        sink,
        sender,
    };
    let (net, depots, mut sink, sender) = h.run();
    let dstats = depots.iter().map(|d| d.stats().clone()).collect();
    (
        sink.take_outcomes(),
        dstats,
        sender.state(),
        net.now().as_secs_f64(),
    )
}

#[test]
fn single_depot_relays_intact_with_digest() {
    let (done, dstats, state, _) = run_cascade(1, 1 << 20, 0.0, 1, true);
    assert_eq!(state, SenderState::Done);
    assert_eq!(done.len(), 1);
    let out = &done[0];
    assert_eq!(out.bytes, 1 << 20);
    assert_eq!(out.session, Some(SessionId(42)));
    assert_eq!(out.digest_ok, Some(true));
    assert!(out.content_ok);
    assert_eq!(dstats[0].sessions_accepted, 1);
    assert!(dstats[0].bytes_relayed >= 1 << 20);
    assert_eq!(dstats[0].header_errors, 0);
}

#[test]
fn cascade_depth_2_and_3_and_4() {
    for depth in [2usize, 3, 4] {
        let (done, dstats, state, _) = run_cascade(depth, 300_000, 0.0, depth as u64, true);
        assert_eq!(state, SenderState::Done, "depth {depth}");
        assert_eq!(done.len(), 1, "depth {depth}");
        assert_eq!(done[0].bytes, 300_000);
        assert_eq!(done[0].digest_ok, Some(true));
        assert!(done[0].content_ok);
        for (i, ds) in dstats.iter().enumerate() {
            assert_eq!(ds.sessions_accepted, 1, "depot {i} at depth {depth}");
            assert_eq!(ds.header_errors, 0);
        }
    }
}

#[test]
fn cascade_survives_loss_on_every_sublink() {
    let (done, _, state, _) = run_cascade(2, 500_000, 0.01, 99, true);
    assert_eq!(state, SenderState::Done);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].bytes, 500_000);
    assert_eq!(done[0].digest_ok, Some(true));
    assert!(done[0].content_ok);
}

#[test]
fn no_digest_mode() {
    let (done, _, _, _) = run_cascade(1, 100_000, 0.0, 3, false);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].bytes, 100_000);
    assert_eq!(done[0].digest_ok, None);
    assert!(done[0].content_ok);
}

#[test]
fn zero_length_session() {
    let (done, _, state, _) = run_cascade(1, 0, 0.0, 4, true);
    assert_eq!(state, SenderState::Done);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].bytes, 0);
    assert_eq!(done[0].digest_ok, Some(true), "digest of empty stream");
}

#[test]
fn depot_buffer_stays_bounded() {
    // Fast inbound, slow outbound: the relay buffer must cap, not grow
    // with the transfer (the paper's "small, short-lived" buffers).
    let mut b = TopologyBuilder::new();
    let src = b.node("src");
    let dep = b.node("depot");
    let sink = b.node("sink");
    b.duplex(src, dep, LinkSpec::new(100_000_000, Dur::from_millis(1)));
    b.duplex(dep, sink, LinkSpec::new(2_000_000, Dur::from_millis(1)));
    let mut net = Net::new(b.build().into_sim(7));
    let tcp = TcpConfig::default();
    let relay_buf = 128 * 1024;
    let depot = Depot::new(
        &mut net,
        dep,
        DepotConfig {
            port: DEPOT_PORT,
            relay_buf,
            tcp: tcp.clone(),
            setup_delay: lsl_netsim::Dur::ZERO,
            trace_downstream: None,
        },
    );
    let sinksrv = SinkServer::new(&mut net, sink, SINK_PORT, true, tcp.clone());
    let path = LslPath::via(vec![Hop::new(dep, DEPOT_PORT)], Hop::new(sink, SINK_PORT));
    let sender = BulkSender::start(
        &mut net,
        src,
        &path,
        SessionId(1),
        2 << 20,
        SendMode::lsl(),
        tcp,
        None,
        None,
    );
    let (_, depots, sinksrv, _) = Harness {
        net,
        depots: vec![depot],
        sink: sinksrv,
        sender,
    }
    .run();
    assert_eq!(sinksrv.outcomes().len(), 1);
    assert_eq!(sinksrv.outcomes()[0].digest_ok, Some(true));
    assert!(
        depots[0].stats().max_buffered <= relay_buf,
        "relay buffered {} > cap {relay_buf}",
        depots[0].stats().max_buffered
    );
}

#[test]
fn lsl_beats_direct_on_split_lossy_path_and_loses_when_tiny() {
    // The LSL effect end-to-end in the simulator: a 2×30 ms lossy path.
    let build = || {
        let mut b = TopologyBuilder::new();
        let src = b.node("src");
        let pop = b.node("pop");
        let dst = b.node("dst");
        b.duplex(
            src,
            pop,
            LinkSpec::new(100_000_000, Dur::from_millis(15)).with_loss(LossModel::bernoulli(2e-4)),
        );
        b.duplex(
            pop,
            dst,
            LinkSpec::new(100_000_000, Dur::from_millis(15)).with_loss(LossModel::bernoulli(2e-4)),
        );
        (b.build(), src, pop, dst)
    };
    let tcp = || TcpConfig {
        time_wait: Dur::from_millis(10),
        ..TcpConfig::default()
    };

    let run_one = |via_depot: bool, total: u64, seed: u64| -> f64 {
        let (topo, src, pop, dst) = build();
        let mut net = Net::new(topo.into_sim(seed));
        let depots = if via_depot {
            vec![Depot::new(
                &mut net,
                pop,
                DepotConfig {
                    port: DEPOT_PORT,
                    relay_buf: 256 * 1024,
                    tcp: tcp(),
                    // Per-session depot processing: the cost that makes
                    // LSL lose on tiny transfers.
                    setup_delay: Dur::from_millis(50),
                    trace_downstream: None,
                },
            )]
        } else {
            Vec::new()
        };
        let sink = SinkServer::new(&mut net, dst, SINK_PORT, via_depot, tcp());
        let (path, mode) = if via_depot {
            (
                LslPath::via(vec![Hop::new(pop, DEPOT_PORT)], Hop::new(dst, SINK_PORT)),
                SendMode::lsl(),
            )
        } else {
            (
                LslPath::direct(Hop::new(dst, SINK_PORT)),
                SendMode::DirectTcp,
            )
        };
        let sender = BulkSender::start(
            &mut net,
            src,
            &path,
            SessionId(9),
            total,
            mode,
            tcp(),
            None,
            None,
        );
        let started = sender.started_at;
        let (net, _, sink, _) = Harness {
            net,
            depots,
            sink,
            sender,
        }
        .run();
        let done = sink.outcomes();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, total);
        assert!(done[0].content_ok);
        let _ = net;
        (done[0].completed_at - started).as_secs_f64()
    };

    // Large transfer: average over a few seeds; LSL should win clearly.
    let big = 8u64 << 20;
    let avg = |via: bool| -> f64 { (0..5).map(|s| run_one(via, big, 100 + s)).sum::<f64>() / 5.0 };
    let t_direct = avg(false);
    let t_lsl = avg(true);
    assert!(
        t_lsl < t_direct,
        "LSL ({t_lsl:.3}s) must beat direct ({t_direct:.3}s) at 8 MB"
    );

    // Tiny transfer: the extra handshake makes LSL slower.
    let small = 16u64 << 10;
    let t_direct_s = run_one(false, small, 7);
    let t_lsl_s = run_one(true, small, 7);
    assert!(
        t_lsl_s > t_direct_s,
        "LSL ({t_lsl_s:.4}s) should lose to direct ({t_direct_s:.4}s) at 16 KB"
    );
}

#[test]
fn concurrent_sessions_through_one_depot() {
    let (topo, nodes) = chain_topology(1, 50_000_000, Dur::from_millis(5), 0.0);
    let mut net = Net::new(topo.into_sim(11));
    let tcp = TcpConfig::default();
    let mut depot = Depot::new(
        &mut net,
        nodes[1],
        DepotConfig {
            port: DEPOT_PORT,
            relay_buf: 256 * 1024,
            tcp: tcp.clone(),
            setup_delay: lsl_netsim::Dur::ZERO,
            trace_downstream: None,
        },
    );
    let mut sink = SinkServer::new(&mut net, nodes[2], SINK_PORT, true, tcp.clone());
    let path = LslPath::via(
        vec![Hop::new(nodes[1], DEPOT_PORT)],
        Hop::new(nodes[2], SINK_PORT),
    );
    let mut senders: Vec<BulkSender> = (0..4)
        .map(|i| {
            BulkSender::start(
                &mut net,
                nodes[0],
                &path,
                SessionId(1000 + i),
                200_000,
                SendMode::lsl(),
                tcp.clone(),
                None,
                None,
            )
        })
        .collect();
    while let Some(ev) = net.poll() {
        if senders
            .iter_mut()
            .any(|s| s.handle(&mut net, &ev).consumed())
        {
            continue;
        }
        if sink.handle(&mut net, &ev).consumed() {
            continue;
        }
        let _ = depot.handle(&mut net, &ev);
    }
    let done = sink.take_outcomes();
    assert_eq!(done.len(), 4);
    let mut ids: Vec<u128> = done.iter().map(|o| o.session.unwrap().0).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1000, 1001, 1002, 1003]);
    for o in &done {
        assert_eq!(o.bytes, 200_000);
        assert_eq!(o.digest_ok, Some(true));
    }
    assert_eq!(depot.stats().sessions_accepted, 4);
    assert_eq!(depot.active_sessions(), 0);
}

/// Satellite (ISSUE 5): the `length == u64::MAX` ("until FIN") sentinel
/// interacting with a resume request. The sink must not read the
/// sentinel as a declared length (no spurious `TruncatedStream`), must
/// grant a fresh resume from offset 0, and must still certify full
/// blocks and the whole-stream digest off the FIN-terminated stream.
#[test]
fn until_fin_sentinel_with_resume_verifies_blocks_at_fin() {
    let (topo, nodes) = chain_topology(0, 50_000_000, Dur::from_millis(5), 0.0);
    let mut net = Net::new(topo.into_sim(9));
    let tcp = TcpConfig::default();
    let sink_node = *nodes.last().unwrap();
    let mut sink = SinkServer::new(&mut net, sink_node, SINK_PORT, true, tcp.clone());
    let sock = net.connect(nodes[0], sink_node, SINK_PORT, tcp);

    // 1.5 resume blocks: one certifiable full block plus a partial tail
    // whose bytes only the whole-stream digest can vouch for.
    let total = lsl_session::RESUME_BLOCK + lsl_session::RESUME_BLOCK / 2;
    let header = LslHeader {
        session: SessionId(0x51),
        flags: HEADER_FLAG_DIGEST,
        length: u64::MAX,
        resume: Some(Resume::fresh()),
        stripe: None,
        route: Vec::new(),
    };
    let payload = payload_chunk(0, total as usize);
    let digest = lsl_digest::md5(&payload);
    let mut stream = Vec::from(&header.encode().unwrap()[..]);
    stream.extend_from_slice(&payload);
    stream.extend_from_slice(&digest);
    let stream = bytes::Bytes::from(stream);

    // Hand-driven sender: push bytes whenever the socket will take them,
    // drain the sink's 9-byte resume grant, FIN when the stream is out.
    let mut sent = 0usize;
    let mut grant = Vec::new();
    let mut closed = false;
    while let Some(ev) = net.poll() {
        if sink.handle(&mut net, &ev).consumed() {
            continue;
        }
        let AppEvent::Sock { sock: s, event } = &ev else {
            continue;
        };
        if *s != sock {
            continue;
        }
        if matches!(event, SockEvent::Readable) {
            grant.extend_from_slice(&net.recv(sock, 64));
        }
        if matches!(
            event,
            SockEvent::Connected | SockEvent::Writable | SockEvent::Readable
        ) {
            if sent < stream.len() {
                sent += net.send(sock, &stream.slice(sent..));
            }
            if sent == stream.len() && !closed {
                net.close(sock);
                closed = true;
            }
        }
    }
    assert!(closed, "stream never fully handed to the socket");

    // Fresh session: the sink granted offset 0 (0x4b confirm + BE u64).
    assert_eq!(grant.len(), 9, "version-2 confirm is 9 bytes");
    assert_eq!(grant[0], 0x4b);
    assert_eq!(u64::from_be_bytes(grant[1..9].try_into().unwrap()), 0);

    let done = sink.take_outcomes();
    assert_eq!(done.len(), 1);
    let o = &done[0];
    assert_eq!(o.session, Some(SessionId(0x51)));
    // No declared length ⇒ no truncation verdict: the FIN ends the
    // stream and the digest decides.
    assert_eq!(o.status, TransferStatus::Complete);
    assert_eq!(o.bytes, total);
    assert_eq!(o.digest_ok, Some(true));
    assert!(o.content_ok);
    // Exactly the one full block is certified; the partial tail rides on
    // the whole-stream digest alone.
    assert_eq!(o.verified_blocks, 1);
    assert_eq!(o.resume_offset, 0);
}
