//! A per-block digest chain over a byte stream.
//!
//! The paper verifies a transfer with one MD5 over the *whole* stream —
//! which means a failed check can only be answered by resending from
//! byte 0. [`DigestChain`] refines that: the stream is cut into
//! fixed-size blocks, each block gets its own MD5, and a running
//! whole-stream MD5 is maintained alongside, so the paper's end-to-end
//! check is preserved bit-for-bit while a receiver can additionally
//! certify *how far* the stream is known-good.
//!
//! The chain snapshots the whole-stream hasher state at every block
//! boundary, so [`DigestChain::truncate_to`] can roll the chain back to
//! an earlier verified boundary (discarding blocks that arrived after a
//! crash, or a block whose digest failed) and resume hashing from there
//! — without re-reading any byte before the boundary. That rollback is
//! what makes resume-from-last-verified-block sound: the eventual
//! whole-stream digest is exactly the digest of the bytes as if the
//! stream had arrived once, cleanly.

use crate::md5::{Md5, DIGEST_LEN};

/// Digest record for one completed block.
#[derive(Clone)]
struct BlockRecord {
    /// MD5 over this block's bytes alone.
    digest: [u8; DIGEST_LEN],
    /// Whole-stream hasher state *after* this block — the rollback
    /// point for [`DigestChain::truncate_to`].
    whole_after: Md5,
}

/// Incremental per-block MD5 chain plus the running whole-stream MD5.
#[derive(Clone)]
pub struct DigestChain {
    block_size: u64,
    whole: Md5,
    /// Hasher over the current (incomplete) block.
    cur: Md5,
    cur_len: u64,
    blocks: Vec<BlockRecord>,
}

impl DigestChain {
    /// A chain cutting the stream into `block_size`-byte blocks (the
    /// final block may be short).
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: u64) -> DigestChain {
        assert!(block_size > 0, "block size must be positive");
        DigestChain {
            block_size,
            whole: Md5::new(),
            cur: Md5::new(),
            cur_len: 0,
            blocks: Vec::new(),
        }
    }

    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Total bytes absorbed so far (stream position).
    pub fn position(&self) -> u64 {
        self.blocks.len() as u64 * self.block_size + self.cur_len
    }

    /// Number of *completed* blocks.
    pub fn completed(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The digest of completed block `i` (0-based).
    pub fn digest_of(&self, i: u64) -> Option<[u8; DIGEST_LEN]> {
        self.blocks.get(i as usize).map(|b| b.digest)
    }

    /// Absorb stream bytes, closing blocks as boundaries pass.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let room = (self.block_size - self.cur_len) as usize;
            let take = room.min(data.len());
            let (head, rest) = data.split_at(take);
            self.cur.update(head);
            self.whole.update(head);
            self.cur_len += take as u64;
            if self.cur_len == self.block_size {
                self.close_block();
            }
            data = rest;
        }
    }

    fn close_block(&mut self) {
        let finished = std::mem::take(&mut self.cur);
        self.blocks.push(BlockRecord {
            digest: finished.finalize(),
            whole_after: self.whole.clone(),
        });
        self.cur_len = 0;
    }

    /// Close the trailing short block, if any bytes are pending in it.
    /// Call once at end-of-stream so [`DigestChain::completed`] covers
    /// the whole stream.
    pub fn finish_partial(&mut self) {
        if self.cur_len > 0 {
            let finished = std::mem::take(&mut self.cur);
            self.blocks.push(BlockRecord {
                digest: finished.finalize(),
                whole_after: self.whole.clone(),
            });
            self.cur_len = 0;
        }
    }

    /// Roll the chain back so only the first `keep` completed blocks
    /// remain: the whole-stream hasher is restored to its state at that
    /// boundary and any partial-block bytes are discarded. Subsequent
    /// [`DigestChain::update`] calls must replay the stream from byte
    /// `keep * block_size`.
    ///
    /// Panics if `keep` exceeds the completed-block count.
    pub fn truncate_to(&mut self, keep: u64) {
        assert!(
            keep <= self.blocks.len() as u64,
            "cannot keep {keep} blocks, only {} completed",
            self.blocks.len()
        );
        self.blocks.truncate(keep as usize);
        self.whole = match self.blocks.last() {
            Some(b) => b.whole_after.clone(),
            None => Md5::new(),
        };
        self.cur = Md5::new();
        self.cur_len = 0;
    }

    /// The whole-stream MD5 over every byte absorbed so far (the
    /// paper's end-to-end digest). Non-destructive: hashing may
    /// continue afterwards.
    pub fn whole_digest(&self) -> [u8; DIGEST_LEN] {
        self.whole.clone().finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5;

    fn pattern(range: std::ops::Range<u64>) -> Vec<u8> {
        range.map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
    }

    #[test]
    fn whole_digest_matches_oneshot_regardless_of_chunking() {
        let data = pattern(0..1000);
        for chunk in [1usize, 7, 64, 128, 999, 1000] {
            let mut c = DigestChain::new(128);
            for piece in data.chunks(chunk) {
                c.update(piece);
            }
            assert_eq!(c.whole_digest(), md5(&data), "chunk {chunk}");
            assert_eq!(c.position(), 1000);
            assert_eq!(c.completed(), 1000 / 128);
        }
    }

    #[test]
    fn block_digests_match_per_block_oneshot() {
        let data = pattern(0..520);
        let mut c = DigestChain::new(100);
        c.update(&data);
        assert_eq!(c.completed(), 5);
        for i in 0..5u64 {
            let lo = (i * 100) as usize;
            assert_eq!(c.digest_of(i), Some(md5(&data[lo..lo + 100])), "block {i}");
        }
        assert_eq!(c.digest_of(5), None);
        c.finish_partial();
        assert_eq!(c.completed(), 6);
        assert_eq!(c.digest_of(5), Some(md5(&data[500..])));
    }

    #[test]
    fn finish_partial_is_idempotent_and_noop_at_boundary() {
        let mut c = DigestChain::new(10);
        c.update(&pattern(0..20));
        c.finish_partial();
        c.finish_partial();
        assert_eq!(c.completed(), 2);
    }

    #[test]
    fn truncate_then_replay_recovers_the_clean_stream_digest() {
        let data = pattern(0..950);
        // Clean reference.
        let mut clean = DigestChain::new(100);
        clean.update(&data);

        // Corrupted run: good through block 6, then garbage, then the
        // chain is rolled back to block 6 and replayed from byte 600.
        let mut c = DigestChain::new(100);
        c.update(&data[..600]);
        c.update(&[0xff; 250]); // corrupt blocks 6..8 + partial
        assert_eq!(c.completed(), 8);
        assert_ne!(c.digest_of(6), clean.digest_of(6));
        c.truncate_to(6);
        assert_eq!(c.completed(), 6);
        assert_eq!(c.position(), 600);
        c.update(&data[600..]);
        assert_eq!(c.whole_digest(), clean.whole_digest());
        assert_eq!(c.whole_digest(), md5(&data));
        for i in 0..9 {
            assert_eq!(c.digest_of(i), clean.digest_of(i), "block {i}");
        }
    }

    #[test]
    fn truncate_to_zero_resets_fully() {
        let data = pattern(0..300);
        let mut c = DigestChain::new(100);
        c.update(&[0xab; 250]);
        c.truncate_to(0);
        assert_eq!(c.position(), 0);
        c.update(&data);
        assert_eq!(c.whole_digest(), md5(&data));
    }

    #[test]
    #[should_panic(expected = "only 2 completed")]
    fn truncate_past_completed_panics() {
        let mut c = DigestChain::new(10);
        c.update(&[0u8; 25]);
        c.truncate_to(3);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_rejected() {
        let _ = DigestChain::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::md5;
    use proptest::prelude::*;

    proptest! {
        /// Rolling back to any completed boundary and replaying from
        /// that byte offset always reproduces the clean whole-stream
        /// digest and per-block digests.
        #[test]
        fn rollback_replay_equals_clean(
            data in proptest::collection::vec(any::<u8>(), 1..2048),
            block in 1u64..257,
            junk in proptest::collection::vec(any::<u8>(), 0..512),
            keep_frac in 0.0f64..1.0,
        ) {
            let mut c = DigestChain::new(block);
            // Absorb a prefix, then junk, then roll back and replay.
            let cut = data.len() / 2;
            c.update(&data[..cut]);
            c.update(&junk);
            let keep = ((c.completed() as f64) * keep_frac) as u64;
            // Only boundaries at or below the clean prefix are sound
            // resume points (beyond it, the junk is baked in).
            let keep = keep.min(cut as u64 / block);
            c.truncate_to(keep);
            prop_assert_eq!(c.position(), keep * block);
            c.update(&data[(keep * block) as usize..]);
            prop_assert_eq!(c.whole_digest(), md5(&data));
        }
    }
}
