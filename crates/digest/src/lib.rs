//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! The Logistical Session Layer sends an MD5 digest over the complete
//! stream between end systems, restoring end-to-end integrity above the
//! cascade of TCP sublinks (the paper, §III). This crate provides the
//! digest with both one-shot and incremental APIs so endpoints can hash
//! the stream as it is produced/consumed without buffering it.

mod chain;
mod ledger;
mod md5;

pub use chain::DigestChain;
pub use ledger::BlockLedger;
pub use md5::{Md5, DIGEST_LEN};

/// One-shot MD5 of a byte slice.
pub fn md5(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Render a digest as lowercase hex, as `md5sum` would print it.
pub fn to_hex(digest: &[u8; DIGEST_LEN]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for &b in digest {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

/// Parse a 32-char hex string back into a digest. Returns `None` on any
/// malformed input (wrong length or non-hex character).
pub fn from_hex(s: &str) -> Option<[u8; DIGEST_LEN]> {
    let bytes = s.as_bytes();
    if bytes.len() != DIGEST_LEN * 2 {
        return None;
    }
    let mut out = [0u8; DIGEST_LEN];
    for (i, chunk) in bytes.chunks_exact(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        out[i] = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    const VECTORS: &[(&str, &str)] = &[
        ("", "d41d8cd98f00b204e9800998ecf8427e"),
        ("a", "0cc175b9c0f1b6a831c399e269772661"),
        ("abc", "900150983cd24fb0d6963f7d28e17f72"),
        ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
        (
            "abcdefghijklmnopqrstuvwxyz",
            "c3fcd3d76192e4007dfb496cca67e13b",
        ),
        (
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
            "d174ab98d277d9f5a5611c2c9f419d9f",
        ),
        (
            "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
            "57edf4a22be3c955ac49da2e2107b67a",
        ),
    ];

    #[test]
    fn rfc1321_vectors() {
        for (input, want) in VECTORS {
            assert_eq!(to_hex(&md5(input.as_bytes())), *want, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Md5::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(to_hex(&h.finalize()), "7707d6ae4e027c70eea2a935c2296f21");
    }

    #[test]
    fn incremental_matches_oneshot_at_block_boundaries() {
        // Exercise lengths around the 64-byte block boundary and the
        // 56-byte padding threshold.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let one = md5(&data);
            let mut h = Md5::new();
            for b in data.chunks(7) {
                h.update(b);
            }
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = md5(b"roundtrip");
        assert_eq!(from_hex(&to_hex(&d)), Some(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(from_hex("short"), None);
        assert_eq!(from_hex(&"g".repeat(32)), None);
        assert_eq!(from_hex(&"0".repeat(31)), None);
        assert_eq!(from_hex(&"0".repeat(33)), None);
    }

    #[test]
    fn bytes_processed_is_tracked() {
        let mut h = Md5::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.bytes_processed(), 11);
    }

    #[test]
    fn clone_preserves_state() {
        let mut h = Md5::new();
        h.update(b"prefix-");
        let mut h2 = h.clone();
        h.update(b"one");
        h2.update(b"one");
        assert_eq!(h.finalize(), h2.finalize());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Incremental hashing over arbitrary chunkings equals one-shot.
        #[test]
        fn incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                      cuts in proptest::collection::vec(1usize..64, 0..64)) {
            let one = md5(&data);
            let mut h = Md5::new();
            let mut off = 0;
            for c in cuts {
                if off >= data.len() { break; }
                let end = (off + c).min(data.len());
                h.update(&data[off..end]);
                off = end;
            }
            h.update(&data[off..]);
            prop_assert_eq!(h.finalize(), one);
        }

        /// Distinct single-bit flips produce distinct digests (no trivial
        /// collisions on small inputs).
        #[test]
        fn bit_flip_changes_digest(data in proptest::collection::vec(any::<u8>(), 1..256),
                                   idx in any::<proptest::sample::Index>()) {
            let mut flipped = data.clone();
            let i = idx.index(flipped.len());
            flipped[i] ^= 1;
            prop_assert_ne!(md5(&data), md5(&flipped));
        }

        /// Hex round-trips for arbitrary digests.
        #[test]
        fn hex_roundtrip_any(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let d = md5(&data);
            prop_assert_eq!(from_hex(&to_hex(&d)), Some(d));
        }
    }
}
