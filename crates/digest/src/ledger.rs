//! Out-of-order block certification for striped sessions.
//!
//! A [`super::DigestChain`] certifies blocks strictly in stream order —
//! the right shape for one cascade feeding one contiguous stream. A
//! striped session delivers disjoint block *ranges* over N concurrent
//! cascades, so blocks certify out of order: the sink needs a ledger of
//! which blocks are verified, independent of arrival order, plus the
//! contiguous-prefix view the resume protocol grants against and a
//! duplicate count for redundant (k-of-n) dispatch accounting.

/// Per-session record of which fixed-size blocks have been certified,
/// in any order. The ledger is pure bookkeeping: callers certify a
/// block only after its digest matched the reference, and the ledger
/// answers coverage questions (verified count, contiguous prefix,
/// completion) plus counts duplicate certifications — the cost of
/// deliberately redundant tail dispatch.
#[derive(Clone, Debug)]
pub struct BlockLedger {
    verified: Vec<bool>,
    verified_count: u64,
    /// Blocks `[0, prefix)` are all verified (cached scan position).
    prefix: u64,
    duplicates: u64,
}

impl BlockLedger {
    /// A ledger over `total_blocks` blocks, all unverified. Panics on a
    /// zero-block ledger — a striped session always has payload.
    pub fn new(total_blocks: u64) -> BlockLedger {
        assert!(total_blocks > 0, "ledger needs at least one block");
        BlockLedger {
            verified: vec![false; total_blocks as usize],
            verified_count: 0,
            prefix: 0,
            duplicates: 0,
        }
    }

    pub fn total_blocks(&self) -> u64 {
        self.verified.len() as u64
    }

    /// Record block `block` as certified. Returns `true` if the block
    /// was newly verified, `false` for a duplicate (already certified
    /// by another cascade — counted, then discarded).
    pub fn certify(&mut self, block: u64) -> bool {
        let slot = &mut self.verified[block as usize];
        if *slot {
            self.duplicates += 1;
            return false;
        }
        *slot = true;
        self.verified_count += 1;
        while (self.prefix as usize) < self.verified.len() && self.verified[self.prefix as usize] {
            self.prefix += 1;
        }
        true
    }

    pub fn is_verified(&self, block: u64) -> bool {
        self.verified.get(block as usize).copied().unwrap_or(false)
    }

    /// Total blocks certified, in any order.
    pub fn verified_count(&self) -> u64 {
        self.verified_count
    }

    /// Length of the verified prefix `[0, n)` — what a v2-style
    /// contiguous resume grant would be based on.
    pub fn contiguous_verified(&self) -> u64 {
        self.prefix
    }

    pub fn all_verified(&self) -> bool {
        self.verified_count == self.total_blocks()
    }

    /// Duplicate certifications seen (redundant dispatch discards).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// First unverified block at or after `from` (clamped to the ledger
    /// end) — how a sink advances a requested range past blocks some
    /// other cascade already delivered.
    pub fn skip_verified(&self, from: u64) -> u64 {
        let mut b = from.min(self.total_blocks());
        while (b as usize) < self.verified.len() && self.verified[b as usize] {
            b += 1;
        }
        b
    }

    /// Unverified blocks within `[start, end)`.
    pub fn missing_in(&self, start: u64, end: u64) -> u64 {
        let end = end.min(self.total_blocks());
        (start..end).filter(|&b| !self.verified[b as usize]).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ledger_is_empty() {
        let l = BlockLedger::new(4);
        assert_eq!(l.total_blocks(), 4);
        assert_eq!(l.verified_count(), 0);
        assert_eq!(l.contiguous_verified(), 0);
        assert!(!l.all_verified());
        assert_eq!(l.missing_in(0, 4), 4);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        BlockLedger::new(0);
    }

    #[test]
    fn out_of_order_certification_tracks_prefix() {
        let mut l = BlockLedger::new(5);
        assert!(l.certify(2));
        assert_eq!(l.verified_count(), 1);
        assert_eq!(l.contiguous_verified(), 0);
        assert!(l.certify(0));
        assert_eq!(l.contiguous_verified(), 1);
        assert!(l.certify(1));
        // Prefix jumps over the already-verified block 2.
        assert_eq!(l.contiguous_verified(), 3);
        assert!(l.certify(4));
        assert!(l.certify(3));
        assert!(l.all_verified());
        assert_eq!(l.contiguous_verified(), 5);
        assert_eq!(l.duplicates(), 0);
    }

    #[test]
    fn duplicates_are_counted_and_discarded() {
        let mut l = BlockLedger::new(3);
        assert!(l.certify(1));
        assert!(!l.certify(1));
        assert!(!l.certify(1));
        assert_eq!(l.duplicates(), 2);
        assert_eq!(l.verified_count(), 1);
    }

    #[test]
    fn skip_verified_advances_past_done_blocks() {
        let mut l = BlockLedger::new(6);
        l.certify(2);
        l.certify(3);
        assert_eq!(l.skip_verified(0), 0);
        assert_eq!(l.skip_verified(2), 4);
        assert_eq!(l.skip_verified(3), 4);
        assert_eq!(l.skip_verified(5), 5);
        // Clamped at the end.
        assert_eq!(l.skip_verified(99), 6);
    }

    #[test]
    fn missing_in_counts_holes() {
        let mut l = BlockLedger::new(8);
        l.certify(1);
        l.certify(4);
        assert_eq!(l.missing_in(0, 8), 6);
        assert_eq!(l.missing_in(1, 5), 2);
        assert_eq!(l.missing_in(4, 5), 0);
        // Range clamped to the ledger.
        assert_eq!(l.missing_in(6, 100), 2);
    }
}
