//! The MD5 compression function and streaming state machine (RFC 1321).

/// Length of an MD5 digest in bytes.
pub const DIGEST_LEN: usize = 16;

const BLOCK_LEN: usize = 64;

/// Per-round left-rotate amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived additive constants: `floor(2^32 * |sin(i+1)|)`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 hasher.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes so far.
    len: u64,
    /// Partial block awaiting 64 bytes.
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh hasher with the RFC 1321 initialization vector.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Total number of message bytes absorbed so far.
    pub fn bytes_processed(&self) -> u64 {
        self.len
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < BLOCK_LEN {
                // Buffer still partial: the remainder path below would
                // clobber buf_len with the (empty) remainder length.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            // chunks_exact guarantees the length; convert without copy.
            let block: &[u8; BLOCK_LEN] = block.try_into().expect("exact chunk");
            self.compress(block);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Apply RFC 1321 padding and return the digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // One 0x80 byte, then zeros until length ≡ 56 (mod 64).
        self.update(&[0x80]);
        // `update` adjusted self.len, but padding bytes must not count;
        // the captured bit_len above is authoritative.
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length in bits, little-endian. Feed via compress directly so we
        // don't disturb the padding loop invariant.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4-byte word"));
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_is_iv_transform() {
        // Smoke: finalize of empty input must equal the RFC vector.
        let d = Md5::new().finalize();
        assert_eq!(
            d,
            [
                0xd4, 0x1d, 0x8c, 0xd9, 0x8f, 0x00, 0xb2, 0x04, 0xe9, 0x80, 0x09, 0x98, 0xec, 0xf8,
                0x42, 0x7e
            ]
        );
    }

    #[test]
    fn padding_counts_only_message_bytes() {
        // 64-byte message: padding adds a full extra block, and the
        // encoded bit length must be 512, not 512 + padding.
        let mut h = Md5::new();
        h.update(&[0xab; 64]);
        assert_eq!(h.bytes_processed(), 64);
        let _ = h.finalize(); // must not panic / loop forever
    }
}
