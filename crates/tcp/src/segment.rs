//! TCP segment header and its wire codec.
//!
//! Headers travel as real serialized bytes inside `lsl_netsim::Packet`
//! and are re-parsed at the receiving stack, so the codec is exercised by
//! every simulated segment. Sequence/ack/window fields are 64-bit (see
//! the crate docs for the rationale); the fixed header is 32 bytes.

use bytes::{BufMut, Bytes, BytesMut};

/// TCP flag bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
}

impl Flags {
    pub const SYN: Flags = Flags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    pub const ACK: Flags = Flags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const SYN_ACK: Flags = Flags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const FIN_ACK: Flags = Flags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    pub const RST: Flags = Flags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };

    fn to_bits(self) -> u8 {
        (self.syn as u8) | (self.ack as u8) << 1 | (self.fin as u8) << 2 | (self.rst as u8) << 3
    }

    fn from_bits(b: u8) -> Flags {
        Flags {
            syn: b & 1 != 0,
            ack: b & 2 != 0,
            fin: b & 4 != 0,
            rst: b & 8 != 0,
        }
    }
}

/// A parsed TCP header. Payload travels separately in the packet body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    pub src_port: u16,
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u64,
    /// Cumulative acknowledgment (valid when `flags.ack`).
    pub ack: u64,
    pub flags: Flags,
    /// Advertised receive window in bytes.
    pub wnd: u64,
    /// MSS option, carried on SYN segments.
    pub mss: Option<u16>,
}

/// Serialized header length in bytes.
pub const HEADER_LEN: usize = 32;

impl Segment {
    /// Serialize to the fixed 32-byte wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER_LEN);
        b.put_u16(self.src_port);
        b.put_u16(self.dst_port);
        b.put_u64(self.seq);
        b.put_u64(self.ack);
        b.put_u8(self.flags.to_bits());
        b.put_u8(if self.mss.is_some() { 1 } else { 0 });
        b.put_u16(self.mss.unwrap_or(0));
        b.put_u64(self.wnd);
        debug_assert_eq!(b.len(), HEADER_LEN);
        b.freeze()
    }

    /// Parse a wire header; `None` on truncation or a malformed option
    /// marker (the simulator never corrupts, but the depot and realnet
    /// share this codec and must not panic on bad input).
    pub fn decode(buf: &[u8]) -> Option<Segment> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        let src_port = u16::from_be_bytes([buf[0], buf[1]]);
        let dst_port = u16::from_be_bytes([buf[2], buf[3]]);
        let seq = u64::from_be_bytes(buf[4..12].try_into().ok()?);
        let ack = u64::from_be_bytes(buf[12..20].try_into().ok()?);
        let flags = Flags::from_bits(buf[20]);
        let mss_present = match buf[21] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let mss_val = u16::from_be_bytes([buf[22], buf[23]]);
        let wnd = u64::from_be_bytes(buf[24..32].try_into().ok()?);
        Some(Segment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            wnd,
            mss: mss_present.then_some(mss_val),
        })
    }

    /// Payload end sequence given a payload of `len` bytes, counting the
    /// virtual SYN/FIN octets.
    pub fn seq_space(&self, payload_len: u64) -> u64 {
        payload_len + self.flags.syn as u64 + self.flags.fin as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            src_port: 40000,
            dst_port: 5000,
            seq: 123456789012,
            ack: 987654321098,
            flags: Flags {
                syn: true,
                ack: true,
                fin: false,
                rst: false,
            },
            wnd: 8 * 1024 * 1024,
            mss: Some(1460),
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let enc = s.encode();
        assert_eq!(enc.len(), HEADER_LEN);
        assert_eq!(Segment::decode(&enc), Some(s));
    }

    #[test]
    fn roundtrip_no_mss() {
        let s = Segment {
            mss: None,
            flags: Flags::ACK,
            ..sample()
        };
        assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn truncated_rejected() {
        let enc = sample().encode();
        for len in 0..HEADER_LEN {
            assert_eq!(Segment::decode(&enc[..len]), None, "len {len}");
        }
    }

    #[test]
    fn bad_option_marker_rejected() {
        let mut enc = sample().encode().to_vec();
        enc[21] = 7;
        assert_eq!(Segment::decode(&enc), None);
    }

    #[test]
    fn flag_bits_roundtrip() {
        for bits in 0..16u8 {
            let f = Flags::from_bits(bits);
            assert_eq!(f.to_bits(), bits);
        }
    }

    #[test]
    fn seq_space_counts_syn_fin() {
        let mut s = sample();
        s.flags = Flags::SYN;
        assert_eq!(s.seq_space(0), 1);
        s.flags = Flags::FIN_ACK;
        assert_eq!(s.seq_space(10), 11);
        s.flags = Flags::ACK;
        assert_eq!(s.seq_space(10), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn codec_roundtrip(src in any::<u16>(), dst in any::<u16>(),
                           seq in any::<u64>(), ack in any::<u64>(),
                           bits in 0u8..16, wnd in any::<u64>(),
                           mss in proptest::option::of(any::<u16>())) {
            let s = Segment {
                src_port: src, dst_port: dst, seq, ack,
                flags: Flags::from_bits(bits), wnd, mss,
            };
            prop_assert_eq!(Segment::decode(&s.encode()), Some(s));
        }

        /// Decoding arbitrary bytes never panics.
        #[test]
        fn decode_total(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Segment::decode(&data);
        }
    }
}
