//! The receive buffer: in-order delivery queue plus out-of-order
//! reassembly, with advertised-window accounting.

use bytes::{Bytes, BytesMut};
use std::collections::{BTreeMap, VecDeque};

/// Reassembly and delivery state for one direction of a connection.
#[derive(Debug)]
pub struct RecvBuf {
    /// Next in-order sequence number expected (`rcv_nxt`).
    rcv_nxt: u64,
    /// In-order data awaiting the application.
    ready: VecDeque<Bytes>,
    ready_bytes: u64,
    /// Out-of-order segments keyed by start sequence. Invariant: entries
    /// are non-overlapping and all start above `rcv_nxt`.
    ooo: BTreeMap<u64, Bytes>,
    ooo_bytes: u64,
    cap: u64,
}

impl RecvBuf {
    pub fn new(rcv_nxt: u64, cap: u64) -> RecvBuf {
        RecvBuf {
            rcv_nxt,
            ready: VecDeque::new(),
            ready_bytes: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            cap,
        }
    }

    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes ready for the application.
    pub fn available(&self) -> u64 {
        self.ready_bytes
    }

    /// Window to advertise: free buffer not holding ready or out-of-order
    /// data.
    pub fn window(&self) -> u64 {
        self.cap.saturating_sub(self.ready_bytes + self.ooo_bytes)
    }

    /// Accept a data segment. Returns `true` if `rcv_nxt` advanced (an
    /// in-order delivery, possibly also draining reassembled segments);
    /// `false` for pure out-of-order, duplicate, or out-of-window data —
    /// cases that should elicit an immediate (duplicate) ACK.
    pub fn on_segment(&mut self, seq: u64, mut data: Bytes) -> bool {
        if data.is_empty() {
            return false;
        }
        let mut seq = seq;
        // Trim any prefix we already have.
        if seq < self.rcv_nxt {
            let overlap = (self.rcv_nxt - seq).min(data.len() as u64) as usize;
            data = data.slice(overlap..);
            seq = self.rcv_nxt;
            if data.is_empty() {
                return false; // pure duplicate
            }
        }
        // Enforce the window: drop bytes beyond what we advertised.
        let limit = self.rcv_nxt + self.window();
        if seq >= limit {
            return false;
        }
        let max_len = (limit - seq) as usize;
        if data.len() > max_len {
            data = data.slice(..max_len);
        }

        if seq == self.rcv_nxt {
            self.deliver(data);
            self.drain_ooo();
            true
        } else {
            self.insert_ooo(seq, data);
            false
        }
    }

    fn deliver(&mut self, data: Bytes) {
        self.rcv_nxt += data.len() as u64;
        self.ready_bytes += data.len() as u64;
        self.ready.push_back(data);
    }

    /// Move newly contiguous out-of-order segments into the ready queue.
    fn drain_ooo(&mut self) {
        while let Some((&seq, _)) = self.ooo.first_key_value() {
            if seq > self.rcv_nxt {
                break;
            }
            let (seq, data) = self.ooo.pop_first().expect("checked nonempty");
            self.ooo_bytes -= data.len() as u64;
            if seq + data.len() as u64 <= self.rcv_nxt {
                continue; // fully duplicate (shouldn't occur, but harmless)
            }
            let skip = (self.rcv_nxt - seq) as usize;
            self.deliver(data.slice(skip..));
        }
    }

    /// Insert an out-of-order segment, trimming overlap with existing
    /// entries so the non-overlap invariant holds.
    fn insert_ooo(&mut self, mut seq: u64, mut data: Bytes) {
        // Trim against the predecessor.
        if let Some((&pseq, pdata)) = self.ooo.range(..=seq).next_back() {
            let pend = pseq + pdata.len() as u64;
            if pend > seq {
                let cut = ((pend - seq) as usize).min(data.len());
                data = data.slice(cut..);
                seq = pend;
            }
        }
        // Trim against successors.
        while !data.is_empty() {
            let end = seq + data.len() as u64;
            let Some((nseq, ncover)) = self
                .ooo
                .range(seq..)
                .next()
                .map(|(&s, d)| (s, s + d.len() as u64))
            else {
                break;
            };
            if nseq >= end {
                break;
            }
            if nseq <= seq {
                // Successor already covers our start (can happen after
                // predecessor trim when nseq == seq).
                if ncover >= end {
                    return; // fully covered
                }
                let cut = ((ncover - seq) as usize).min(data.len());
                data = data.slice(cut..);
                seq = ncover;
            } else {
                // Keep our prefix up to the successor, then continue with
                // the remainder after the successor.
                let keep = (nseq - seq) as usize;
                let head = data.slice(..keep);
                self.ooo_bytes += head.len() as u64;
                self.ooo.insert(seq, head);
                let cut = (((ncover - seq) as usize).min(data.len())).max(keep);
                data = data.slice(cut..);
                seq = ncover;
            }
        }
        if !data.is_empty() {
            self.ooo_bytes += data.len() as u64;
            self.ooo.insert(seq, data);
        }
    }

    /// Hand up to `max` ready bytes to the application.
    pub fn read(&mut self, max: usize) -> Bytes {
        if max == 0 || self.ready_bytes == 0 {
            return Bytes::new();
        }
        // Fast path: single chunk satisfies the read.
        let single = self.ready.len() == 1;
        if let Some(front) = self.ready.front_mut() {
            if front.len() >= max || single {
                let take = front.len().min(max);
                let out = front.slice(..take);
                if take == front.len() {
                    self.ready.pop_front();
                } else {
                    *front = front.slice(take..);
                }
                self.ready_bytes -= take as u64;
                return out;
            }
        }
        let mut out = BytesMut::with_capacity(max.min(self.ready_bytes as usize));
        let mut remaining = max;
        while remaining > 0 {
            let Some(front) = self.ready.front_mut() else {
                break;
            };
            let take = front.len().min(remaining);
            out.extend_from_slice(&front[..take]);
            if take == front.len() {
                self.ready.pop_front();
            } else {
                *front = front.slice(take..);
            }
            self.ready_bytes -= take as u64;
            remaining -= take;
        }
        out.freeze()
    }

    /// True when out-of-order data is being held (a hole exists).
    pub fn has_holes(&self) -> bool {
        !self.ooo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(start: u8, len: usize) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| start.wrapping_add(i as u8))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn in_order_delivery() {
        let mut b = RecvBuf::new(0, 1000);
        assert!(b.on_segment(0, payload(0, 100)));
        assert!(b.on_segment(100, payload(100, 100)));
        assert_eq!(b.rcv_nxt(), 200);
        assert_eq!(b.available(), 200);
        let r = b.read(150);
        assert_eq!(r.len(), 150);
        assert_eq!(r[0], 0);
        assert_eq!(b.available(), 50);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut b = RecvBuf::new(0, 1000);
        assert!(!b.on_segment(100, payload(100, 100))); // hole at 0
        assert!(b.has_holes());
        assert_eq!(b.available(), 0);
        assert!(b.on_segment(0, payload(0, 100))); // fills the hole
        assert!(!b.has_holes());
        assert_eq!(b.rcv_nxt(), 200);
        let r = b.read(200);
        assert_eq!(&r[..], &payload(0, 200)[..]);
    }

    #[test]
    fn duplicate_segments_ignored() {
        let mut b = RecvBuf::new(0, 1000);
        assert!(b.on_segment(0, payload(0, 100)));
        assert!(!b.on_segment(0, payload(0, 100)));
        assert!(!b.on_segment(50, payload(50, 50)));
        assert_eq!(b.available(), 100);
    }

    #[test]
    fn partial_overlap_trims_prefix() {
        let mut b = RecvBuf::new(0, 1000);
        assert!(b.on_segment(0, payload(0, 100)));
        // [50, 150): first 50 duplicate, last 50 new.
        assert!(b.on_segment(50, payload(50, 100)));
        assert_eq!(b.rcv_nxt(), 150);
        assert_eq!(&b.read(150)[..], &payload(0, 150)[..]);
    }

    #[test]
    fn window_excludes_buffered_and_ooo() {
        let mut b = RecvBuf::new(0, 1000);
        b.on_segment(0, payload(0, 300));
        assert_eq!(b.window(), 700);
        b.on_segment(500, payload(0, 200)); // ooo
        assert_eq!(b.window(), 500);
        b.read(300);
        assert_eq!(b.window(), 800);
    }

    #[test]
    fn data_beyond_window_dropped() {
        let mut b = RecvBuf::new(0, 100);
        assert!(b.on_segment(0, payload(0, 100)));
        assert_eq!(b.window(), 0);
        // Entirely beyond the closed window: rejected.
        assert!(!b.on_segment(100, payload(0, 50)));
        assert_eq!(b.rcv_nxt(), 100);
        // Reading reopens the window.
        b.read(100);
        assert!(b.on_segment(100, payload(0, 50)));
    }

    #[test]
    fn segment_straddling_window_edge_is_clipped() {
        let mut b = RecvBuf::new(0, 100);
        assert!(b.on_segment(0, payload(0, 60)));
        // 60..160 offered but only 40 fit.
        assert!(b.on_segment(60, payload(60, 100)));
        assert_eq!(b.rcv_nxt(), 100);
        assert_eq!(b.available(), 100);
    }

    #[test]
    fn overlapping_ooo_segments_reassemble_exactly_once() {
        let mut b = RecvBuf::new(0, 10_000);
        // Overlapping jumble: [200,300), [250,400), [150,260).
        assert!(!b.on_segment(200, payload(200, 100)));
        assert!(!b.on_segment(250, payload(250, 150)));
        assert!(!b.on_segment(150, payload(150, 110)));
        // Fill the head.
        assert!(b.on_segment(0, payload(0, 150)));
        assert_eq!(b.rcv_nxt(), 400);
        assert_eq!(&b.read(400)[..], &payload(0, 400)[..]);
    }

    #[test]
    fn empty_segment_is_noop() {
        let mut b = RecvBuf::new(0, 100);
        assert!(!b.on_segment(0, Bytes::new()));
        assert_eq!(b.rcv_nxt(), 0);
    }

    #[test]
    fn read_zero_and_read_empty() {
        let mut b = RecvBuf::new(0, 100);
        assert_eq!(b.read(10).len(), 0);
        b.on_segment(0, payload(0, 10));
        assert_eq!(b.read(0).len(), 0);
        assert_eq!(b.read(100).len(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Delivering any permutation of (possibly overlapping) segments
        /// of a stream yields exactly the original stream, in order.
        #[test]
        fn reassembly_reconstructs_stream(
            stream_len in 1usize..2000,
            pieces in proptest::collection::vec((0usize..2000, 1usize..400), 1..80),
            seed in any::<u64>(),
        ) {
            let stream: Vec<u8> = (0..stream_len).map(|i| (i * 13 % 251) as u8).collect();
            let mut b = RecvBuf::new(0, 1 << 20);
            // Offer pieces in arbitrary order (from the generator), then
            // sweep in order to guarantee completeness.
            let _ = seed;
            for (start, len) in pieces {
                let s = start.min(stream_len - 1);
                let e = (s + len).min(stream_len);
                b.on_segment(s as u64, Bytes::from(stream[s..e].to_vec()));
            }
            let mut off = 0usize;
            while off < stream_len {
                let e = (off + 321).min(stream_len);
                b.on_segment(off as u64, Bytes::from(stream[off..e].to_vec()));
                off = e;
            }
            prop_assert_eq!(b.rcv_nxt(), stream_len as u64);
            let got = b.read(stream_len);
            prop_assert_eq!(&got[..], &stream[..]);
            prop_assert!(!b.has_holes());
        }

        /// Window accounting never goes negative and capacity is
        /// conserved: ready + ooo + window == cap.
        #[test]
        fn window_conservation(
            segs in proptest::collection::vec((0u64..5000, 1usize..600), 1..60),
        ) {
            let cap = 4096u64;
            let mut b = RecvBuf::new(0, cap);
            for (seq, len) in segs {
                let data = Bytes::from(vec![0u8; len]);
                b.on_segment(seq, data);
                prop_assert!(b.window() <= cap);
                // available + ooo + window == cap always
                let ooo = cap - b.available() - b.window();
                prop_assert!(ooo as i64 >= 0);
            }
        }
    }
}
