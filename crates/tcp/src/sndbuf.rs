//! The send buffer: unacknowledged and unsent outbound bytes.
//!
//! Data is stored as a queue of [`Bytes`] chunks with a sequence-space
//! base, so acknowledgments drop whole chunks by reference count and
//! (re)transmissions slice without copying.

use bytes::{Bytes, BytesMut};
use std::collections::VecDeque;

/// Outbound byte stream between `snd_una` and the last byte the
/// application has written.
#[derive(Debug, Default)]
pub struct SendBuf {
    /// Sequence number of the first byte held (== snd_una in data space).
    base: u64,
    chunks: VecDeque<Bytes>,
    len: u64,
    cap: u64,
}

#[cfg_attr(not(test), allow(dead_code))] // len/is_empty/base_seq are test/diagnostic helpers
impl SendBuf {
    pub fn new(base: u64, cap: u64) -> SendBuf {
        SendBuf {
            base,
            chunks: VecDeque::new(),
            len: 0,
            cap,
        }
    }

    /// Bytes currently buffered (acked bytes are gone).
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free space for further application writes.
    pub fn space(&self) -> u64 {
        self.cap - self.len
    }

    /// Sequence number one past the last buffered byte.
    pub fn end_seq(&self) -> u64 {
        self.base + self.len
    }

    pub fn base_seq(&self) -> u64 {
        self.base
    }

    /// Append as much of `data` as fits; returns the number of bytes
    /// accepted (cheap slice, no copy).
    pub fn write(&mut self, data: &Bytes) -> usize {
        let take = (self.space().min(data.len() as u64)) as usize;
        if take > 0 {
            self.chunks.push_back(data.slice(..take));
            self.len += take as u64;
        }
        take
    }

    /// Copy out the byte range `[seq, seq+len)` for (re)transmission.
    /// Single-chunk ranges are zero-copy slices; ranges spanning chunks
    /// are concatenated. Panics if the range is not fully buffered —
    /// the caller's sequence accounting must be exact.
    pub fn read(&self, seq: u64, len: u32) -> Bytes {
        let len = len as u64;
        assert!(
            seq >= self.base && seq + len <= self.end_seq(),
            "read [{}, {}) outside buffered [{}, {})",
            seq,
            seq + len,
            self.base,
            self.end_seq()
        );
        let mut off = seq - self.base;
        let mut remaining = len;
        let mut out: Option<BytesMut> = None;
        let mut first: Option<Bytes> = None;
        for chunk in &self.chunks {
            let clen = chunk.len() as u64;
            if off >= clen {
                off -= clen;
                continue;
            }
            let take = remaining.min(clen - off);
            let piece = chunk.slice(off as usize..(off + take) as usize);
            remaining -= take;
            off = 0;
            match (&mut out, &first) {
                (None, None) => first = Some(piece),
                (None, Some(_)) => {
                    let mut b = BytesMut::with_capacity(len as usize);
                    b.extend_from_slice(&first.take().expect("first set"));
                    b.extend_from_slice(&piece);
                    out = Some(b);
                }
                (Some(b), _) => b.extend_from_slice(&piece),
            }
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0);
        match out {
            Some(b) => b.freeze(),
            None => first.unwrap_or_default(),
        }
    }

    /// Acknowledge everything below `seq`: advance the base and release
    /// covered chunks.
    pub fn ack_to(&mut self, seq: u64) {
        if seq <= self.base {
            return;
        }
        let mut advance = (seq - self.base).min(self.len);
        self.base += advance;
        self.len -= advance;
        while advance > 0 {
            let front = self.chunks.front_mut().expect("accounting mismatch");
            let clen = front.len() as u64;
            if clen <= advance {
                advance -= clen;
                self.chunks.pop_front();
            } else {
                let keep = front.slice(advance as usize..);
                *front = keep;
                advance = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> SendBuf {
        SendBuf::new(100, 1000)
    }

    #[test]
    fn write_respects_capacity() {
        let mut b = buf();
        assert_eq!(b.write(&Bytes::from(vec![1u8; 600])), 600);
        assert_eq!(b.write(&Bytes::from(vec![2u8; 600])), 400);
        assert_eq!(b.write(&Bytes::from(vec![3u8; 10])), 0);
        assert_eq!(b.len(), 1000);
        assert_eq!(b.space(), 0);
        assert_eq!(b.end_seq(), 1100);
    }

    #[test]
    fn read_within_single_chunk_is_identity() {
        let mut b = buf();
        b.write(&Bytes::from((0u8..100).collect::<Vec<_>>()));
        let r = b.read(110, 20);
        assert_eq!(&r[..], (10u8..30).collect::<Vec<_>>());
    }

    #[test]
    fn read_across_chunks_concatenates() {
        let mut b = buf();
        b.write(&Bytes::from(vec![1u8; 50]));
        b.write(&Bytes::from(vec![2u8; 50]));
        b.write(&Bytes::from(vec![3u8; 50]));
        let r = b.read(140, 70);
        assert_eq!(r.len(), 70);
        assert_eq!(&r[..10], &[1u8; 10]);
        assert_eq!(&r[10..60], &[2u8; 50]);
        assert_eq!(&r[60..], &[3u8; 10]);
    }

    #[test]
    fn ack_releases_and_retains_partial_chunk() {
        let mut b = buf();
        b.write(&Bytes::from(vec![1u8; 50]));
        b.write(&Bytes::from(vec![2u8; 50]));
        b.ack_to(175); // releases chunk 1 and half of chunk 2
        assert_eq!(b.base_seq(), 175);
        assert_eq!(b.len(), 25);
        assert_eq!(&b.read(175, 25)[..], &[2u8; 25]);
        // Stale (already-acked) ack is a no-op.
        b.ack_to(120);
        assert_eq!(b.base_seq(), 175);
    }

    #[test]
    fn ack_all_empties() {
        let mut b = buf();
        b.write(&Bytes::from(vec![9u8; 30]));
        b.ack_to(130);
        assert!(b.is_empty());
        assert_eq!(b.end_seq(), 130);
        assert_eq!(b.space(), 1000);
    }

    #[test]
    #[should_panic(expected = "outside buffered")]
    fn read_beyond_end_panics() {
        let mut b = buf();
        b.write(&Bytes::from(vec![0u8; 10]));
        b.read(105, 10);
    }

    #[test]
    fn zero_len_read() {
        let mut b = buf();
        b.write(&Bytes::from(vec![0u8; 10]));
        assert_eq!(b.read(105, 0).len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary interleavings of write/ack preserve the byte stream:
        /// reading any buffered range returns exactly the bytes written
        /// at those stream offsets.
        #[test]
        fn stream_consistency(ops in proptest::collection::vec((1usize..200, any::<bool>()), 1..60)) {
            let mut model: Vec<u8> = Vec::new(); // entire stream ever written
            let mut acked = 0u64;
            let mut b = SendBuf::new(0, 4096);
            let mut next_byte = 0u8;
            for (n, is_write) in ops {
                if is_write {
                    let data: Vec<u8> = (0..n).map(|_| { next_byte = next_byte.wrapping_add(1); next_byte }).collect();
                    let accepted = b.write(&Bytes::from(data.clone()));
                    model.extend_from_slice(&data[..accepted]);
                } else {
                    let target = (acked + n as u64).min(model.len() as u64);
                    b.ack_to(target);
                    acked = acked.max(target);
                }
                prop_assert_eq!(b.base_seq(), acked);
                prop_assert_eq!(b.end_seq(), model.len() as u64);
                // Read the whole live range and compare to the model.
                let live = (model.len() as u64 - acked) as usize;
                if live > 0 {
                    let r = b.read(acked, live as u32);
                    prop_assert_eq!(&r[..], &model[acked as usize..]);
                }
            }
        }
    }
}
