//! Retransmission-timeout estimation: Jacobson/Karels smoothing with
//! Karn's rule and exponential backoff (RFC 6298 structure, Linux-like
//! bounds from [`crate::TcpConfig`]).

use lsl_netsim::Dur;

/// SRTT/RTTVAR estimator plus the current backed-off RTO.
#[derive(Clone, Debug)]
pub struct RtoEstimator {
    srtt: Option<Dur>,
    rttvar: Dur,
    /// Base RTO before backoff.
    rto: Dur,
    /// Current backoff exponent (0 = no backoff).
    backoff: u32,
    min_rto: Dur,
    max_rto: Dur,
}

impl RtoEstimator {
    pub fn new(initial_rto: Dur, min_rto: Dur, max_rto: Dur) -> RtoEstimator {
        RtoEstimator {
            srtt: None,
            rttvar: Dur::ZERO,
            rto: initial_rto,
            backoff: 0,
            min_rto,
            max_rto,
        }
    }

    /// Incorporate an RTT sample from a segment that was *not*
    /// retransmitted (Karn's rule is enforced by the caller, which owns
    /// the retransmission knowledge). Resets backoff: a valid sample
    /// means the network is delivering again.
    pub fn on_sample(&mut self, rtt: Dur) {
        match self.srtt {
            None => {
                // RFC 6298 (2.2): SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                // SRTT   = 7/8 SRTT   + 1/8 R
                let delta = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + delta.mul_f64(0.25);
                self.srtt = Some(srtt.mul_f64(7.0 / 8.0) + rtt.mul_f64(1.0 / 8.0));
            }
        }
        let srtt = self.srtt.expect("just set");
        // RTO = SRTT + max(G, 4*RTTVAR); clock granularity G is 0 here.
        self.rto = (srtt + self.rttvar * 4).max(self.min_rto).min(self.max_rto);
        self.backoff = 0;
    }

    /// Exponentially back off after a timeout.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// The RTO to arm now, including backoff.
    pub fn current(&self) -> Dur {
        let shifted = self
            .rto
            .0
            .checked_shl(self.backoff)
            .unwrap_or(self.max_rto.0);
        Dur(shifted).min(self.max_rto)
    }

    /// Smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt
    }

    pub fn backoff_count(&self) -> u32 {
        self.backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RtoEstimator {
        RtoEstimator::new(
            Dur::from_secs(1),
            Dur::from_millis(200),
            Dur::from_secs(120),
        )
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.on_sample(Dur::from_millis(100));
        assert_eq!(e.srtt(), Some(Dur::from_millis(100)));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.current(), Dur::from_millis(300));
    }

    #[test]
    fn min_rto_floor() {
        let mut e = est();
        e.on_sample(Dur::from_millis(10));
        // 10 + 4*5 = 30 ms < 200 ms floor.
        assert_eq!(e.current(), Dur::from_millis(200));
    }

    #[test]
    fn smoothing_converges_to_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.on_sample(Dur::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 80.0).abs() < 1.0, "{srtt:?}");
        // With zero variance the floor binds.
        assert_eq!(e.current(), Dur::from_millis(200));
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = est();
        for i in 0..50 {
            e.on_sample(Dur::from_millis(if i % 2 == 0 { 50 } else { 250 }));
        }
        assert!(e.current() > Dur::from_millis(300));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.on_sample(Dur::from_millis(100)); // RTO 300 ms
        e.on_timeout();
        assert_eq!(e.current(), Dur::from_millis(600));
        e.on_timeout();
        assert_eq!(e.current(), Dur::from_millis(1200));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.current(), Dur::from_secs(120)); // capped
                                                      // A fresh sample resets backoff; RTTVAR has decayed to 37.5 ms
                                                      // (0.75 × 50) so RTO = 100 + 4 × 37.5 = 250 ms.
        e.on_sample(Dur::from_millis(100));
        assert_eq!(e.current(), Dur::from_millis(250));
        assert_eq!(e.backoff_count(), 0);
    }

    #[test]
    fn initial_rto_used_before_samples() {
        let e = est();
        assert_eq!(e.current(), Dur::from_secs(1));
        assert_eq!(e.srtt(), None);
    }
}
