//! The transmission control block (TCB): one connection's full state
//! machine — handshake, data transfer, congestion control, loss
//! recovery, flow control and teardown.

use bytes::Bytes;
use lsl_netsim::{NodeId, Packet, Simulator, Time, TimerHandle};
use lsl_trace::{ConnTrace, Dir, SegFlags, SegRecord};

use crate::cc::{Cc, CcAction};
use crate::config::TcpConfig;
use crate::rcvbuf::RecvBuf;
use crate::rto::RtoEstimator;
use crate::segment::{Flags, Segment};
use crate::sndbuf::SendBuf;

/// Connection states (RFC 793 §3.2; LISTEN lives in the stack).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    TimeWait,
    Closed,
}

impl TcpState {
    /// May the local application still enqueue data?
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// Is the connection fully over?
    pub fn is_closed(self) -> bool {
        self == TcpState::Closed
    }
}

/// Terminal connection errors surfaced to the application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpError {
    /// Connection attempt rejected (RST in SYN-SENT).
    Refused,
    /// Reset by peer after establishment.
    Reset,
    /// Retransmissions exhausted.
    TimedOut,
}

/// Readiness notifications delivered through [`crate::Net::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SockEvent {
    /// Active open completed.
    Connected,
    /// A listener produced an established connection.
    Accepted { conn: crate::net::SockId },
    /// New in-order data is available to read.
    Readable,
    /// Send-buffer space opened after a full-buffer `send`.
    Writable,
    /// Peer closed its sending direction (EOF after draining).
    PeerFin,
    /// Connection fully closed.
    Closed,
    /// Connection failed.
    Error(TcpError),
}

/// Timer kinds multiplexed into netsim timer tokens.
pub(crate) const TIMER_RTO: u64 = 0;
pub(crate) const TIMER_DELACK: u64 = 1;
pub(crate) const TIMER_TIMEWAIT: u64 = 2;

/// Mutable context the stack lends to TCB operations.
pub(crate) struct Ctx<'a> {
    pub sim: &'a mut Simulator,
    pub node: NodeId,
    /// Slot index of this TCB in its stack.
    pub idx: u32,
    pub events: &'a mut Vec<(u32, SockEvent)>,
}

impl Ctx<'_> {
    fn timer_token(&self, kind: u64) -> u64 {
        (self.idx as u64) << 3 | kind
    }

    fn push(&mut self, ev: SockEvent) {
        self.events.push((self.idx, ev));
    }
}

/// One connection's state.
pub(crate) struct Tcb {
    pub state: TcpState,
    pub cfg: TcpConfig,
    pub local_port: u16,
    pub peer: NodeId,
    pub peer_port: u16,
    /// Listener slot that spawned this connection (passive open).
    pub parent_listener: Option<u32>,

    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    /// Highest sequence ever sent; `snd_nxt` can fall below it after the
    /// post-RTO go-back-N rollback, and anything below it is a
    /// retransmission for trace purposes.
    snd_max: u64,
    /// Peer's advertised window.
    snd_wnd: u64,
    sndbuf: SendBuf,
    cc: Cc,
    rto: RtoEstimator,
    rto_timer: Option<TimerHandle>,
    /// One in-flight RTT sample: (sequence the ACK must reach, send time).
    rtt_sample: Option<(u64, Time)>,
    /// Consecutive RTO expirations without progress.
    retx_count: u32,
    /// Effective MSS (min of ours and the peer's SYN option).
    mss: u32,
    app_closed: bool,
    fin_seq: Option<u64>,

    // --- receive side ---
    rcvbuf: RecvBuf,
    /// Peer's FIN has been consumed (rcv side sequence includes it).
    rcv_fin: bool,
    delack_timer: Option<TimerHandle>,
    segs_since_ack: u32,
    last_adv_wnd: u64,
    time_wait_timer: Option<TimerHandle>,

    // --- app readiness edge-triggers ---
    want_write: bool,

    pub trace: Option<ConnTrace>,
}

impl Tcb {
    /// Active open: construct and send the SYN.
    pub fn connect(
        ctx: &mut Ctx,
        cfg: TcpConfig,
        local_port: u16,
        peer: NodeId,
        peer_port: u16,
    ) -> Tcb {
        cfg.check();
        let mut tcb = Tcb::new_raw(cfg, local_port, peer, peer_port, TcpState::SynSent, None);
        tcb.send_syn(ctx, false);
        tcb.arm_rto(ctx);
        tcb
    }

    /// Passive open: a listener received this SYN.
    pub fn accept_syn(
        ctx: &mut Ctx,
        cfg: TcpConfig,
        local_port: u16,
        peer: NodeId,
        peer_port: u16,
        syn: &Segment,
        parent: u32,
    ) -> Tcb {
        cfg.check();
        let mut tcb = Tcb::new_raw(
            cfg,
            local_port,
            peer,
            peer_port,
            TcpState::SynRcvd,
            Some(parent),
        );
        tcb.handle_peer_syn(syn);
        tcb.send_syn(ctx, true);
        tcb.arm_rto(ctx);
        tcb
    }

    fn new_raw(
        cfg: TcpConfig,
        local_port: u16,
        peer: NodeId,
        peer_port: u16,
        state: TcpState,
        parent_listener: Option<u32>,
    ) -> Tcb {
        let cc = Cc::new(cfg.algo, cfg.mss, cfg.init_cwnd(), cfg.init_ssthresh);
        let rto = RtoEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto);
        let last_adv_wnd = cfg.recv_buf;
        Tcb {
            state,
            local_port,
            peer,
            peer_port,
            parent_listener,
            snd_una: 0,
            snd_nxt: 1, // SYN occupies sequence 0
            snd_max: 1,
            snd_wnd: 0,
            sndbuf: SendBuf::new(1, cfg.send_buf),
            cc,
            rto,
            rto_timer: None,
            rtt_sample: None,
            retx_count: 0,
            mss: cfg.mss,
            app_closed: false,
            fin_seq: None,
            rcvbuf: RecvBuf::new(1, cfg.recv_buf), // re-based on peer ISS (0 by convention)
            rcv_fin: false,
            delack_timer: None,
            segs_since_ack: 0,
            last_adv_wnd,
            time_wait_timer: None,
            want_write: false,
            trace: None,
            cfg,
        }
    }

    fn handle_peer_syn(&mut self, syn: &Segment) {
        // Both ends use ISS 0, so the receive space always starts at 1.
        debug_assert_eq!(syn.seq, 0, "simulator TCP uses ISS 0");
        if let Some(peer_mss) = syn.mss {
            self.mss = self.mss.min(peer_mss as u32);
        }
        self.snd_wnd = syn.wnd;
    }

    // ------------------------------------------------------------------
    // Segment emission
    // ------------------------------------------------------------------

    /// Current acknowledgment number: everything received in order,
    /// including the peer's FIN once consumed.
    fn rcv_ack(&self) -> u64 {
        self.rcvbuf.rcv_nxt() + self.rcv_fin as u64
    }

    fn emit(&mut self, ctx: &mut Ctx, seq: u64, flags: Flags, data: Bytes, retx: bool) {
        let wnd = self.rcvbuf.window();
        let seg = Segment {
            src_port: self.local_port,
            dst_port: self.peer_port,
            seq,
            ack: if flags.ack { self.rcv_ack() } else { 0 },
            flags,
            wnd,
            mss: flags
                .syn
                .then_some(self.cfg.mss.min(u16::MAX as u32) as u16),
        };
        if let Some(trace) = &mut self.trace {
            trace.push(SegRecord {
                t: ctx.sim.now(),
                dir: Dir::Tx,
                seq,
                ack: seg.ack,
                len: data.len() as u32,
                flags: SegFlags {
                    syn: flags.syn,
                    fin: flags.fin,
                    ack: flags.ack,
                    rst: flags.rst,
                },
                retx,
            });
        }
        if flags.ack {
            self.last_adv_wnd = wnd;
            self.segs_since_ack = 0;
            self.cancel_delack(ctx);
        }
        let packet = Packet::tcp(ctx.node, self.peer, seg.encode(), data);
        ctx.sim.send(ctx.node, packet);
    }

    fn send_syn(&mut self, ctx: &mut Ctx, is_syn_ack: bool) {
        let flags = if is_syn_ack {
            Flags::SYN_ACK
        } else {
            Flags::SYN
        };
        self.emit(ctx, 0, flags, Bytes::new(), self.retx_count > 0);
    }

    fn send_ack(&mut self, ctx: &mut Ctx) {
        self.emit(ctx, self.snd_nxt, Flags::ACK, Bytes::new(), false);
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        if let Some(h) = self.rto_timer.take() {
            ctx.sim.cancel_timer(h);
        }
        let at = ctx.sim.now() + self.rto.current();
        self.rto_timer = Some(ctx.sim.set_timer(ctx.node, at, ctx.timer_token(TIMER_RTO)));
    }

    fn cancel_rto(&mut self, ctx: &mut Ctx) {
        if let Some(h) = self.rto_timer.take() {
            ctx.sim.cancel_timer(h);
        }
    }

    fn arm_delack(&mut self, ctx: &mut Ctx) {
        let Some(d) = self.cfg.delack else {
            self.send_ack(ctx);
            return;
        };
        if self.delack_timer.is_none() {
            let at = ctx.sim.now() + d;
            self.delack_timer = Some(ctx.sim.set_timer(
                ctx.node,
                at,
                ctx.timer_token(TIMER_DELACK),
            ));
        }
    }

    fn cancel_delack(&mut self, ctx: &mut Ctx) {
        if let Some(h) = self.delack_timer.take() {
            ctx.sim.cancel_timer(h);
        }
    }

    fn enter_time_wait(&mut self, ctx: &mut Ctx) {
        self.state = TcpState::TimeWait;
        self.cancel_rto(ctx);
        if self.time_wait_timer.is_none() {
            let at = ctx.sim.now() + self.cfg.time_wait;
            self.time_wait_timer = Some(ctx.sim.set_timer(
                ctx.node,
                at,
                ctx.timer_token(TIMER_TIMEWAIT),
            ));
        }
    }

    fn become_closed(&mut self, ctx: &mut Ctx, error: Option<TcpError>) {
        if self.state == TcpState::Closed {
            return;
        }
        self.state = TcpState::Closed;
        self.cancel_rto(ctx);
        self.cancel_delack(ctx);
        if let Some(h) = self.time_wait_timer.take() {
            ctx.sim.cancel_timer(h);
        }
        match error {
            Some(e) => ctx.push(SockEvent::Error(e)),
            None => ctx.push(SockEvent::Closed),
        }
    }

    // ------------------------------------------------------------------
    // Application interface (via the stack)
    // ------------------------------------------------------------------

    /// Enqueue outbound data; returns bytes accepted.
    pub fn send(&mut self, ctx: &mut Ctx, data: &Bytes) -> usize {
        if !self.state.can_send()
            && self.state != TcpState::SynSent
            && self.state != TcpState::SynRcvd
        {
            return 0;
        }
        if self.app_closed {
            return 0;
        }
        let n = self.sndbuf.write(data);
        if n < data.len() {
            self.want_write = true;
        }
        self.try_output(ctx);
        n
    }

    pub fn send_space(&self) -> u64 {
        if self.app_closed {
            0
        } else {
            self.sndbuf.space()
        }
    }

    /// Dequeue up to `max` in-order received bytes.
    pub fn recv(&mut self, ctx: &mut Ctx, max: usize) -> Bytes {
        let out = self.rcvbuf.read(max);
        if !out.is_empty() {
            self.maybe_window_update(ctx);
        }
        out
    }

    pub fn recv_available(&self) -> u64 {
        self.rcvbuf.available()
    }

    /// Peer FIN consumed and all data drained?
    pub fn at_eof(&self) -> bool {
        self.rcv_fin && self.rcvbuf.available() == 0
    }

    /// Graceful close of our sending direction; FIN goes out once the
    /// send buffer drains.
    pub fn close(&mut self, ctx: &mut Ctx) {
        if self.app_closed {
            return;
        }
        self.app_closed = true;
        self.want_write = false;
        if self.state == TcpState::SynSent {
            // Nothing established yet: just tear down.
            self.become_closed(ctx, None);
            return;
        }
        self.try_output(ctx);
    }

    /// Hard reset.
    pub fn abort(&mut self, ctx: &mut Ctx) {
        if self.state != TcpState::Closed {
            self.emit(ctx, self.snd_nxt, Flags::RST, Bytes::new(), false);
            self.become_closed(ctx, None);
        }
    }

    /// Fault injection: the host died. Cancel pending sim timers (they
    /// must not fire into a restarted stack) and silently forget the
    /// connection — no RST, no FIN, no socket event.
    pub(crate) fn crash(&mut self, sim: &mut Simulator) {
        if let Some(h) = self.rto_timer.take() {
            sim.cancel_timer(h);
        }
        if let Some(h) = self.delack_timer.take() {
            sim.cancel_timer(h);
        }
        if let Some(h) = self.time_wait_timer.take() {
            sim.cancel_timer(h);
        }
        self.state = TcpState::Closed;
    }

    /// After the application reads, re-advertise the window if it opened
    /// substantially (RFC 1122's SWS avoidance on the receive side).
    fn maybe_window_update(&mut self, ctx: &mut Ctx) {
        let wnd = self.rcvbuf.window();
        let threshold = (2 * self.mss as u64).min(self.cfg.recv_buf / 2);
        if wnd > self.last_adv_wnd && wnd - self.last_adv_wnd >= threshold {
            self.send_ack(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Output engine
    // ------------------------------------------------------------------

    /// Unacknowledged sequence span (includes virtual SYN/FIN octets).
    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Send-side structural invariants, audited after every ACK-driven
    /// transition (feature `invariants`): the sequence space must stay
    /// ordered (`snd_una ≤ snd_nxt ≤ snd_max`) and the congestion window
    /// bounded (at least one MSS so progress is always possible, and
    /// below a sanity ceiling that recovery inflation must never pierce).
    #[cfg(feature = "invariants")]
    fn check_invariants(&self, ctx: &Ctx) {
        lsl_netsim::invariant!(
            self.snd_una <= self.snd_nxt && self.snd_nxt <= self.snd_max,
            ctx.sim.now(),
            "tcp::socket",
            "seq-space-order",
            "snd_una {} / snd_nxt {} / snd_max {} out of order",
            self.snd_una,
            self.snd_nxt,
            self.snd_max
        );
        const CWND_CEILING: u64 = 1 << 30;
        lsl_netsim::invariant!(
            self.cc.cwnd >= self.mss as u64 && self.cc.cwnd <= CWND_CEILING,
            ctx.sim.now(),
            "tcp::cc",
            "cwnd-bounds",
            "cwnd {} outside [{}, {}]",
            self.cc.cwnd,
            self.mss,
            CWND_CEILING
        );
    }

    /// Push out as much as the congestion and flow-control windows allow.
    pub fn try_output(&mut self, ctx: &mut Ctx) {
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return;
        }
        loop {
            let avail = self.sndbuf.end_seq().saturating_sub(self.snd_nxt);
            if avail > 0 {
                let wnd = self.cc.cwnd.min(self.snd_wnd);
                let flight = self.flight();
                let usable = wnd.saturating_sub(flight);
                let mut len = avail.min(usable).min(self.mss as u64);
                // Zero-window probe: with nothing in flight, force one
                // byte out so the RTO machinery keeps probing until the
                // peer reopens (classic persist behaviour).
                if len == 0 && self.snd_wnd == 0 && flight == 0 {
                    len = 1;
                }
                if len == 0 {
                    break;
                }
                let data = self.sndbuf.read(self.snd_nxt, len as u32);
                let seq = self.snd_nxt;
                self.snd_nxt += len;
                let retx = seq < self.snd_max;
                self.snd_max = self.snd_max.max(self.snd_nxt);
                self.emit(ctx, seq, Flags::ACK, data, retx);
                if self.rtt_sample.is_none() && !retx {
                    self.rtt_sample = Some((self.snd_nxt, ctx.sim.now()));
                }
                if self.rto_timer.is_none() {
                    self.arm_rto(ctx);
                }
                continue;
            }
            break;
        }
        // FIN once the application closed and everything is out.
        if self.app_closed && self.snd_nxt == self.sndbuf.end_seq() {
            match self.fin_seq {
                None if matches!(self.state, TcpState::Established | TcpState::CloseWait) => {
                    let seq = self.snd_nxt;
                    self.fin_seq = Some(seq);
                    self.snd_nxt += 1;
                    self.snd_max = self.snd_max.max(self.snd_nxt);
                    self.emit(ctx, seq, Flags::FIN_ACK, Bytes::new(), false);
                    self.state = match self.state {
                        TcpState::Established => TcpState::FinWait1,
                        TcpState::CloseWait => TcpState::LastAck,
                        s => s,
                    };
                    if self.rto_timer.is_none() {
                        self.arm_rto(ctx);
                    }
                }
                // Post-rollback: the FIN position was reached again, so
                // re-emit it (state already transitioned the first time).
                Some(f) if f == self.snd_nxt => {
                    self.snd_nxt += 1;
                    self.emit(ctx, f, Flags::FIN_ACK, Bytes::new(), true);
                    if self.rto_timer.is_none() {
                        self.arm_rto(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    /// Retransmit the first unacknowledged segment (fast retransmit, RTO,
    /// or a NewReno hole fill).
    fn retransmit_one(&mut self, ctx: &mut Ctx) {
        // Invalidate any RTT sample overlapping the retransmission (Karn).
        self.rtt_sample = None;
        if self.state == TcpState::SynSent {
            self.send_syn(ctx, false);
            return;
        }
        if self.state == TcpState::SynRcvd {
            self.send_syn(ctx, true);
            return;
        }
        if let Some(fin) = self.fin_seq {
            if self.snd_una == fin {
                self.emit(ctx, fin, Flags::FIN_ACK, Bytes::new(), true);
                return;
            }
        }
        let end = self.sndbuf.end_seq();
        let len = (end.saturating_sub(self.snd_una)).min(self.mss as u64);
        if len == 0 {
            return;
        }
        let data = self.sndbuf.read(self.snd_una, len as u32);
        self.emit(ctx, self.snd_una, Flags::ACK, data, true);
    }

    // ------------------------------------------------------------------
    // Timer expirations (dispatched by the stack)
    // ------------------------------------------------------------------

    pub fn on_timer(&mut self, ctx: &mut Ctx, kind: u64) {
        match kind {
            TIMER_RTO => self.on_rto(ctx),
            TIMER_DELACK => {
                self.delack_timer = None;
                if self.state != TcpState::Closed {
                    self.send_ack(ctx);
                }
            }
            TIMER_TIMEWAIT => {
                self.time_wait_timer = None;
                self.become_closed(ctx, None);
            }
            _ => unreachable!("unknown timer kind {kind}"),
        }
    }

    fn on_rto(&mut self, ctx: &mut Ctx) {
        self.rto_timer = None;
        match self.state {
            TcpState::SynSent | TcpState::SynRcvd => {
                self.retx_count += 1;
                if self.retx_count > self.cfg.max_syn_retries {
                    self.become_closed(ctx, Some(TcpError::TimedOut));
                    return;
                }
                self.rto.on_timeout();
                self.retransmit_one(ctx);
                self.arm_rto(ctx);
            }
            TcpState::Closed | TcpState::TimeWait => {}
            _ => {
                if self.flight() == 0 {
                    return; // everything got acked in the meantime
                }
                self.retx_count += 1;
                if self.retx_count > self.cfg.max_data_retries {
                    self.become_closed(ctx, Some(TcpError::TimedOut));
                    return;
                }
                self.cc.on_rto(self.flight());
                lsl_obs::counter_add("tcp.retransmit.rto", 0, 1);
                self.rto.on_timeout();
                // Go-back-N: rewind to the first unacknowledged byte and
                // let the output engine resend under the collapsed cwnd.
                // The slow-start clock then recovers the rest of the lost
                // window instead of waiting out one backoff per hole.
                self.rtt_sample = None;
                self.snd_nxt = self.snd_una;
                self.try_output(ctx);
                self.arm_rto(ctx);
                #[cfg(feature = "invariants")]
                self.check_invariants(ctx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Segment arrival
    // ------------------------------------------------------------------

    pub fn on_segment(&mut self, ctx: &mut Ctx, seg: Segment, data: Bytes) {
        if let Some(trace) = &mut self.trace {
            trace.push(SegRecord {
                t: ctx.sim.now(),
                dir: Dir::Rx,
                seq: seg.seq,
                ack: seg.ack,
                len: data.len() as u32,
                flags: SegFlags {
                    syn: seg.flags.syn,
                    fin: seg.flags.fin,
                    ack: seg.flags.ack,
                    rst: seg.flags.rst,
                },
                retx: false,
            });
        }

        if seg.flags.rst {
            let err = if self.state == TcpState::SynSent {
                TcpError::Refused
            } else {
                TcpError::Reset
            };
            self.become_closed(ctx, Some(err));
            return;
        }

        match self.state {
            TcpState::Closed => {}
            TcpState::SynSent => self.on_segment_syn_sent(ctx, seg),
            TcpState::SynRcvd => self.on_segment_syn_rcvd(ctx, seg, data),
            TcpState::TimeWait => {
                // Retransmitted FIN: peer missed our ACK.
                if seg.flags.fin {
                    self.send_ack(ctx);
                }
            }
            _ => self.on_segment_established(ctx, seg, data),
        }
    }

    fn on_segment_syn_sent(&mut self, ctx: &mut Ctx, seg: Segment) {
        if seg.flags.syn && seg.flags.ack && seg.ack == 1 {
            self.handle_peer_syn(&seg);
            self.snd_una = 1;
            self.retx_count = 0;
            self.state = TcpState::Established;
            self.cancel_rto(ctx);
            self.send_ack(ctx);
            ctx.push(SockEvent::Connected);
            self.try_output(ctx);
        }
        // Bare SYN (simultaneous open) is out of scope: the experiment
        // drivers never do it, and RFC-correct handling would add states
        // without exercising anything the paper measures.
    }

    fn on_segment_syn_rcvd(&mut self, ctx: &mut Ctx, seg: Segment, data: Bytes) {
        if seg.flags.syn && !seg.flags.ack {
            // Duplicate SYN: our SYN-ACK was lost. RTO will resend.
            return;
        }
        if seg.flags.ack && seg.ack >= 1 {
            self.snd_una = self.snd_una.max(1);
            self.snd_wnd = seg.wnd;
            self.retx_count = 0;
            self.state = TcpState::Established;
            self.cancel_rto(ctx);
            let conn = crate::net::SockId {
                node: ctx.node,
                idx: ctx.idx,
            };
            if let Some(listener) = self.parent_listener {
                // Delivered against the listener socket by the stack.
                ctx.events.push((listener, SockEvent::Accepted { conn }));
            }
            // The handshake ACK may carry data already.
            if !data.is_empty() || seg.flags.fin {
                self.on_segment_established(ctx, seg, data);
            }
            self.try_output(ctx);
        }
    }

    fn on_segment_established(&mut self, ctx: &mut Ctx, seg: Segment, data: Bytes) {
        let data_len = data.len() as u64;
        let had_data = !data.is_empty();

        // --- ACK processing -------------------------------------------
        if seg.flags.ack {
            if seg.ack > self.snd_una && seg.ack <= self.snd_max {
                self.on_new_ack(ctx, &seg);
            } else if seg.ack == self.snd_una
                && self.flight() > 0
                && !had_data
                && !seg.flags.fin
                && seg.wnd == self.snd_wnd
            {
                // Classic duplicate ACK.
                match self.cc.on_dup_ack(self.snd_nxt, self.flight()) {
                    CcAction::FastRetransmit => {
                        lsl_obs::counter_add("tcp.retransmit.fast", 0, 1);
                        lsl_obs::hist_observe("tcp.cwnd_on_loss", self.cc.cwnd);
                        self.retransmit_one(ctx);
                        self.arm_rto(ctx);
                    }
                    _ => {
                        // Inflation may open room for new transmissions.
                        self.try_output(ctx);
                    }
                }
            } else {
                // Window update or stale ack: track the window and see if
                // transmission can resume.
                self.snd_wnd = seg.wnd;
                self.try_output(ctx);
            }
            #[cfg(feature = "invariants")]
            self.check_invariants(ctx);
        }

        // --- data processing ------------------------------------------
        if had_data {
            let advanced = self.rcvbuf.on_segment(seg.seq, data);
            if advanced {
                ctx.push(SockEvent::Readable);
                self.segs_since_ack += 1;
                // Immediate ACK every 2nd segment, or instantly when a
                // hole was just filled (fast-retransmit feedback).
                if self.segs_since_ack >= 2 || self.rcvbuf.has_holes() {
                    self.send_ack(ctx);
                } else {
                    self.arm_delack(ctx);
                }
            } else {
                // Out-of-order, duplicate or out-of-window: immediate
                // duplicate ACK so the sender's fast retransmit engages.
                self.send_ack(ctx);
            }
        }

        // --- FIN processing -------------------------------------------
        if seg.flags.fin && !self.rcv_fin {
            let fin_seq = seg.seq + data_len;
            if fin_seq == self.rcvbuf.rcv_nxt() {
                self.rcv_fin = true;
                self.send_ack(ctx);
                ctx.push(SockEvent::PeerFin);
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        // Our FIN not yet acked → simultaneous close.
                        self.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        self.enter_time_wait(ctx);
                        self.become_closed_if_instant(ctx);
                    }
                    _ => {}
                }
            }
            // Otherwise data is still missing; the FIN will come again.
        }
    }

    /// TIME-WAIT with a zero configured dwell collapses immediately
    /// (tests use this to avoid draining timers).
    fn become_closed_if_instant(&mut self, ctx: &mut Ctx) {
        if self.cfg.time_wait.is_zero() {
            self.become_closed(ctx, None);
        }
    }

    fn on_new_ack(&mut self, ctx: &mut Ctx, seg: &Segment) {
        let acked = seg.ack - self.snd_una;
        self.snd_una = seg.ack;
        // After a go-back-N rollback the peer may acknowledge past the
        // rewound snd_nxt (it had later data buffered): skip re-sending
        // what it already holds.
        self.snd_nxt = self.snd_nxt.max(seg.ack);
        self.snd_wnd = seg.wnd;
        self.retx_count = 0;

        // Release acknowledged payload (clamp to data space: the ack may
        // cover our FIN, which is not in the buffer).
        let data_end = self.sndbuf.end_seq();
        self.sndbuf.ack_to(seg.ack.min(data_end));

        // RTT sampling (Karn-safe: sample is dropped on retransmission).
        if let Some((target, sent_at)) = self.rtt_sample {
            if seg.ack >= target {
                self.rto.on_sample(ctx.sim.now() - sent_at);
                self.rtt_sample = None;
            }
        }

        if self.cc.on_new_ack(acked, self.snd_una) == CcAction::RetransmitHole {
            lsl_obs::counter_add("tcp.retransmit.hole", 0, 1);
            self.retransmit_one(ctx);
        }
        // Cwnd evolution sample: one histogram observation per
        // cumulative ACK (cheap: a thread-local flag check when the
        // recorder is off).
        lsl_obs::hist_observe("tcp.cwnd", self.cc.cwnd);

        // FIN-of-ours acknowledged?
        if let Some(fin) = self.fin_seq {
            if seg.ack > fin {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => {
                        self.enter_time_wait(ctx);
                        self.become_closed_if_instant(ctx);
                    }
                    TcpState::LastAck => {
                        self.become_closed(ctx, None);
                        return;
                    }
                    _ => {}
                }
            }
        }

        // Timer management: rearm while data is in flight.
        if self.flight() > 0 {
            self.arm_rto(ctx);
        } else {
            self.cancel_rto(ctx);
        }

        // Wake a blocked writer once per block.
        if self.want_write && self.sndbuf.space() > 0 && !self.app_closed {
            self.want_write = false;
            ctx.push(SockEvent::Writable);
        }

        self.try_output(ctx);
    }

    pub fn is_fully_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Smoothed RTT estimate (for NWS sensors).
    pub fn srtt(&self) -> Option<lsl_netsim::Dur> {
        self.rto.srtt()
    }

    /// Current congestion window in bytes (diagnostics/ablations).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd
    }
}
