//! [`Net`]: the socket API plus the event pump tying per-node TCP stacks
//! to the network simulator.

use std::collections::VecDeque;

use bytes::Bytes;
use lsl_netsim::{Dur, FaultEvent, FaultKind, NodeId, Output, Simulator, Time};
use lsl_trace::ConnTrace;

use crate::config::TcpConfig;
use crate::socket::{SockEvent, TcpState};
use crate::stack::TcpStack;

/// Identifies a socket: the node it lives on plus its slot there.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockId {
    pub node: NodeId,
    pub idx: u32,
}

/// Events surfaced to the experiment/application driver by [`Net::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// Socket readiness changed.
    Sock { sock: SockId, event: SockEvent },
    /// An application timer armed via [`Net::set_app_timer`] fired.
    Timer { node: NodeId, token: u64 },
    /// An installed fault fired. The TCP layer has already applied its
    /// side (a crashed node's stack is wiped, a sublink RST aborts its
    /// established connections); session layers react next.
    Fault(FaultEvent),
}

/// Application timers are distinguished from internal TCP timers by the
/// top token bit.
const APP_TIMER_BIT: u64 = 1 << 63;

/// The simulated internet: a [`Simulator`] plus one [`TcpStack`] per node
/// and a BSD-socket-shaped API. Drive it by alternating [`Net::poll`]
/// with socket calls.
pub struct Net {
    sim: Simulator,
    stacks: Vec<TcpStack>,
    pending: VecDeque<AppEvent>,
    /// Scratch buffer reused across dispatches.
    scratch: Vec<(u32, SockEvent)>,
}

impl Net {
    pub fn new(sim: Simulator) -> Net {
        let stacks = (0..sim.num_nodes())
            .map(|i| TcpStack::new(NodeId(i as u32)))
            .collect();
        Net {
            sim,
            stacks,
            pending: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Direct simulator access (link stats, route edits).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    // ------------------------------------------------------------------
    // Socket API
    // ------------------------------------------------------------------

    /// Bind a listener on `port`. Established connections arrive as
    /// [`SockEvent::Accepted`] events on the returned socket.
    pub fn listen(&mut self, node: NodeId, port: u16, cfg: TcpConfig) -> SockId {
        let idx = self.stacks[node.0 as usize].listen(port, cfg);
        SockId { node, idx }
    }

    /// Active open toward `peer:port`. Completion arrives as
    /// [`SockEvent::Connected`] (or an error event).
    pub fn connect(&mut self, node: NodeId, peer: NodeId, port: u16, cfg: TcpConfig) -> SockId {
        let idx =
            self.stacks[node.0 as usize].connect(&mut self.sim, &mut self.scratch, peer, port, cfg);
        self.flush_scratch(node);
        SockId { node, idx }
    }

    /// Enqueue outbound bytes; returns how many were accepted. A short
    /// write arms a [`SockEvent::Writable`] wakeup for when space frees.
    pub fn send(&mut self, sock: SockId, data: &Bytes) -> usize {
        let r = self.stacks[sock.node.0 as usize]
            .with_tcb(&mut self.sim, &mut self.scratch, sock.idx, |tcb, ctx| {
                tcb.send(ctx, data)
            })
            .unwrap_or(0);
        self.flush_scratch(sock.node);
        r
    }

    /// Free space in the send buffer.
    pub fn send_space(&self, sock: SockId) -> u64 {
        self.stacks[sock.node.0 as usize]
            .peek_tcb(sock.idx)
            .map_or(0, |t| t.send_space())
    }

    /// Read up to `max` in-order bytes.
    pub fn recv(&mut self, sock: SockId, max: usize) -> Bytes {
        let r = self.stacks[sock.node.0 as usize]
            .with_tcb(&mut self.sim, &mut self.scratch, sock.idx, |tcb, ctx| {
                tcb.recv(ctx, max)
            })
            .unwrap_or_default();
        self.flush_scratch(sock.node);
        r
    }

    /// Bytes ready to read.
    pub fn recv_available(&self, sock: SockId) -> u64 {
        self.stacks[sock.node.0 as usize]
            .peek_tcb(sock.idx)
            .map_or(0, |t| t.recv_available())
    }

    /// Peer closed and all data has been read.
    pub fn at_eof(&self, sock: SockId) -> bool {
        self.stacks[sock.node.0 as usize]
            .peek_tcb(sock.idx)
            .is_some_and(|t| t.at_eof())
    }

    /// Graceful close (FIN after pending data).
    pub fn close(&mut self, sock: SockId) {
        self.stacks[sock.node.0 as usize].with_tcb(
            &mut self.sim,
            &mut self.scratch,
            sock.idx,
            |tcb, ctx| tcb.close(ctx),
        );
        self.flush_scratch(sock.node);
    }

    /// Hard reset.
    pub fn abort(&mut self, sock: SockId) {
        self.stacks[sock.node.0 as usize].with_tcb(
            &mut self.sim,
            &mut self.scratch,
            sock.idx,
            |tcb, ctx| tcb.abort(ctx),
        );
        self.flush_scratch(sock.node);
    }

    pub fn state(&self, sock: SockId) -> Option<TcpState> {
        self.stacks[sock.node.0 as usize].state(sock.idx)
    }

    /// Begin capturing a sender-side trace on this socket.
    pub fn enable_trace(&mut self, sock: SockId, label: &str) {
        self.stacks[sock.node.0 as usize].enable_trace(sock.idx, label);
    }

    /// Detach the captured trace.
    pub fn take_trace(&mut self, sock: SockId) -> Option<ConnTrace> {
        self.stacks[sock.node.0 as usize].take_trace(sock.idx)
    }

    /// Release a closed socket's resources.
    pub fn release(&mut self, sock: SockId) {
        self.stacks[sock.node.0 as usize].release(sock.idx);
    }

    /// Smoothed RTT estimate of a connection, if measured yet.
    pub fn srtt(&self, sock: SockId) -> Option<Dur> {
        self.stacks[sock.node.0 as usize]
            .peek_tcb(sock.idx)
            .and_then(|t| t.srtt())
    }

    /// Current congestion window (diagnostics).
    pub fn cwnd(&self, sock: SockId) -> Option<u64> {
        self.stacks[sock.node.0 as usize]
            .peek_tcb(sock.idx)
            .map(|t| t.cwnd())
    }

    /// Arm an application timer; it returns from [`Net::poll`] as
    /// [`AppEvent::Timer`]. `token` must leave the top bit clear.
    pub fn set_app_timer(&mut self, node: NodeId, at: Time, token: u64) {
        assert_eq!(token & APP_TIMER_BIT, 0, "token top bit is reserved");
        self.sim.set_timer(node, at, token | APP_TIMER_BIT);
    }

    // ------------------------------------------------------------------
    // Event pump
    // ------------------------------------------------------------------

    fn flush_scratch(&mut self, node: NodeId) {
        for (idx, event) in self.scratch.drain(..) {
            self.pending.push_back(AppEvent::Sock {
                sock: SockId { node, idx },
                event,
            });
        }
    }

    /// Advance the simulation until the next application-visible event.
    /// Returns `None` when the simulation has fully quiesced.
    pub fn poll(&mut self) -> Option<AppEvent> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Some(ev);
            }
            match self.sim.next()? {
                Output::Deliver { node, packet } => {
                    self.stacks[node.0 as usize].on_packet(
                        &mut self.sim,
                        &mut self.scratch,
                        packet,
                    );
                    self.flush_scratch(node);
                }
                Output::Timer { node, token } => {
                    if token & APP_TIMER_BIT != 0 {
                        return Some(AppEvent::Timer {
                            node,
                            token: token & !APP_TIMER_BIT,
                        });
                    }
                    self.stacks[node.0 as usize].on_timer(&mut self.sim, &mut self.scratch, token);
                    self.flush_scratch(node);
                }
                Output::Fault(ev) => {
                    // Queue the fault before any socket events it causes,
                    // so the application can interpret those in context.
                    self.pending.push_back(AppEvent::Fault(ev));
                    match ev.kind {
                        FaultKind::NodeDown(n) => {
                            // Volatile state dies with the host: no FINs, no
                            // RSTs, no local events — peers discover the
                            // crash through their own retransmission timers.
                            self.stacks[n.0 as usize].crash(&mut self.sim);
                        }
                        FaultKind::NodeUp(_) => {
                            // The stack was wiped at crash time; the host
                            // restarts empty. Applications re-listen when
                            // they see this event.
                        }
                        FaultKind::SublinkRst(n) => {
                            // Abort every live connection on the node: RST
                            // to each peer, local sockets closed.
                            self.stacks[n.0 as usize]
                                .abort_connections(&mut self.sim, &mut self.scratch);
                            self.flush_scratch(n);
                        }
                        // Link faults are the simulator's own affair; TCP
                        // discovers them through loss and RTO.
                        FaultKind::LinkDown(_) | FaultKind::LinkUp(_) => {}
                    }
                }
            }
        }
    }

    /// Run until quiescence, discarding events (teardown helper).
    pub fn drain(&mut self) {
        while self.poll().is_some() {}
    }
}
