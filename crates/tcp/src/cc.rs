//! Congestion control: Reno and NewReno window management (RFC 2581/2582).
//!
//! This is the state machine whose RTT-clocked dynamics produce the LSL
//! effect: the window can only grow (slow start: ×2 per RTT; congestion
//! avoidance: +1 MSS per RTT) or recover from loss at a rate set by how
//! fast acknowledgments return. Keeping it isolated from the socket
//! plumbing makes the control law directly unit-testable.

/// Congestion-control variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcAlgo {
    /// Classic Reno: exit fast recovery on the first new ACK.
    Reno,
    /// NewReno (RFC 2582): stay in recovery across partial ACKs,
    /// retransmitting one hole per partial ACK.
    NewReno,
}

/// What the socket must do in response to an ACK-driven transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcAction {
    None,
    /// Third duplicate ACK: retransmit the first unacknowledged segment.
    FastRetransmit,
    /// NewReno partial ACK: retransmit the segment at the new `snd_una`.
    RetransmitHole,
}

/// Congestion-control block for one connection.
#[derive(Clone, Debug)]
pub struct Cc {
    algo: CcAlgo,
    mss: u64,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes.
    pub ssthresh: u64,
    dup_acks: u32,
    in_recovery: bool,
    /// `snd_nxt` when recovery was entered; ACKs beyond it end recovery.
    recover: u64,
}

impl Cc {
    pub fn new(algo: CcAlgo, mss: u32, init_cwnd: u64, init_ssthresh: u64) -> Cc {
        Cc {
            algo,
            mss: mss as u64,
            cwnd: init_cwnd,
            ssthresh: init_ssthresh,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
        }
    }

    pub fn in_slow_start(&self) -> bool {
        !self.in_recovery && self.cwnd < self.ssthresh
    }

    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    pub fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    /// A cumulative ACK advanced `snd_una` by `acked` bytes, to
    /// `snd_una_after`. Returns the required retransmission action.
    pub fn on_new_ack(&mut self, acked: u64, snd_una_after: u64) -> CcAction {
        debug_assert!(acked > 0);
        if self.in_recovery {
            if snd_una_after > self.recover {
                // Full ACK: deflate to ssthresh and leave recovery.
                self.in_recovery = false;
                self.dup_acks = 0;
                self.cwnd = self.ssthresh.max(self.mss);
                CcAction::None
            } else {
                match self.algo {
                    CcAlgo::Reno => {
                        // Reno exits on any new ACK (and stalls if more
                        // holes exist — NewReno's motivating pathology).
                        self.in_recovery = false;
                        self.dup_acks = 0;
                        self.cwnd = self.ssthresh.max(self.mss);
                        CcAction::None
                    }
                    CcAlgo::NewReno => {
                        // Partial ACK: deflate by the amount acked,
                        // re-inflate by one MSS, retransmit the next hole.
                        self.cwnd = self
                            .cwnd
                            .saturating_sub(acked)
                            .saturating_add(self.mss)
                            .max(self.mss);
                        CcAction::RetransmitHole
                    }
                }
            }
        } else {
            self.dup_acks = 0;
            if self.cwnd < self.ssthresh {
                // Slow start with byte counting capped at one MSS per ACK
                // (RFC 3465 L=1), doubling per RTT under delayed ACKs'
                // one-ack-per-two-segments regime... per-ACK growth:
                self.cwnd = self.cwnd.saturating_add(acked.min(self.mss));
            } else {
                // Congestion avoidance: cwnd += MSS*MSS/cwnd per ACK
                // (≈ one MSS per RTT), at least 1 byte to avoid stalling.
                let inc = (self.mss * self.mss / self.cwnd).max(1);
                self.cwnd = self.cwnd.saturating_add(inc);
            }
            CcAction::None
        }
    }

    /// A duplicate ACK arrived. `snd_nxt` and `flight` (unacked bytes)
    /// are sampled at arrival.
    pub fn on_dup_ack(&mut self, snd_nxt: u64, flight: u64) -> CcAction {
        if self.in_recovery {
            // Inflate: each dup ACK signals a departed segment.
            self.cwnd = self.cwnd.saturating_add(self.mss);
            return CcAction::None;
        }
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            self.enter_recovery(snd_nxt, flight);
            CcAction::FastRetransmit
        } else {
            CcAction::None
        }
    }

    fn enter_recovery(&mut self, snd_nxt: u64, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.recover = snd_nxt;
        self.in_recovery = true;
    }

    /// Retransmission timer fired.
    pub fn on_rto(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.in_recovery = false;
        self.dup_acks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1000;

    fn cc(algo: CcAlgo) -> Cc {
        Cc::new(algo, MSS as u32, 2 * MSS, u64::MAX / 2)
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut c = cc(CcAlgo::NewReno);
        assert!(c.in_slow_start());
        // ACKing a full window grows cwnd by one MSS per MSS acked.
        let mut una = 0;
        for _ in 0..2 {
            una += MSS;
            c.on_new_ack(MSS, una);
        }
        assert_eq!(c.cwnd, 4 * MSS);
    }

    #[test]
    fn slow_start_ack_growth_capped_at_mss() {
        let mut c = cc(CcAlgo::NewReno);
        // A jumbo cumulative ACK (e.g. after delayed ACK) still grows by
        // at most one MSS.
        c.on_new_ack(10 * MSS, 10 * MSS);
        assert_eq!(c.cwnd, 3 * MSS);
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut c = Cc::new(CcAlgo::NewReno, MSS as u32, 10 * MSS, 10 * MSS);
        assert!(!c.in_slow_start());
        let start = c.cwnd;
        // One full window of ACKs ≈ +1 MSS.
        let mut una = 0;
        for _ in 0..10 {
            una += MSS;
            c.on_new_ack(MSS, una);
        }
        // Growth per RTT is slightly under one MSS because each ACK's
        // increment uses the already-grown cwnd in the denominator.
        let grown = c.cwnd - start;
        assert!((900..=1000).contains(&grown), "grew {grown}");
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut c = cc(CcAlgo::NewReno);
        c.cwnd = 8 * MSS;
        c.ssthresh = u64::MAX / 2;
        let flight = 8 * MSS;
        assert_eq!(c.on_dup_ack(8 * MSS, flight), CcAction::None);
        assert_eq!(c.on_dup_ack(8 * MSS, flight), CcAction::None);
        assert_eq!(c.on_dup_ack(8 * MSS, flight), CcAction::FastRetransmit);
        assert!(c.in_recovery());
        assert_eq!(c.ssthresh, 4 * MSS);
        assert_eq!(c.cwnd, 4 * MSS + 3 * MSS);
        // Further dup ACKs inflate.
        c.on_dup_ack(8 * MSS, flight);
        assert_eq!(c.cwnd, 8 * MSS);
    }

    #[test]
    fn newreno_partial_ack_retransmits_hole_and_stays() {
        let mut c = cc(CcAlgo::NewReno);
        c.cwnd = 8 * MSS;
        for _ in 0..3 {
            c.on_dup_ack(8 * MSS, 8 * MSS);
        }
        assert!(c.in_recovery());
        // Partial ACK: una advances to 2*MSS but recover point is 8*MSS.
        assert_eq!(c.on_new_ack(2 * MSS, 2 * MSS), CcAction::RetransmitHole);
        assert!(c.in_recovery());
        // Full ACK past recover exits and deflates.
        assert_eq!(c.on_new_ack(6 * MSS, 9 * MSS), CcAction::None);
        assert!(!c.in_recovery());
        assert_eq!(c.cwnd, c.ssthresh);
    }

    #[test]
    fn reno_exits_on_first_new_ack() {
        let mut c = cc(CcAlgo::Reno);
        c.cwnd = 8 * MSS;
        for _ in 0..3 {
            c.on_dup_ack(8 * MSS, 8 * MSS);
        }
        assert!(c.in_recovery());
        assert_eq!(c.on_new_ack(2 * MSS, 2 * MSS), CcAction::None);
        assert!(!c.in_recovery());
        assert_eq!(c.cwnd, c.ssthresh);
    }

    #[test]
    fn rto_collapses_window() {
        let mut c = cc(CcAlgo::NewReno);
        c.cwnd = 16 * MSS;
        c.on_rto(16 * MSS);
        assert_eq!(c.cwnd, MSS);
        assert_eq!(c.ssthresh, 8 * MSS);
        assert!(!c.in_recovery());
        assert!(c.in_slow_start());
    }

    #[test]
    fn ssthresh_floor_two_mss() {
        let mut c = cc(CcAlgo::NewReno);
        c.on_rto(MSS); // tiny flight
        assert_eq!(c.ssthresh, 2 * MSS);
    }

    #[test]
    fn dup_ack_counter_resets_on_new_ack() {
        let mut c = cc(CcAlgo::NewReno);
        c.cwnd = 8 * MSS;
        c.on_dup_ack(8 * MSS, 8 * MSS);
        c.on_dup_ack(8 * MSS, 8 * MSS);
        assert_eq!(c.dup_acks(), 2);
        c.on_new_ack(MSS, MSS);
        assert_eq!(c.dup_acks(), 0);
        // Two more dups do not trigger (count restarted).
        assert_eq!(c.on_dup_ack(8 * MSS, 8 * MSS), CcAction::None);
        assert_eq!(c.on_dup_ack(8 * MSS, 8 * MSS), CcAction::None);
        assert!(!c.in_recovery());
    }
}
