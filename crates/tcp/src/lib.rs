//! A user-level TCP over the `lsl-netsim` discrete-event simulator.
//!
//! This crate replaces the Linux 2.4 kernel TCP of the paper's testbed.
//! It implements the control laws the LSL effect depends on:
//!
//! * **slow start** and **congestion avoidance** (RFC 2581), clocked by
//!   the connection RTT — the heart of the paper's analysis (§V, §VI),
//! * **fast retransmit / fast recovery** with Reno and NewReno (RFC 2582)
//!   partial-ACK handling,
//! * **retransmission timeout** with Jacobson/Karels SRTT estimation,
//!   Karn's rule and exponential backoff,
//! * **flow control** via the advertised window (configurable buffers;
//!   8 MB default as in the paper's hosts), with window updates and a
//!   persist timer for zero-window deadlock avoidance — the mechanism
//!   through which a depot exerts backpressure on its upstream sublink,
//! * **delayed ACKs**, connection setup/teardown (three-way handshake,
//!   FIN exchange, TIME-WAIT) and RST handling.
//!
//! The application interface mirrors BSD sockets (the paper's `{P/A}F_LSL`
//! family wraps the same shape): [`Net::listen`], [`Net::connect`],
//! [`Net::send`], [`Net::recv`], [`Net::close`], with readiness delivered
//! as [`SockEvent`]s from [`Net::poll`].
//!
//! Sequence numbers are 64-bit internally (no 2^32 wrap handling); the
//! wire header serializes them in full. This is the one deliberate
//! divergence from RFC 793 — wrap arithmetic adds no fidelity to the
//! paper's experiments and is a notorious source of subtle bugs.

mod cc;
mod config;
mod net;
mod rcvbuf;
mod rto;
mod segment;
mod sndbuf;
mod socket;
mod stack;

pub use cc::{Cc, CcAlgo};
pub use config::TcpConfig;
pub use net::{AppEvent, Net, SockId};
pub use rto::RtoEstimator;
pub use segment::{Flags, Segment};
pub use socket::{SockEvent, TcpError, TcpState};
