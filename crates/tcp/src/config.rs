//! Per-connection TCP tuning knobs.

use lsl_netsim::Dur;

use crate::cc::CcAlgo;

/// Configuration applied to a socket at creation. Defaults mirror the
/// paper's testbed: Linux 2.4-era NewReno with large windows and 8 MB
/// buffers in the exercised direction.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Send buffer capacity in bytes.
    pub send_buf: u64,
    /// Receive buffer capacity in bytes (bounds the advertised window).
    pub recv_buf: u64,
    /// Initial congestion window in segments (RFC 2581 allowed 2).
    pub init_cwnd_segs: u32,
    /// Initial slow-start threshold; effectively unbounded by default so
    /// slow start runs until the first loss, as the paper's traces show.
    pub init_ssthresh: u64,
    /// Congestion-control variant.
    pub algo: CcAlgo,
    /// Delayed-ACK timeout; `None` disables delaying (every segment is
    /// ACKed immediately).
    pub delack: Option<Dur>,
    /// Lower bound on the retransmission timeout (Linux uses 200 ms).
    pub min_rto: Dur,
    /// Upper bound on the retransmission timeout.
    pub max_rto: Dur,
    /// Initial RTO before any RTT sample exists (RFC 6298 says 1 s;
    /// Linux 2.4 used 3 s — we follow Linux's quicker value).
    pub initial_rto: Dur,
    /// Maximum SYN (re)transmissions before the connect fails.
    pub max_syn_retries: u32,
    /// Maximum consecutive data RTOs before the connection aborts.
    pub max_data_retries: u32,
    /// TIME-WAIT dwell (2×MSL). Short default keeps simulated
    /// experiments from accumulating state; it does not affect timing of
    /// the measured transfer.
    pub time_wait: Dur,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf: 8 * 1024 * 1024,
            recv_buf: 8 * 1024 * 1024,
            init_cwnd_segs: 2,
            init_ssthresh: u64::MAX / 2,
            algo: CcAlgo::NewReno,
            delack: Some(Dur::from_millis(100)),
            min_rto: Dur::from_millis(200),
            max_rto: Dur::from_secs(120),
            initial_rto: Dur::from_secs(1),
            max_syn_retries: 6,
            max_data_retries: 15,
            time_wait: Dur::from_secs(1),
        }
    }
}

impl TcpConfig {
    /// Initial congestion window in bytes.
    pub fn init_cwnd(&self) -> u64 {
        self.init_cwnd_segs as u64 * self.mss as u64
    }

    /// The paper's "limited buffer" variant (lightweight mobile hosts).
    pub fn small_buffers(mut self, bytes: u64) -> Self {
        self.send_buf = bytes;
        self.recv_buf = bytes;
        self
    }

    /// Validate invariants; called when a socket is created.
    pub fn check(&self) {
        assert!(self.mss > 0, "mss must be positive");
        assert!(
            self.send_buf >= self.mss as u64 && self.recv_buf >= self.mss as u64,
            "buffers must hold at least one segment"
        );
        assert!(self.init_cwnd_segs >= 1);
        assert!(self.min_rto <= self.max_rto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.send_buf, 8 * 1024 * 1024);
        assert_eq!(c.init_cwnd(), 2 * 1460);
        assert_eq!(c.algo, CcAlgo::NewReno);
        c.check();
    }

    #[test]
    fn small_buffers_override() {
        let c = TcpConfig::default().small_buffers(64 * 1024);
        assert_eq!(c.send_buf, 64 * 1024);
        assert_eq!(c.recv_buf, 64 * 1024);
        c.check();
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn tiny_buffer_rejected() {
        TcpConfig::default().small_buffers(100).check();
    }
}
