//! Per-node TCP stack: socket table, port demultiplexing and listeners.

use std::collections::BTreeMap;

use bytes::Bytes;
use lsl_netsim::{NodeId, Packet, Simulator};
use lsl_trace::ConnTrace;

use crate::config::TcpConfig;
use crate::segment::{Flags, Segment};
use crate::socket::{Ctx, SockEvent, Tcb, TcpState};

/// First ephemeral port handed out by [`TcpStack::alloc_port`].
const EPHEMERAL_BASE: u16 = 40000;

enum Sock {
    Listener { port: u16, cfg: TcpConfig },
    Conn(Box<Tcb>),
}

/// All TCP state on one simulated host.
pub(crate) struct TcpStack {
    node: NodeId,
    socks: Vec<Option<Sock>>,
    /// Established/learning connections keyed by (local port, peer node,
    /// peer port).
    demux: BTreeMap<(u16, NodeId, u16), u32>,
    listeners: BTreeMap<u16, u32>,
    next_ephemeral: u16,
}

impl TcpStack {
    pub fn new(node: NodeId) -> TcpStack {
        TcpStack {
            node,
            socks: Vec::new(),
            demux: BTreeMap::new(),
            listeners: BTreeMap::new(),
            next_ephemeral: EPHEMERAL_BASE,
        }
    }

    fn alloc_slot(&mut self, sock: Sock) -> u32 {
        if let Some(i) = self.socks.iter().position(Option::is_none) {
            self.socks[i] = Some(sock);
            i as u32
        } else {
            let next = self.socks.len() as u32;
            self.socks.push(Some(sock));
            next
        }
    }

    fn alloc_port(&mut self) -> u16 {
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(EPHEMERAL_BASE);
            if !self.listeners.contains_key(&p) {
                return p;
            }
        }
    }

    pub fn listen(&mut self, port: u16, cfg: TcpConfig) -> u32 {
        assert!(
            !self.listeners.contains_key(&port),
            "port {port} already bound on node {:?}",
            self.node
        );
        let idx = self.alloc_slot(Sock::Listener { port, cfg });
        self.listeners.insert(port, idx);
        idx
    }

    pub fn connect(
        &mut self,
        sim: &mut Simulator,
        events: &mut Vec<(u32, SockEvent)>,
        peer: NodeId,
        peer_port: u16,
        cfg: TcpConfig,
    ) -> u32 {
        let local_port = self.alloc_port();
        // Reserve the slot first so the TCB's timers carry the right idx.
        let idx = self.alloc_slot(Sock::Listener {
            port: 0,
            cfg: cfg.clone(),
        });
        let mut ctx = Ctx {
            sim,
            node: self.node,
            idx,
            events,
        };
        let tcb = Tcb::connect(&mut ctx, cfg, local_port, peer, peer_port);
        self.socks[idx as usize] = Some(Sock::Conn(Box::new(tcb)));
        self.demux.insert((local_port, peer, peer_port), idx);
        idx
    }

    fn tcb(&mut self, idx: u32) -> Option<&mut Tcb> {
        match self.socks.get_mut(idx as usize)? {
            Some(Sock::Conn(tcb)) => Some(tcb),
            _ => None,
        }
    }

    pub fn with_tcb<R>(
        &mut self,
        sim: &mut Simulator,
        events: &mut Vec<(u32, SockEvent)>,
        idx: u32,
        f: impl FnOnce(&mut Tcb, &mut Ctx) -> R,
    ) -> Option<R> {
        let node = self.node;
        let tcb = self.tcb(idx)?;
        // Split borrows: move the TCB out is unnecessary because Ctx
        // borrows disjoint state (sim + events), not the stack.
        let mut ctx = Ctx {
            sim,
            node,
            idx,
            events,
        };
        Some(f(tcb, &mut ctx))
    }

    /// Non-mutating TCB access.
    pub fn peek_tcb(&self, idx: u32) -> Option<&Tcb> {
        match self.socks.get(idx as usize)? {
            Some(Sock::Conn(tcb)) => Some(tcb),
            _ => None,
        }
    }

    pub fn state(&self, idx: u32) -> Option<TcpState> {
        self.peek_tcb(idx).map(|t| t.state)
    }

    pub fn enable_trace(&mut self, idx: u32, label: &str) {
        if let Some(tcb) = self.tcb(idx) {
            tcb.trace = Some(ConnTrace::new(label));
        }
    }

    pub fn take_trace(&mut self, idx: u32) -> Option<ConnTrace> {
        self.tcb(idx)?.trace.take()
    }

    /// Drop a fully closed socket and free its demux entries.
    pub fn release(&mut self, idx: u32) {
        match self.socks.get(idx as usize) {
            Some(Some(Sock::Conn(tcb))) => {
                assert!(
                    tcb.is_fully_closed(),
                    "release of active socket {idx} in state {:?}",
                    tcb.state
                );
                self.demux
                    .remove(&(tcb.local_port, tcb.peer, tcb.peer_port));
                self.socks[idx as usize] = None;
            }
            Some(Some(Sock::Listener { port, .. })) => {
                self.listeners.remove(port);
                self.socks[idx as usize] = None;
            }
            _ => {}
        }
    }

    /// Fault injection: the host crashed. All volatile TCP state vanishes
    /// without emitting a single packet or socket event — surviving peers
    /// find out via their own retransmission timers (or via RSTs from the
    /// restarted, now-stateless host). Pending sim timers of dead TCBs
    /// are cancelled so they cannot fire into the fresh incarnation.
    pub fn crash(&mut self, sim: &mut Simulator) {
        for sock in self.socks.iter_mut() {
            if let Some(Sock::Conn(tcb)) = sock {
                tcb.crash(sim);
            }
            *sock = None;
        }
        self.demux.clear();
        self.listeners.clear();
        self.next_ephemeral = EPHEMERAL_BASE;
    }

    /// Fault injection: abort every live connection (the paper's sublink
    /// RST): each peer gets a RST, each local socket closes. Listeners
    /// survive.
    pub fn abort_connections(&mut self, sim: &mut Simulator, events: &mut Vec<(u32, SockEvent)>) {
        let node = self.node;
        for idx in 0..self.socks.len() {
            if let Some(Sock::Conn(tcb)) = self.socks.get_mut(idx).and_then(Option::as_mut) {
                let mut ctx = Ctx {
                    sim,
                    node,
                    idx: idx as u32,
                    events,
                };
                tcb.abort(&mut ctx);
            }
        }
    }

    /// A packet addressed to this node arrived.
    pub fn on_packet(
        &mut self,
        sim: &mut Simulator,
        events: &mut Vec<(u32, SockEvent)>,
        packet: Packet,
    ) {
        let Some(seg) = Segment::decode(&packet.header) else {
            return; // not TCP / malformed: drop silently
        };
        let key = (seg.dst_port, packet.src, seg.src_port);
        if let Some(&idx) = self.demux.get(&key) {
            let node = self.node;
            if let Some(Sock::Conn(tcb)) = self.socks.get_mut(idx as usize).and_then(Option::as_mut)
            {
                let mut ctx = Ctx {
                    sim,
                    node,
                    idx,
                    events,
                };
                tcb.on_segment(&mut ctx, seg, packet.data);
            }
            return;
        }
        // New connection?
        if seg.flags.syn && !seg.flags.ack {
            if let Some(&lidx) = self.listeners.get(&seg.dst_port) {
                let cfg = match self.socks.get(lidx as usize) {
                    Some(Some(Sock::Listener { cfg, .. })) => cfg.clone(),
                    _ => unreachable!("listener table points at non-listener"),
                };
                let idx = self.alloc_slot(Sock::Listener {
                    port: 0,
                    cfg: cfg.clone(),
                });
                let mut ctx = Ctx {
                    sim,
                    node: self.node,
                    idx,
                    events,
                };
                let tcb = Tcb::accept_syn(
                    &mut ctx,
                    cfg,
                    seg.dst_port,
                    packet.src,
                    seg.src_port,
                    &seg,
                    lidx,
                );
                self.socks[idx as usize] = Some(Sock::Conn(Box::new(tcb)));
                self.demux.insert(key, idx);
                return;
            }
        }
        // No socket: answer anything but a RST with a RST.
        if !seg.flags.rst {
            let rst = Segment {
                src_port: seg.dst_port,
                dst_port: seg.src_port,
                seq: seg.ack,
                ack: seg.seq + seg.seq_space(packet.data.len() as u64),
                flags: Flags::RST,
                wnd: 0,
                mss: None,
            };
            let reply = Packet::tcp(self.node, packet.src, rst.encode(), Bytes::new());
            sim.send(self.node, reply);
        }
    }

    /// A stack timer fired (token already stripped of the app-timer bit).
    pub fn on_timer(
        &mut self,
        sim: &mut Simulator,
        events: &mut Vec<(u32, SockEvent)>,
        token: u64,
    ) {
        // A truncating cast here could alias a corrupt token onto a
        // live socket; an out-of-range index must stay out of range.
        let idx = u32::try_from(token >> 3).unwrap_or(u32::MAX);
        let kind = token & 0b111;
        let node = self.node;
        if let Some(Sock::Conn(tcb)) = self.socks.get_mut(idx as usize).and_then(Option::as_mut) {
            let mut ctx = Ctx {
                sim,
                node,
                idx,
                events,
            };
            tcb.on_timer(&mut ctx, kind);
        }
    }
}
