//! End-to-end behavioural tests of the TCP implementation.

mod common;

use bytes::Bytes;
use common::{pattern_chunk, run_bulk_transfer, test_cfg, two_hosts};
use lsl_netsim::{Dur, LossModel};
use lsl_tcp::{AppEvent, Net, SockEvent, TcpConfig, TcpError, TcpState};

#[test]
fn handshake_and_small_transfer() {
    let (topo, a, c) = two_hosts(10_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(1));
    let res = run_bulk_transfer(&mut net, a, c, 80, 10_000, test_cfg());
    assert_eq!(res.received, 10_000);
    assert!(res.client_error.is_none() && res.server_error.is_none());
    // Both ends reach Closed.
    assert_eq!(net.state(res.client), Some(TcpState::Closed));
    assert_eq!(net.state(res.server_conn.unwrap()), Some(TcpState::Closed));
}

#[test]
fn one_byte_transfer() {
    let (topo, a, c) = two_hosts(1_000_000, Dur::from_millis(1), LossModel::None);
    let mut net = Net::new(topo.into_sim(2));
    let res = run_bulk_transfer(&mut net, a, c, 80, 1, test_cfg());
    assert_eq!(res.received, 1);
}

#[test]
fn zero_byte_transfer_closes_cleanly() {
    let (topo, a, c) = two_hosts(1_000_000, Dur::from_millis(1), LossModel::None);
    let mut net = Net::new(topo.into_sim(3));
    let res = run_bulk_transfer(&mut net, a, c, 80, 0, test_cfg());
    assert_eq!(res.received, 0);
    assert_eq!(net.state(res.client), Some(TcpState::Closed));
}

#[test]
fn megabyte_transfer_intact_over_lossy_link() {
    let (topo, a, c) = two_hosts(20_000_000, Dur::from_millis(10), LossModel::bernoulli(0.01));
    let mut net = Net::new(topo.into_sim(42));
    let res = run_bulk_transfer(&mut net, a, c, 80, 1 << 20, test_cfg());
    assert_eq!(res.received, 1 << 20, "stream must survive 1% loss");
    assert!(res.client_error.is_none());
}

#[test]
fn heavy_loss_still_delivers() {
    let (topo, a, c) = two_hosts(5_000_000, Dur::from_millis(5), LossModel::bernoulli(0.10));
    let mut net = Net::new(topo.into_sim(7));
    let res = run_bulk_transfer(&mut net, a, c, 80, 200_000, test_cfg());
    assert_eq!(res.received, 200_000);
}

#[test]
fn retransmissions_recorded_in_trace() {
    let (topo, a, c) = two_hosts(10_000_000, Dur::from_millis(5), LossModel::bernoulli(0.05));
    let mut net = Net::new(topo.into_sim(9));
    let listener = net.listen(c, 80, test_cfg());
    let client = net.connect(a, c, 80, test_cfg());
    net.enable_trace(client, "client");
    let _ = listener;
    // Push 300 KB through.
    let total = 300_000u64;
    let mut sent = 0u64;
    let mut received = 0u64;
    while let Some(ev) = net.poll() {
        if let AppEvent::Sock { sock, event } = ev {
            match event {
                SockEvent::Connected | SockEvent::Writable if sock == client => {
                    while sent < total {
                        let chunk = (total - sent).min(64 * 1024) as usize;
                        let n = net.send(client, &pattern_chunk(sent, chunk)) as u64;
                        sent += n;
                        if n == 0 {
                            break;
                        }
                    }
                    if sent >= total {
                        net.close(client);
                    }
                }
                SockEvent::Readable => {
                    received += net.recv(sock, usize::MAX).len() as u64;
                }
                SockEvent::PeerFin => {
                    received += net.recv(sock, usize::MAX).len() as u64;
                    net.close(sock);
                }
                _ => {}
            }
        }
    }
    assert!(received >= total);
    let trace = net.take_trace(client).expect("trace enabled");
    assert!(
        lsl_trace::retransmissions(&trace) > 0,
        "5% loss must retransmit"
    );
    // Sequence growth is monotone and reaches the stream length.
    let growth = lsl_trace::seq_growth(&trace);
    assert!(growth.last_y().unwrap() >= total as f64);
    // Trace-derived RTT ≈ 2 * propagation (+ serialization); sanity band.
    let rtt = lsl_trace::mean_rtt(&trace).unwrap();
    assert!(rtt > 0.009 && rtt < 0.1, "rtt {rtt}");
}

#[test]
fn connect_to_closed_port_is_refused() {
    let (topo, a, c) = two_hosts(1_000_000, Dur::from_millis(2), LossModel::None);
    let mut net = Net::new(topo.into_sim(1));
    let client = net.connect(a, c, 9999, test_cfg());
    let mut refused = false;
    while let Some(ev) = net.poll() {
        if let AppEvent::Sock {
            sock,
            event: SockEvent::Error(TcpError::Refused),
        } = ev
        {
            assert_eq!(sock, client);
            refused = true;
        }
    }
    assert!(refused);
    assert_eq!(net.state(client), Some(TcpState::Closed));
}

#[test]
fn connect_on_dead_link_times_out() {
    let (topo, a, c) = two_hosts(1_000_000, Dur::from_millis(2), LossModel::bernoulli(1.0));
    let mut net = Net::new(topo.into_sim(1));
    let cfg = TcpConfig {
        max_syn_retries: 3,
        ..test_cfg()
    };
    let _listener = net.listen(c, 80, cfg.clone());
    let client = net.connect(a, c, 80, cfg);
    let mut timed_out = false;
    while let Some(ev) = net.poll() {
        if let AppEvent::Sock {
            event: SockEvent::Error(TcpError::TimedOut),
            ..
        } = ev
        {
            timed_out = true;
        }
    }
    assert!(timed_out);
    assert_eq!(net.state(client), Some(TcpState::Closed));
}

#[test]
fn flow_control_blocks_and_resumes() {
    // Receiver with a tiny buffer that reads nothing until the peer FIN
    // would deadlock without window updates + probing. We read slowly on
    // an explicit timer instead.
    let (topo, a, c) = two_hosts(100_000_000, Dur::from_millis(1), LossModel::None);
    let mut net = Net::new(topo.into_sim(5));
    let cfg = TcpConfig::default().small_buffers(16 * 1024);
    let _listener = net.listen(c, 80, cfg.clone());
    let client = net.connect(a, c, 80, cfg);
    let total = 256 * 1024u64;
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut server = None;
    while let Some(ev) = net.poll() {
        match ev {
            AppEvent::Sock { sock, event } => match event {
                SockEvent::Connected | SockEvent::Writable if sock == client => {
                    while sent < total {
                        let n = net.send(client, &pattern_chunk(sent, 32 * 1024)) as u64;
                        sent += n;
                        if n == 0 {
                            break;
                        }
                    }
                    if sent >= total {
                        net.close(client);
                    }
                }
                SockEvent::Accepted { conn } => {
                    server = Some(conn);
                    // Read in slow 4 KB sips every 5 ms.
                    net.set_app_timer(c, net.now() + Dur::from_millis(5), 1);
                }
                SockEvent::PeerFin => {
                    if let Some(s) = server {
                        received += net.recv(s, usize::MAX).len() as u64;
                        if net.at_eof(s) {
                            net.close(s);
                        }
                    }
                }
                _ => {}
            },
            AppEvent::Timer { node, token: 1 } => {
                if let Some(s) = server {
                    received += net.recv(s, 4 * 1024).len() as u64;
                    if !net.at_eof(s) {
                        net.set_app_timer(node, net.now() + Dur::from_millis(5), 1);
                    } else {
                        net.close(s);
                    }
                }
            }
            _ => {}
        }
    }
    assert_eq!(received, total, "flow-controlled transfer must complete");
    // The 16 KB window over a fat link forces pacing: at 4 KB / 5 ms the
    // transfer needs ≥ 256 KB / (16KB per ~5ms-ish) — just assert the
    // sender was actually throttled well below link rate.
    let elapsed = net.now().as_secs_f64();
    assert!(
        elapsed > 0.2,
        "expected throttled transfer, took {elapsed}s"
    );
}

#[test]
fn bidirectional_transfer() {
    let (topo, a, c) = two_hosts(10_000_000, Dur::from_millis(3), LossModel::None);
    let mut net = Net::new(topo.into_sim(11));
    let _l = net.listen(c, 80, test_cfg());
    let client = net.connect(a, c, 80, test_cfg());
    let each = 100_000u64;
    let (mut sent_c, mut sent_s) = (0u64, 0u64);
    let (mut rx_c, mut rx_s) = (0u64, 0u64);
    let mut server = None;
    while let Some(ev) = net.poll() {
        if let AppEvent::Sock { sock, event } = ev {
            match event {
                SockEvent::Connected | SockEvent::Writable if sock == client => {
                    while sent_c < each {
                        let chunk = (each - sent_c).min(32 * 1024) as usize;
                        let n = net.send(client, &pattern_chunk(sent_c, chunk)) as u64;
                        sent_c += n;
                        if n == 0 {
                            break;
                        }
                    }
                    if sent_c >= each {
                        net.close(client);
                    }
                }
                SockEvent::Accepted { conn } => {
                    server = Some(conn);
                    while sent_s < each {
                        let chunk = (each - sent_s).min(32 * 1024) as usize;
                        let n = net.send(conn, &pattern_chunk(sent_s, chunk)) as u64;
                        sent_s += n;
                        if n == 0 {
                            break;
                        }
                    }
                    if sent_s >= each {
                        net.close(conn);
                    }
                }
                SockEvent::Writable if Some(sock) == server => {
                    while sent_s < each {
                        let chunk = (each - sent_s).min(32 * 1024) as usize;
                        let n = net.send(sock, &pattern_chunk(sent_s, chunk)) as u64;
                        sent_s += n;
                        if n == 0 {
                            break;
                        }
                    }
                    if sent_s >= each {
                        net.close(sock);
                    }
                }
                SockEvent::Readable | SockEvent::PeerFin => {
                    let b = net.recv(sock, usize::MAX);
                    if sock == client {
                        rx_c += b.len() as u64;
                    } else {
                        rx_s += b.len() as u64;
                    }
                }
                _ => {}
            }
        }
    }
    assert_eq!(rx_c, each, "client received the server's stream");
    assert_eq!(rx_s, each, "server received the client's stream");
}

#[test]
fn throughput_approaches_bottleneck_on_clean_link() {
    let bw = 10_000_000u64; // 10 Mbit/s
    let (topo, a, c) = two_hosts(bw, Dur::from_millis(10), LossModel::None);
    let mut net = Net::new(topo.into_sim(13));
    let total = 4u64 << 20;
    let res = run_bulk_transfer(&mut net, a, c, 80, total, test_cfg());
    assert_eq!(res.received, total);
    let goodput = total as f64 * 8.0 / res.duration_s;
    // ≥70% of line rate after slow start amortizes; ≤ line rate.
    assert!(goodput > 0.7 * bw as f64, "goodput {goodput}");
    assert!(
        goodput <= bw as f64 * 1.01,
        "goodput {goodput} exceeds link"
    );
}

#[test]
fn abort_sends_rst_and_peer_errors() {
    let (topo, a, c) = two_hosts(10_000_000, Dur::from_millis(2), LossModel::None);
    let mut net = Net::new(topo.into_sim(17));
    let _l = net.listen(c, 80, test_cfg());
    let client = net.connect(a, c, 80, test_cfg());
    let mut server_reset = false;
    while let Some(ev) = net.poll() {
        if let AppEvent::Sock { sock, event } = ev {
            match event {
                SockEvent::Connected if sock == client => {
                    net.send(client, &Bytes::from_static(b"hello"));
                    net.abort(client);
                }
                SockEvent::Error(TcpError::Reset) => {
                    server_reset = true;
                }
                _ => {}
            }
        }
    }
    assert!(server_reset, "server must observe the RST");
    assert_eq!(net.state(client), Some(TcpState::Closed));
}

#[test]
fn deterministic_transfer_same_seed() {
    let run = |seed: u64| {
        let (topo, a, c) = two_hosts(8_000_000, Dur::from_millis(7), LossModel::bernoulli(0.02));
        let mut net = Net::new(topo.into_sim(seed));
        let res = run_bulk_transfer(&mut net, a, c, 80, 500_000, test_cfg());
        (res.received, format!("{:.9}", res.duration_s))
    };
    assert_eq!(run(21), run(21));
    assert_ne!(run(21).1, run(22).1, "different seeds → different timing");
}

#[test]
fn reno_and_newreno_both_complete() {
    for algo in [lsl_tcp::CcAlgo::Reno, lsl_tcp::CcAlgo::NewReno] {
        let (topo, a, c) = two_hosts(10_000_000, Dur::from_millis(10), LossModel::bernoulli(0.02));
        let mut net = Net::new(topo.into_sim(31));
        let cfg = TcpConfig { algo, ..test_cfg() };
        let res = run_bulk_transfer(&mut net, a, c, 80, 500_000, cfg);
        assert_eq!(res.received, 500_000, "{algo:?}");
    }
}

#[test]
fn disabled_delayed_ack_still_works() {
    let (topo, a, c) = two_hosts(10_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(37));
    let cfg = TcpConfig {
        delack: None,
        ..test_cfg()
    };
    let res = run_bulk_transfer(&mut net, a, c, 80, 100_000, cfg);
    assert_eq!(res.received, 100_000);
}

#[test]
fn small_mss_segments_correctly() {
    let (topo, a, c) = two_hosts(5_000_000, Dur::from_millis(2), LossModel::None);
    let mut net = Net::new(topo.into_sim(41));
    let cfg = TcpConfig {
        mss: 536,
        ..test_cfg()
    };
    let res = run_bulk_transfer(&mut net, a, c, 80, 50_000, cfg);
    assert_eq!(res.received, 50_000);
}

#[test]
fn two_parallel_connections_share_the_link() {
    let (topo, a, c) = two_hosts(10_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(43));
    let _l1 = net.listen(c, 80, test_cfg());
    let _l2 = net.listen(c, 81, test_cfg());
    let c1 = net.connect(a, c, 80, test_cfg());
    let c2 = net.connect(a, c, 81, test_cfg());
    let total = 500_000u64;
    let mut sent = [0u64; 2];
    let mut recv = [0u64; 2];
    let mut conns = std::collections::HashMap::new();
    while let Some(ev) = net.poll() {
        if let AppEvent::Sock { sock, event } = ev {
            let which = if sock == c1 {
                0
            } else if sock == c2 {
                1
            } else {
                usize::MAX
            };
            match event {
                SockEvent::Connected | SockEvent::Writable if which != usize::MAX => {
                    let i = which;
                    let cl = if i == 0 { c1 } else { c2 };
                    while sent[i] < total {
                        let chunk = (total - sent[i]).min(64 * 1024) as usize;
                        let n = net.send(cl, &pattern_chunk(sent[i], chunk)) as u64;
                        sent[i] += n;
                        if n == 0 {
                            break;
                        }
                    }
                    if sent[i] >= total {
                        net.close(cl);
                    }
                }
                SockEvent::Accepted { conn } => {
                    conns.insert(conn, conns.len());
                }
                SockEvent::Readable | SockEvent::PeerFin => {
                    if let Some(&i) = conns.get(&sock) {
                        recv[i] += net.recv(sock, usize::MAX).len() as u64;
                    }
                }
                _ => {}
            }
        }
    }
    assert_eq!(recv[0] + recv[1], 2 * total);
}
