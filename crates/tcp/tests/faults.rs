//! Fault injection at the TCP layer: crashed stacks, sublink RSTs, and
//! link flaps as seen through the socket API.

mod common;

use common::{pattern_chunk, test_cfg, two_hosts};
use lsl_netsim::{Dur, FaultKind, FaultPlan, LossModel, NodeId, Time};
use lsl_tcp::{AppEvent, Net, SockEvent, TcpConfig, TcpError, TcpState};

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

/// Short-retry config so failure detection fits in a small test.
fn impatient_cfg() -> TcpConfig {
    TcpConfig {
        max_data_retries: 3,
        max_syn_retries: 2,
        ..test_cfg()
    }
}

/// Drive the net to quiescence, recording errors and faults.
fn drain(net: &mut Net) -> (Vec<TcpError>, Vec<FaultKind>) {
    let mut errors = Vec::new();
    let mut faults = Vec::new();
    while let Some(ev) = net.poll() {
        match ev {
            AppEvent::Sock {
                event: SockEvent::Error(e),
                ..
            } => errors.push(e),
            AppEvent::Fault(f) => faults.push(f.kind),
            _ => {}
        }
    }
    (errors, faults)
}

#[test]
fn peer_crash_times_out_the_sender() {
    let (topo, a, c) = two_hosts(8_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(1));
    net.sim_mut()
        .install_faults(FaultPlan::new().node_down(t(50), c));
    let listener = net.listen(c, 80, impatient_cfg());
    let client = net.connect(a, c, 80, impatient_cfg());
    let mut connected = false;
    let mut error = None;
    while let Some(ev) = net.poll() {
        match ev {
            AppEvent::Sock { sock, event } if sock == client => match event {
                SockEvent::Connected => {
                    connected = true;
                    // Keep the pipe full so the crash hits mid-stream.
                    net.send(sock, &pattern_chunk(0, 1 << 20));
                }
                SockEvent::Writable => {
                    net.send(sock, &pattern_chunk(0, 1 << 20));
                }
                SockEvent::Error(e) => error = Some(e),
                _ => {}
            },
            _ => {}
        }
    }
    let _ = listener;
    assert!(connected);
    assert_eq!(
        error,
        Some(TcpError::TimedOut),
        "sender must detect the dead peer via RTO exhaustion"
    );
    assert_eq!(net.state(client), Some(TcpState::Closed));
}

#[test]
fn connect_to_crashed_host_times_out() {
    let (topo, a, c) = two_hosts(8_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(2));
    net.sim_mut()
        .install_faults(FaultPlan::new().node_down(Time::ZERO, c));
    let client = net.connect(a, c, 80, impatient_cfg());
    let (errors, faults) = drain(&mut net);
    assert_eq!(errors, vec![TcpError::TimedOut]);
    assert_eq!(faults, vec![FaultKind::NodeDown(c)]);
    assert_eq!(net.state(client), Some(TcpState::Closed));
}

#[test]
fn restarted_host_resets_stale_connections() {
    let (topo, a, c) = two_hosts(8_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(3));
    // Crash at 50 ms, restart 20 ms later: the sender's retransmits then
    // hit a stateless stack, which answers RST → Reset error, well
    // before RTO exhaustion would call it TimedOut.
    net.sim_mut()
        .install_faults(FaultPlan::new().node_crash(t(50), c, Dur::from_millis(20)));
    let _listener = net.listen(c, 80, test_cfg());
    let client = net.connect(a, c, 80, test_cfg());
    let mut error = None;
    while let Some(ev) = net.poll() {
        match ev {
            AppEvent::Sock { sock, event } if sock == client => match event {
                SockEvent::Connected | SockEvent::Writable => {
                    net.send(sock, &pattern_chunk(0, 1 << 20));
                }
                SockEvent::Error(e) => error = Some(e),
                _ => {}
            },
            _ => {}
        }
    }
    assert_eq!(error, Some(TcpError::Reset));
}

#[test]
fn sublink_rst_aborts_established_connections() {
    let (topo, a, c) = two_hosts(8_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(4));
    net.sim_mut()
        .install_faults(FaultPlan::new().sublink_rst(t(50), c));
    let _listener = net.listen(c, 80, test_cfg());
    let client = net.connect(a, c, 80, test_cfg());
    let mut client_error = None;
    let mut server_closed = false;
    while let Some(ev) = net.poll() {
        match ev {
            AppEvent::Sock { sock, event } if sock == client => match event {
                SockEvent::Connected | SockEvent::Writable => {
                    net.send(sock, &pattern_chunk(0, 1 << 20));
                }
                SockEvent::Error(e) => client_error = Some(e),
                _ => {}
            },
            AppEvent::Sock {
                event: SockEvent::Closed,
                sock,
            } if sock.node == c => server_closed = true,
            _ => {}
        }
    }
    assert_eq!(
        client_error,
        Some(TcpError::Reset),
        "peer of a reset sublink sees a hard reset"
    );
    assert!(server_closed, "the reset side closes its socket locally");
}

#[test]
fn transfer_rides_out_a_short_link_flap() {
    let (topo, a, c) = two_hosts(8_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(5));
    // Both directions flap for 200 ms: well within RTO retry budget.
    net.sim_mut().install_faults(
        FaultPlan::new()
            .link_flap(t(30), lsl_netsim::LinkId(0), Dur::from_millis(200))
            .link_flap(t(30), lsl_netsim::LinkId(1), Dur::from_millis(200)),
    );
    let total: u64 = 1 << 20;
    let res = common::run_bulk_transfer(&mut net, a, c, 80, total, test_cfg());
    assert_eq!(res.received, total, "TCP recovers the outage via RTO");
    assert!(res.client_error.is_none() && res.server_error.is_none());
}

#[test]
fn crash_then_relisten_accepts_new_connections() {
    let (topo, a, c) = two_hosts(8_000_000, Dur::from_millis(5), LossModel::None);
    let mut net = Net::new(topo.into_sim(6));
    net.sim_mut()
        .install_faults(FaultPlan::new().node_crash(t(10), c, Dur::from_millis(10)));
    let _old_listener = net.listen(c, 80, test_cfg());
    let mut accepted = false;
    let mut started = false;
    while let Some(ev) = net.poll() {
        match ev {
            AppEvent::Fault(f) if f.kind == FaultKind::NodeUp(c) => {
                // The restarted host re-binds and a late client dials in.
                net.listen(c, 80, test_cfg());
                net.connect(a, c, 80, test_cfg());
                started = true;
            }
            AppEvent::Sock {
                event: SockEvent::Accepted { .. },
                ..
            } => accepted = true,
            AppEvent::Sock { sock, event }
                if sock.node == NodeId(0) && event == SockEvent::Connected =>
            {
                net.close(sock);
            }
            _ => {}
        }
    }
    assert!(started && accepted, "restart yields a usable fresh stack");
}
