//! Shared driver helpers for TCP integration tests.
// Compiled once per test binary; not every binary reads every field.
#![allow(dead_code)]

use bytes::Bytes;
use lsl_netsim::{Dur, LinkSpec, LossModel, NodeId, Topology, TopologyBuilder};
use lsl_tcp::{AppEvent, Net, SockEvent, SockId, TcpConfig};

/// Two hosts joined by a single duplex link.
pub fn two_hosts(bw_bps: u64, delay: Dur, loss: LossModel) -> (Topology, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let a = b.node("a");
    let c = b.node("c");
    b.duplex(a, c, LinkSpec::new(bw_bps, delay).with_loss(loss));
    (b.build(), a, c)
}

/// Deterministic payload byte for stream offset `i`.
pub fn pattern(i: u64) -> u8 {
    ((i * 131 + 7) % 251) as u8
}

pub fn pattern_chunk(offset: u64, len: usize) -> Bytes {
    Bytes::from(
        (0..len as u64)
            .map(|i| pattern(offset + i))
            .collect::<Vec<_>>(),
    )
}

/// Outcome of [`run_bulk_transfer`].
pub struct TransferResult {
    pub client: SockId,
    pub server_conn: Option<SockId>,
    /// Bytes received at the server, verified against the pattern.
    pub received: u64,
    /// Simulated completion time (when the server reached EOF), seconds.
    pub duration_s: f64,
    pub client_error: Option<lsl_tcp::TcpError>,
    pub server_error: Option<lsl_tcp::TcpError>,
}

/// Drive a one-directional bulk transfer of `total` patterned bytes from
/// `src` to a listener on `dst`, verifying content at the receiver.
/// Returns when the simulation quiesces.
pub fn run_bulk_transfer(
    net: &mut Net,
    src: NodeId,
    dst: NodeId,
    port: u16,
    total: u64,
    cfg: TcpConfig,
) -> TransferResult {
    let listener = net.listen(dst, port, cfg.clone());
    let client = net.connect(src, dst, port, cfg);
    let mut res = TransferResult {
        client,
        server_conn: None,
        received: 0,
        duration_s: f64::NAN,
        client_error: None,
        server_error: None,
    };
    let mut sent: u64 = 0;
    let mut eof_seen = false;

    while let Some(ev) = net.poll() {
        match ev {
            AppEvent::Sock { sock, event } => match event {
                SockEvent::Connected | SockEvent::Writable if sock == client => {
                    pump_send(net, client, &mut sent, total);
                }
                SockEvent::Accepted { conn } if sock == listener => {
                    res.server_conn = Some(conn);
                }
                SockEvent::Readable => {
                    let b = net.recv(sock, 1 << 20);
                    for (i, &byte) in b.iter().enumerate() {
                        assert_eq!(
                            byte,
                            pattern(res.received + i as u64),
                            "corruption at offset {}",
                            res.received + i as u64
                        );
                    }
                    res.received += b.len() as u64;
                    if eof_seen && net.at_eof(sock) {
                        res.duration_s = net.now().as_secs_f64();
                        net.close(sock);
                    }
                }
                SockEvent::PeerFin => {
                    eof_seen = true;
                    // Drain whatever is left, then close our side.
                    let b = net.recv(sock, usize::MAX);
                    for (i, &byte) in b.iter().enumerate() {
                        assert_eq!(byte, pattern(res.received + i as u64));
                    }
                    res.received += b.len() as u64;
                    if net.at_eof(sock) {
                        res.duration_s = net.now().as_secs_f64();
                        net.close(sock);
                    }
                }
                SockEvent::Error(e) => {
                    if sock == client {
                        res.client_error = Some(e);
                    } else {
                        res.server_error = Some(e);
                    }
                }
                _ => {}
            },
            AppEvent::Timer { .. } | AppEvent::Fault(_) => {}
        }
    }
    res
}

fn pump_send(net: &mut Net, client: SockId, sent: &mut u64, total: u64) {
    while *sent < total {
        let space = net.send_space(client);
        if space == 0 {
            // A short write below re-arms Writable; force it by offering
            // one byte.
            let n = net.send(client, &pattern_chunk(*sent, 1));
            *sent += n as u64;
            if n == 0 {
                return;
            }
            continue;
        }
        let chunk = space.min(256 * 1024).min(total - *sent) as usize;
        let n = net.send(client, &pattern_chunk(*sent, chunk));
        *sent += n as u64;
        if n < chunk {
            return;
        }
    }
    if *sent == total {
        net.close(client);
        *sent += 1; // sentinel so we do not close twice
    }
}

/// A config with fast teardown for tests.
pub fn test_cfg() -> TcpConfig {
    TcpConfig {
        time_wait: Dur::from_millis(10),
        ..TcpConfig::default()
    }
}
