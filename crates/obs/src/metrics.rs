//! Deterministic metrics registry: counters, gauges, and fixed
//! power-of-two-bucket histograms.
//!
//! Keys are `(&'static str, u64)` — a static metric name plus a small
//! numeric index (link id, `FaultKind` discriminant, attempt number) —
//! so recording never allocates a key string. Everything lives in
//! `BTreeMap`s, all arithmetic saturates, and quantile readouts are
//! pure integer bucket-bound lookups: no wall clock, no hash-order
//! nondeterminism, no float comparisons anywhere.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Metric key: static name + numeric index.
pub type Key = (&'static str, u64);

/// Number of histogram buckets: bucket `i` holds values whose bit
/// length is `i` (bucket 0 holds only zero), so bucket `i >= 1` covers
/// `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// Fixed-bucket histogram over `u64` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations (saturating).
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: its bit length (0 for 0).
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let i = bucket_index(value);
        self.buckets[i] = self.buckets[i].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Deterministic quantile readout: the inclusive upper bound of the
    /// first bucket at which the cumulative count reaches
    /// `ceil(count * num / den)`. Returns 0 on an empty histogram.
    /// Integer-only, so `p50 = quantile_upper(1, 2)`,
    /// `p99 = quantile_upper(99, 100)`.
    pub fn quantile_upper(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 || den == 0 {
            return 0;
        }
        // ceil(count * num / den) without overflow for realistic counts.
        let rank = (self.count.saturating_mul(num)).div_ceil(den).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                // Tighten the top bucket's bound with the observed max.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// Live registry; snapshot it with [`Registry::take_snapshot`].
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// Saturating add to a counter.
    pub fn counter_add(&mut self, name: &'static str, idx: u64, delta: u64) {
        let v = self.counters.entry((name, idx)).or_insert(0);
        *v = v.saturating_add(delta);
    }

    /// Raise a high-watermark gauge.
    pub fn gauge_max(&mut self, name: &'static str, idx: u64, value: u64) {
        let v = self.gauges.entry((name, idx)).or_insert(0);
        *v = (*v).max(value);
    }

    /// Overwrite a last-value gauge.
    pub fn gauge_set(&mut self, name: &'static str, idx: u64, value: u64) {
        self.gauges.insert((name, idx), value);
    }

    /// Record a histogram observation.
    pub fn hist_observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }

    /// Drain the registry into an immutable snapshot.
    pub fn take_snapshot(&mut self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::mem::take(&mut self.counters),
            gauges: std::mem::take(&mut self.gauges),
            hists: std::mem::take(&mut self.hists),
        }
    }
}

/// Immutable, orderable snapshot of every metric a run recorded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<Key, u64>,
    /// High-watermark / last-value gauges.
    pub gauges: BTreeMap<Key, u64>,
    /// Fixed-bucket histograms.
    pub hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// True when no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str, idx: u64) -> u64 {
        lookup(&self.counters, name, idx).unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str, idx: u64) -> Option<u64> {
        lookup(&self.gauges, name, idx)
    }

    /// Histogram by name, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists
            .iter()
            .find(|(n, _)| ***n == *name)
            .map(|(_, h)| h)
    }

    /// Canonical text rendering: BTree order, integer-only, one line
    /// per metric — the byte-identical artifact the determinism tests
    /// compare.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for ((name, idx), v) in &self.counters {
            let _ = writeln!(out, "  {name}[{idx}] = {v}");
        }
        out.push_str("gauges:\n");
        for ((name, idx), v) in &self.gauges {
            let _ = writeln!(out, "  {name}[{idx}] = {v}");
        }
        out.push_str("histograms:\n");
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                "  {name}: count={} sum={} min={} max={} p50<={} p99<={}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile_upper(1, 2),
                h.quantile_upper(99, 100),
            );
            for (i, &c) in h.buckets.iter().enumerate() {
                if c != 0 {
                    let _ = writeln!(out, "    <={} : {c}", bucket_upper_bound(i));
                }
            }
        }
        out
    }
}

fn lookup(map: &BTreeMap<Key, u64>, name: &str, idx: u64) -> Option<u64> {
    map.iter()
        .find(|((n, i), _)| *n == name && *i == idx)
        .map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        // rank(p50) = ceil(5/2) = 3 -> third observation in bucket
        // order: values 1 (b1), 2,3 (b2) -> cumulative reaches 3 at
        // bucket 2, upper bound 3.
        assert_eq!(h.quantile_upper(1, 2), 3);
        // p99 -> rank 5 -> bucket of 1000 (b10, bound 1023), tightened
        // to the observed max.
        assert_eq!(h.quantile_upper(99, 100), 1000);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::default().quantile_upper(1, 2), 0);
    }

    #[test]
    fn saturating_counters() {
        let mut r = Registry::default();
        r.counter_add("c", 0, u64::MAX);
        r.counter_add("c", 0, 5);
        let snap = r.take_snapshot();
        assert_eq!(snap.counter("c", 0), u64::MAX);
    }

    #[test]
    fn render_orders_keys() {
        let mut r = Registry::default();
        r.gauge_max("z", 0, 1);
        r.gauge_max("a", 2, 9);
        r.gauge_max("a", 1, 3);
        let text = r.take_snapshot().render();
        let a1 = text.find("a[1] = 3").unwrap();
        let a2 = text.find("a[2] = 9").unwrap();
        let z = text.find("z[0] = 1").unwrap();
        assert!(a1 < a2 && a2 < z, "{text}");
    }

    #[test]
    fn snapshot_lookups() {
        let mut r = Registry::default();
        r.counter_add("c", 7, 2);
        r.gauge_set("g", 0, 11);
        r.hist_observe("h", 42);
        let snap = r.take_snapshot();
        assert_eq!(snap.counter("c", 7), 2);
        assert_eq!(snap.counter("missing", 0), 0);
        assert_eq!(snap.gauge("g", 0), Some(11));
        assert_eq!(snap.gauge("g", 1), None);
        assert_eq!(snap.hist("h").unwrap().count, 1);
    }
}
