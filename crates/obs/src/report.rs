//! Flight-recorder rendering: a per-run human-readable summary of one
//! [`ObsReport`] — the table `obs-report` prints and the chaos soak
//! attaches to every failing seed.

use std::fmt::Write as _;

use crate::span::SpanPhase;
use crate::ObsReport;

/// Span/instant names that mark a recovery-ladder arm being taken;
/// the flight recorder calls these out in their own section.
pub const RECOVERY_ARMS: &[&str] = &[
    "session.reconnect",
    "session.failover",
    "session.retransfer",
    "session.degrade",
];

/// Render sim nanoseconds as `s.mmmuuunnn` seconds (integer math).
fn t_s(t_ns: u64) -> String {
    format!("{}.{:09}", t_ns / 1_000_000_000, t_ns % 1_000_000_000)
}

/// Render the flight-recorder table for one run: event counts, the
/// full span timeline, recovery arms taken, resume offsets, bytes
/// resent, and p50/p99 readouts for every histogram.
pub fn flight_recorder(label: &str, report: &ObsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== flight recorder: {label} ==");
    let _ = writeln!(
        out,
        "span events: {}   metrics: {} counters, {} gauges, {} histograms",
        report.spans.len(),
        report.metrics.counters.len(),
        report.metrics.gauges.len(),
        report.metrics.hists.len(),
    );

    let arms: Vec<&crate::SpanEvent> = report
        .spans
        .iter()
        .filter(|e| RECOVERY_ARMS.contains(&e.name) && e.phase != SpanPhase::End)
        .collect();
    if arms.is_empty() {
        let _ = writeln!(out, "recovery arms taken: none");
    } else {
        let _ = writeln!(out, "recovery arms taken: {}", arms.len());
        for e in &arms {
            let _ = writeln!(out, "  {:>14}s  {} (id {})", t_s(e.t_ns), e.name, e.id);
        }
    }

    let resumes: Vec<_> = report
        .metrics
        .gauges
        .iter()
        .filter(|((n, _), _)| n.starts_with("session.resume_offset"))
        .collect();
    for ((name, idx), v) in &resumes {
        let _ = writeln!(out, "resume offset: {name}[{idx}] = {v} bytes");
    }
    let resent = report
        .metrics
        .counter("session.bytes_resent_after_resume", 0);
    if resent > 0 || !resumes.is_empty() {
        let _ = writeln!(out, "bytes resent after resume: {resent}");
    }

    out.push_str("timeline:\n");
    for e in &report.spans {
        let _ = writeln!(
            out,
            "  {:>14}s  {} {} (id {})",
            t_s(e.t_ns),
            e.phase.code(),
            e.name,
            e.id
        );
    }

    if !report.metrics.hists.is_empty() {
        out.push_str("histograms (p50/p99 are bucket upper bounds):\n");
        for (name, h) in &report.metrics.hists {
            let _ = writeln!(
                out,
                "  {name:<36} n={:<8} p50<={:<12} p99<={:<12} max={}",
                h.count,
                h.quantile_upper(1, 2),
                h.quantile_upper(99, 100),
                h.max
            );
        }
    }

    if !report.metrics.counters.is_empty() {
        out.push_str("counters:\n");
        for ((name, idx), v) in &report.metrics.counters {
            let _ = writeln!(out, "  {name}[{idx}] = {v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorded;

    #[test]
    fn flight_recorder_sections() {
        let ((), rep) = recorded(|| {
            crate::span_begin(0, "session.setup", 0);
            crate::instant(1_000_000, "session.reconnect", 1);
            crate::instant(2_000_000, "session.failover", 1);
            crate::span_end(3_000_000, "session.setup", 0);
            crate::gauge_set("session.resume_offset", 0, 131072);
            crate::counter_add("session.bytes_resent_after_resume", 0, 4096);
            crate::hist_observe("session.recovery_ns", 1_000_000);
        });
        let text = flight_recorder("seed 42", &rep);
        assert!(text.contains("flight recorder: seed 42"), "{text}");
        assert!(text.contains("recovery arms taken: 2"), "{text}");
        assert!(text.contains("session.failover"), "{text}");
        assert!(
            text.contains("resume offset: session.resume_offset[0] = 131072"),
            "{text}"
        );
        assert!(text.contains("bytes resent after resume: 4096"), "{text}");
        assert!(text.contains("p50<="), "{text}");
        assert!(text.contains("0.001000000"), "{text}");
    }

    #[test]
    fn quiet_run_reports_no_arms() {
        let ((), rep) = recorded(|| {
            crate::span_begin(0, "session.setup", 0);
            crate::span_end(5, "session.setup", 0);
        });
        let text = flight_recorder("ok", &rep);
        assert!(text.contains("recovery arms taken: none"), "{text}");
    }
}
