//! Span events: begin/end/instant markers stamped with sim time.
//!
//! A span is identified by a `&'static str` name plus a `u64` id; the
//! id keeps overlapping spans of the same name apart (attempt number,
//! session id, link id). Names form a dotted taxonomy
//! (`layer.object.action`, e.g. `session.attempt`,
//! `depot.relay`, `netsim.fault`) documented in DESIGN.md.

use std::fmt;

/// What a [`SpanEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span opens.
    Begin,
    /// Span closes.
    End,
    /// Point event with no duration.
    Instant,
}

impl SpanPhase {
    /// One-letter code used in the canonical span log (`B`/`E`/`I`).
    pub fn code(self) -> char {
        match self {
            SpanPhase::Begin => 'B',
            SpanPhase::End => 'E',
            SpanPhase::Instant => 'I',
        }
    }

    /// Chrome trace-event `ph` value (async begin/end, instant).
    pub fn chrome_ph(self) -> char {
        match self {
            SpanPhase::Begin => 'b',
            SpanPhase::End => 'e',
            SpanPhase::Instant => 'i',
        }
    }
}

impl fmt::Display for SpanPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One recorded span event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Sim time in nanoseconds since run start.
    pub t_ns: u64,
    /// Begin, end, or instant.
    pub phase: SpanPhase,
    /// Static span name (`layer.object.action`).
    pub name: &'static str,
    /// Disambiguator for overlapping same-name spans.
    pub id: u64,
}

impl SpanEvent {
    /// Canonical log line: `<t_ns> <B|E|I> <name> <id>`.
    pub fn render_line(&self) -> String {
        format!(
            "{} {} {} {}",
            self.t_ns,
            self.phase.code(),
            self.name,
            self.id
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_shape() {
        let e = SpanEvent {
            t_ns: 1_500,
            phase: SpanPhase::Begin,
            name: "session.setup",
            id: 7,
        };
        assert_eq!(e.render_line(), "1500 B session.setup 7");
    }

    #[test]
    fn phase_codes() {
        assert_eq!(SpanPhase::Begin.code(), 'B');
        assert_eq!(SpanPhase::End.code(), 'E');
        assert_eq!(SpanPhase::Instant.code(), 'I');
        assert_eq!(SpanPhase::Begin.chrome_ph(), 'b');
        assert_eq!(SpanPhase::End.chrome_ph(), 'e');
        assert_eq!(SpanPhase::Instant.chrome_ph(), 'i');
    }
}
