//! Telemetry exporters: Chrome trace-event JSON (perfetto-loadable),
//! JSONL span streams, and gnuplot `.dat` timelines following the
//! `lsl-trace::export` conventions.
//!
//! All output is generated with integer-only formatting from already
//! deterministic inputs, so merging a campaign's reports **in index
//! order** yields byte-identical files whatever `--jobs` count
//! produced them. JSON is hand-assembled (the build is offline — no
//! serde); one trace event per line, which also keeps the shape
//! checkable by the CI gate with line-oriented tools.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::span::SpanPhase;
use crate::ObsReport;

/// Schema version stamped into every exported trace file; bump when
/// the event shape changes.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Render sim nanoseconds as Chrome trace microseconds with the
/// nanosecond remainder as a fixed three-digit fraction (`12.345`).
/// Pure integer formatting: no float rounding in the artifact.
fn ts_us(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

/// Minimal JSON string escaping for run labels (span names are static
/// identifiers and never need it, but labels are caller-supplied).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Build a Chrome trace-event JSON document from one or more labelled
/// run reports. Each run becomes its own `pid` (in slice order) with a
/// `process_name` metadata record, so a campaign merge is just "pass
/// the reports in index order". Spans use async `b`/`e` events keyed
/// by `(cat, name, id)`; instants use `i` with thread scope. Within
/// each pid, `ts` is nondecreasing (sim time is monotone).
pub fn chrome_trace_json(runs: &[(String, &ObsReport)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "\"schemaVersion\": {TRACE_SCHEMA_VERSION},");
    out.push_str("\"displayTimeUnit\": \"ms\",\n");
    out.push_str("\"traceEvents\": [\n");
    let mut first = true;
    for (pid, (label, report)) in runs.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(label)
        );
        for e in &report.spans {
            out.push_str(",\n");
            match e.phase {
                SpanPhase::Begin | SpanPhase::End => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"{}\",\"cat\":\"lsl\",\"name\":\"{}\",\"id\":\"0x{:x}\",\"pid\":{pid},\"tid\":0,\"ts\":{}}}",
                        e.phase.chrome_ph(),
                        e.name,
                        e.id,
                        ts_us(e.t_ns)
                    );
                }
                SpanPhase::Instant => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"lsl\",\"name\":\"{}\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"id\":{}}}}}",
                        e.name,
                        ts_us(e.t_ns),
                        e.id
                    );
                }
            }
        }
    }
    out.push_str("\n]\n}\n");
    out
}

/// Write [`chrome_trace_json`] to `dir/<stem>.trace.json`.
pub fn write_chrome_trace(
    dir: impl AsRef<Path>,
    stem: &str,
    runs: &[(String, &ObsReport)],
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.trace.json"));
    fs::write(&path, chrome_trace_json(runs))?;
    Ok(path)
}

/// Write the span log as JSONL (`dir/<stem>.spans.jsonl`): one
/// `{"t_ns":..,"ph":"B","name":"..","id":..}` object per line, in
/// recording order.
pub fn write_span_jsonl(
    dir: impl AsRef<Path>,
    stem: &str,
    report: &ObsReport,
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut out = String::new();
    for e in &report.spans {
        let _ = writeln!(
            out,
            "{{\"t_ns\":{},\"ph\":\"{}\",\"name\":\"{}\",\"id\":{}}}",
            e.t_ns,
            e.phase.code(),
            e.name,
            e.id
        );
    }
    let path = dir.join(format!("{stem}.spans.jsonl"));
    fs::write(&path, out)?;
    Ok(path)
}

/// Write the span log as a gnuplot timeline `.dat`
/// (`dir/<stem>.spans.dat`): one `t_s  # <phase> <name> <id>` row per
/// event, matching `lsl_trace::export::write_timeline_dat`'s shape.
pub fn write_span_dat(
    dir: impl AsRef<Path>,
    stem: &str,
    report: &ObsReport,
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut out = String::new();
    let _ = writeln!(out, "# {stem}: {} span event(s)", report.spans.len());
    for e in &report.spans {
        // Seconds with nanosecond precision, integer-rendered.
        let _ = writeln!(
            out,
            "{}.{:09}  # {} {} {}",
            e.t_ns / 1_000_000_000,
            e.t_ns % 1_000_000_000,
            e.phase.code(),
            e.name,
            e.id
        );
    }
    let path = dir.join(format!("{stem}.spans.dat"));
    fs::write(&path, out)?;
    Ok(path)
}

/// Write the canonical metrics snapshot text to
/// `dir/<stem>.metrics.txt` — the byte-identical artifact the
/// determinism tests compare.
pub fn write_metrics_txt(
    dir: impl AsRef<Path>,
    stem: &str,
    report: &ObsReport,
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.metrics.txt"));
    fs::write(&path, report.metrics.render())?;
    Ok(path)
}

/// Validate an exported Chrome trace document's shape: schema version
/// present, every event line parseable, and `ts` nondecreasing within
/// each `pid`. Returns a description of the first problem found.
/// Relies on the one-event-per-line layout [`chrome_trace_json`]
/// guarantees.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    if !json.contains(&format!("\"schemaVersion\": {TRACE_SCHEMA_VERSION}")) {
        return Err(format!("missing schemaVersion {TRACE_SCHEMA_VERSION}"));
    }
    let mut events = 0usize;
    // pid -> last ts in (us, ns-fraction) integer form.
    let mut last_ts: std::collections::BTreeMap<u64, (u64, u64)> =
        std::collections::BTreeMap::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"ph\":") {
            continue;
        }
        events += 1;
        let pid = match field(line, "\"pid\":") {
            Some(p) => p,
            None => return Err(format!("event without pid: {line}")),
        };
        let pid: u64 = pid
            .parse()
            .map_err(|_| format!("unparseable pid in: {line}"))?;
        if let Some(ts) = field(line, "\"ts\":") {
            let (us, frac) = match ts.split_once('.') {
                Some((a, b)) => (
                    a.parse::<u64>().map_err(|_| format!("bad ts: {line}"))?,
                    b.parse::<u64>().map_err(|_| format!("bad ts: {line}"))?,
                ),
                None => (ts.parse::<u64>().map_err(|_| format!("bad ts: {line}"))?, 0),
            };
            let prev = last_ts.entry(pid).or_insert((0, 0));
            if (us, frac) < *prev {
                return Err(format!(
                    "ts not monotone within pid {pid}: {us}.{frac:03} after {}.{:03}",
                    prev.0, prev.1
                ));
            }
            *prev = (us, frac);
        }
    }
    if events == 0 {
        return Err("no trace events".to_string());
    }
    Ok(events)
}

/// Extract the raw value following `key` up to the next `,` or `}`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorded;

    fn sample() -> ObsReport {
        let ((), rep) = recorded(|| {
            crate::span_begin(1_000, "session.attempt", 1);
            crate::instant(1_500, "session.reconnect", 1);
            crate::span_end(2_000_500, "session.attempt", 1);
            crate::counter_add("tcp.retransmit.rto", 0, 1);
        });
        rep
    }

    #[test]
    fn chrome_trace_shape_and_validation() {
        let rep = sample();
        let json = chrome_trace_json(&[("seed 7".to_string(), &rep)]);
        assert!(json.contains("\"schemaVersion\": 1"), "{json}");
        assert!(json.contains("\"ph\":\"b\""), "{json}");
        assert!(json.contains("\"ph\":\"e\""), "{json}");
        assert!(json.contains("\"ts\":2000.500"), "{json}");
        assert!(json.contains("seed 7"), "{json}");
        let n = validate_chrome_trace(&json).expect("valid");
        assert_eq!(n, 4, "3 span events + 1 metadata record");
    }

    #[test]
    fn validation_rejects_non_monotone_ts() {
        let rep = sample();
        let json = chrome_trace_json(&[("x".to_string(), &rep)]);
        // Swap the two timestamps to fabricate a regression.
        let bad = json.replace("\"ts\":1.000", "\"ts\":9999.000");
        assert!(validate_chrome_trace(&bad).is_err());
    }

    #[test]
    fn multi_run_merge_is_per_pid_monotone() {
        let a = sample();
        let b = sample();
        let json = chrome_trace_json(&[("run 0".to_string(), &a), ("run 1".to_string(), &b)]);
        // Run 1 restarts at ts 1.000 after run 0 ended at 2000.500 —
        // valid because monotonicity is per pid.
        validate_chrome_trace(&json).expect("per-pid monotone");
        assert!(json.contains("\"pid\":1"), "{json}");
    }

    #[test]
    fn merge_is_independent_of_production_order() {
        let a = sample();
        let b = sample();
        let j1 = chrome_trace_json(&[("r0".to_string(), &a), ("r1".to_string(), &b)]);
        let j2 = chrome_trace_json(&[
            ("r0".to_string(), &a.clone()),
            ("r1".to_string(), &b.clone()),
        ]);
        assert_eq!(j1, j2);
    }

    #[test]
    fn jsonl_and_dat_files_roundtrip() {
        let rep = sample();
        let dir = std::env::temp_dir().join("lsl_obs_export_test");
        let p1 = write_span_jsonl(&dir, "t", &rep).unwrap();
        let p2 = write_span_dat(&dir, "t", &rep).unwrap();
        let p3 = write_metrics_txt(&dir, "t", &rep).unwrap();
        let jsonl = std::fs::read_to_string(p1).unwrap();
        assert!(
            jsonl.contains("{\"t_ns\":1000,\"ph\":\"B\",\"name\":\"session.attempt\",\"id\":1}")
        );
        let dat = std::fs::read_to_string(p2).unwrap();
        assert!(dat.contains("0.000001000  # B session.attempt 1"), "{dat}");
        let txt = std::fs::read_to_string(p3).unwrap();
        assert!(txt.contains("tcp.retransmit.rto[0] = 1"), "{txt}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn validation_requires_schema_and_events() {
        assert!(validate_chrome_trace("{}").is_err());
        let empty = chrome_trace_json(&[]);
        assert!(validate_chrome_trace(&empty).is_err(), "no events");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
