//! Deterministic observability plane for the LSL stack.
//!
//! Every layer of the simulator (netsim, tcp, session, workloads)
//! reports telemetry through this crate: **spans** (begin/end/instant
//! events stamped with sim time) and **metrics** (counters, gauges,
//! fixed-bucket histograms). Two properties are non-negotiable and
//! shape the whole design:
//!
//! - **Determinism.** No wall clock anywhere: timestamps are the
//!   caller's sim time in nanoseconds (`u64`). All registries are
//!   BTree-ordered, all arithmetic is saturating integer math, and the
//!   canonical renderings ([`ObsReport::render`],
//!   [`metrics::MetricsSnapshot::render`]) are byte-identical for
//!   same-seed runs — the chaos fingerprint contract extends over them.
//! - **Near-zero hot-path cost.** Recording is off by default; every
//!   entry point first checks a thread-local `Cell<bool>`. When
//!   enabled, span names are `&'static str` (no interning table, no
//!   formatting) and events append to a `Vec` — no per-event
//!   allocation beyond amortized growth.
//!
//! The recorder is **thread-local**, mirroring
//! `lsl_netsim::invariants`: each simulation runs on one thread, so
//! parallel campaign workers never mix telemetry. A run brackets
//! itself with [`recorded`] (or `enable`/`take`) and gets back an
//! [`ObsReport`] it can render, export ([`export`]), or summarize
//! ([`report::flight_recorder`]).

pub mod export;
pub mod metrics;
pub mod report;
pub mod span;

pub use metrics::MetricsSnapshot;
pub use span::{SpanEvent, SpanPhase};

use std::cell::{Cell, RefCell};

#[derive(Default)]
struct Recorder {
    spans: Vec<SpanEvent>,
    metrics: metrics::Registry,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::default());
}

/// Everything one run recorded: the span log plus a metrics snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ObsReport {
    /// Span events in recording order (nondecreasing sim time).
    pub spans: Vec<SpanEvent>,
    /// Snapshot of every counter/gauge/histogram at capture time.
    pub metrics: MetricsSnapshot,
}

impl ObsReport {
    /// Canonical text form: the span log followed by the metrics
    /// snapshot. Byte-identical across same-seed runs; this is the
    /// string the determinism tests and fingerprints hash.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 32);
        out.push_str("spans:\n");
        for s in &self.spans {
            out.push_str(&s.render_line());
            out.push('\n');
        }
        out.push_str(&self.metrics.render());
        out
    }

    /// FNV-1a 64-bit digest of [`render`](Self::render) — a compact
    /// handle for fingerprint strings.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.render().as_bytes())
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.metrics.is_empty()
    }
}

/// FNV-1a over `bytes`; the same hash the netsim golden trace uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Turn recording on for this thread. Does not clear prior state —
/// pair with [`reset`] (or use [`recorded`]) at run boundaries.
pub fn enable() {
    ENABLED.with(|e| e.set(true));
}

/// Turn recording off for this thread.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
}

/// Whether recording is currently on for this thread.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Clear all recorded spans and metrics on this thread.
pub fn reset() {
    RECORDER.with(|r| *r.borrow_mut() = Recorder::default());
}

/// Drain this thread's telemetry into an [`ObsReport`], leaving the
/// recorder empty. The enabled flag is untouched.
pub fn take() -> ObsReport {
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        ObsReport {
            spans: std::mem::take(&mut rec.spans),
            metrics: rec.metrics.take_snapshot(),
        }
    })
}

/// Run `f` with recording enabled on a clean recorder and return its
/// result together with the captured [`ObsReport`]. The previous
/// enabled state is restored afterwards, so nesting is safe.
pub fn recorded<T>(f: impl FnOnce() -> T) -> (T, ObsReport) {
    let was = is_enabled();
    reset();
    enable();
    let out = f();
    let rep = take();
    ENABLED.with(|e| e.set(was));
    (out, rep)
}

/// Record the beginning of a span. `id` disambiguates overlapping
/// spans of the same name (attempt number, session id, link id…).
#[inline]
pub fn span_begin(t_ns: u64, name: &'static str, id: u64) {
    push_span(t_ns, SpanPhase::Begin, name, id);
}

/// Record the end of the span opened by `span_begin(name, id)`.
#[inline]
pub fn span_end(t_ns: u64, name: &'static str, id: u64) {
    push_span(t_ns, SpanPhase::End, name, id);
}

/// Record a point event (no duration).
#[inline]
pub fn instant(t_ns: u64, name: &'static str, id: u64) {
    push_span(t_ns, SpanPhase::Instant, name, id);
}

#[inline]
fn push_span(t_ns: u64, phase: SpanPhase, name: &'static str, id: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| {
        r.borrow_mut().spans.push(SpanEvent {
            t_ns,
            phase,
            name,
            id,
        })
    });
}

/// Add `delta` to the counter `name[idx]` (saturating).
#[inline]
pub fn counter_add(name: &'static str, idx: u64, delta: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.counter_add(name, idx, delta));
}

/// Raise the high-watermark gauge `name[idx]` to at least `value`.
#[inline]
pub fn gauge_max(name: &'static str, idx: u64, value: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.gauge_max(name, idx, value));
}

/// Set the last-value gauge `name[idx]` to `value`.
#[inline]
pub fn gauge_set(name: &'static str, idx: u64, value: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.gauge_set(name, idx, value));
}

/// Record `value` into the power-of-two-bucket histogram `name`.
#[inline]
pub fn hist_observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().metrics.hist_observe(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        reset();
        disable();
        span_begin(1, "x", 0);
        counter_add("c", 0, 1);
        hist_observe("h", 7);
        let rep = take();
        assert!(rep.is_empty());
    }

    #[test]
    fn recorded_captures_and_restores() {
        disable();
        let ((), rep) = recorded(|| {
            span_begin(10, "session.attempt", 1);
            span_end(20, "session.attempt", 1);
            instant(15, "session.reconnect", 1);
            counter_add("tcp.retransmit.fast", 0, 2);
            gauge_max("netsim.link.queue_pkts_hwm", 3, 17);
            gauge_set("session.resume_offset", 0, 65536);
            hist_observe("session.recovery_ns", 1_000_000);
        });
        assert!(!is_enabled(), "previous enabled state restored");
        assert_eq!(rep.spans.len(), 3);
        assert_eq!(rep.spans[0].name, "session.attempt");
        let text = rep.render();
        assert!(text.contains("10 B session.attempt 1"), "{text}");
        assert!(text.contains("tcp.retransmit.fast[0] = 2"), "{text}");
        assert!(text.contains("session.resume_offset[0] = 65536"), "{text}");
        // Same input -> same digest; different input -> different.
        let ((), rep2) = recorded(|| {
            span_begin(10, "session.attempt", 1);
        });
        assert_ne!(rep.digest(), rep2.digest());
    }

    #[test]
    fn render_is_deterministic_across_insertion_orders() {
        let ((), a) = recorded(|| {
            counter_add("b", 1, 1);
            counter_add("a", 0, 1);
        });
        let ((), b) = recorded(|| {
            counter_add("a", 0, 1);
            counter_add("b", 1, 1);
        });
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
