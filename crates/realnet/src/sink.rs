//! Sink-side LSL listener over real TCP.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use lsl_digest::Md5;
use lsl_session::endpoint::SESSION_CONFIRM;
use lsl_session::{LslHeader, SessionId};

use crate::wire::read_header;

/// A sink for LSL sessions.
pub struct LslListener {
    listener: TcpListener,
}

/// One accepted session, ready to be consumed.
pub struct IncomingSession {
    stream: TcpStream,
    header: LslHeader,
    leftover: Vec<u8>,
}

impl LslListener {
    pub fn bind(addr: SocketAddr) -> io::Result<LslListener> {
        Ok(LslListener {
            listener: TcpListener::bind(addr)?,
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Block for the next session; reads its header and sends the
    /// synchronous session confirmation.
    pub fn accept(&self) -> io::Result<IncomingSession> {
        let (mut stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        let (header, leftover) = read_header(&mut stream)?;
        if !header.route.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sink received a header with residual route hops",
            ));
        }
        stream.write_all(&[SESSION_CONFIRM])?;
        Ok(IncomingSession {
            stream,
            header,
            leftover,
        })
    }
}

impl IncomingSession {
    pub fn session(&self) -> SessionId {
        self.header.session
    }

    pub fn announced_length(&self) -> u64 {
        self.header.length
    }

    /// Consume the whole stream. Returns the payload and, when a digest
    /// was sent, whether it verified.
    ///
    /// The announced length is authoritative: payload is exactly
    /// `length` bytes, followed by the 16-byte digest when flagged.
    pub fn read_all(mut self) -> io::Result<(Vec<u8>, Option<bool>)> {
        let length = self.header.length as usize;
        let mut payload = Vec::with_capacity(length.min(1 << 26));
        payload.extend_from_slice(&self.leftover);
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                break;
            }
            payload.extend_from_slice(&buf[..n]);
        }
        let digest_ok = if self.header.has_digest() {
            if payload.len() != length + 16 {
                Some(false)
            } else {
                let trailer = payload.split_off(length);
                let mut md5 = Md5::new();
                md5.update(&payload);
                Some(md5.finalize()[..] == trailer[..])
            }
        } else {
            if payload.len() != length {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("announced {length} bytes, received {}", payload.len()),
                ));
            }
            None
        };
        Ok((payload, digest_ok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::LslStream;
    use std::net::Ipv4Addr;

    /// Direct (no-depot) loopback session exercise of listener+stream.
    #[test]
    fn direct_loopback_session_with_digest() {
        let listener = LslListener::bind((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();

        let t = std::thread::spawn(move || {
            let mut s =
                LslStream::connect(SessionId(5), &[], addr, expect.len() as u64, true, true)
                    .unwrap();
            s.write_all(&expect).unwrap();
            s.finish().unwrap();
        });

        let sess = listener.accept().unwrap();
        assert_eq!(sess.session(), SessionId(5));
        assert_eq!(sess.announced_length(), payload.len() as u64);
        let (got, digest_ok) = sess.read_all().unwrap();
        assert_eq!(got, payload);
        assert_eq!(digest_ok, Some(true));
        t.join().unwrap();
    }

    #[test]
    fn finish_rejects_short_write() {
        let listener = LslListener::bind((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = LslStream::connect(SessionId(6), &[], addr, 100, true, true).unwrap();
            s.write_all(b"only a little").unwrap();
            let err = s.finish().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        });
        let sess = listener.accept().unwrap();
        // The sender aborted; digest can't verify.
        let result = sess.read_all();
        match result {
            Ok((_, Some(ok))) => assert!(!ok),
            Ok((_, None)) => panic!("digest was announced"),
            Err(_) => {} // connection error is acceptable
        }
        t.join().unwrap();
    }
}
