//! LSL over real kernel TCP (`std::net`): the deployable counterpart of
//! the simulated stack, runnable on loopback or a real network.
//!
//! * [`LsdServer`] — the `lsd` depot daemon: an unprivileged, user-level
//!   relay exactly as the paper describes (§IV.A), one thread pair per
//!   relay direction, bounded copy buffers, same wire header as the
//!   simulator (`lsl_session::header`).
//! * [`LslStream`] — client side: connect along a loose source route of
//!   depots, stream data, MD5 digest appended automatically.
//! * [`LslListener`] — sink side: accept sessions, verify the digest.
//!
//! Addressing: route hops are IPv4 socket addresses; the shared header's
//! 32-bit node field carries the IPv4 address bits (`wire` converts).

pub mod depot;
pub mod sink;
pub mod stream;
pub mod wire;

pub use depot::{DepotHandle, LsdServer};
pub use sink::{IncomingSession, LslListener};
pub use stream::LslStream;
