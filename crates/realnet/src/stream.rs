//! Client-side LSL stream over real TCP.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};

use lsl_digest::Md5;
use lsl_session::endpoint::SESSION_CONFIRM;
use lsl_session::{LslHeader, SessionId, HEADER_FLAG_DIGEST};

use crate::wire::{hop_from_addr, require_v4};

/// An outbound LSL session: connects to the first hop, sends the header,
/// (optionally) waits for the sink's confirmation, then streams writes;
/// [`LslStream::finish`] appends the MD5 digest and half-closes.
pub struct LslStream {
    stream: TcpStream,
    md5: Option<Md5>,
    length: u64,
    written: u64,
}

impl LslStream {
    /// Open a session along `depots` toward `dst`, announcing a payload
    /// of exactly `length` bytes. `sync` waits for the sink confirmation
    /// before returning (the paper's synchronous mode).
    pub fn connect(
        session: SessionId,
        depots: &[SocketAddr],
        dst: SocketAddr,
        length: u64,
        digest: bool,
        sync: bool,
    ) -> io::Result<LslStream> {
        // The header's route lists the hops *after* the first connection:
        // all later depots, then the destination. A direct session (no
        // depots) therefore carries an empty route.
        let mut route = Vec::with_capacity(depots.len());
        for d in depots.iter().skip(1) {
            route.push(hop_from_addr(require_v4(*d)?));
        }
        if !depots.is_empty() {
            route.push(hop_from_addr(require_v4(dst)?));
        }
        let first = depots.first().copied().unwrap_or(dst);

        let header = LslHeader {
            session,
            flags: if digest { HEADER_FLAG_DIGEST } else { 0 },
            length,
            resume: None,
            stripe: None,
            route,
        };
        let mut stream = TcpStream::connect(first)?;
        stream.set_nodelay(true)?;
        let header_bytes = header
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        stream.write_all(&header_bytes)?;
        if sync {
            let mut confirm = [0u8; 1];
            stream.read_exact(&mut confirm)?;
            if confirm[0] != SESSION_CONFIRM {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad session confirmation",
                ));
            }
        }
        Ok(LslStream {
            stream,
            md5: digest.then(Md5::new),
            length,
            written: 0,
        })
    }

    /// Payload bytes written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush the digest trailer (if any) and half-close the session.
    /// Exactly `length` bytes must have been written.
    pub fn finish(mut self) -> io::Result<()> {
        if self.written != self.length {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "session announced {} bytes but {} were written",
                    self.length, self.written
                ),
            ));
        }
        if let Some(md5) = self.md5.take() {
            self.stream.write_all(&md5.finalize())?;
        }
        self.stream.flush()?;
        self.stream.shutdown(Shutdown::Write)?;
        // Wait for the sink's FIN so teardown is clean before we return.
        let mut tail = [0u8; 64];
        while matches!(self.stream.read(&mut tail), Ok(n) if n > 0) {}
        Ok(())
    }
}

impl Write for LslStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.stream.write(buf)?;
        if let Some(md5) = &mut self.md5 {
            md5.update(&buf[..n]);
        }
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}
