//! The real `lsd` depot daemon: accept → header → onward connect →
//! bidirectional byte pump, one session per thread pair.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::wire::{addr_from_hop, read_header};

/// Relay copy-buffer size — the "small, short-lived" depot buffer.
const PUMP_BUF: usize = 64 * 1024;

/// Shared depot counters.
#[derive(Default)]
pub struct DepotCounters {
    pub sessions: AtomicU64,
    pub bytes_relayed: AtomicU64,
    pub header_errors: AtomicU64,
}

/// A running depot; dropping the handle leaves it running — call
/// [`DepotHandle::shutdown`] to stop it.
pub struct DepotHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    counters: Arc<DepotCounters>,
}

impl DepotHandle {
    /// The bound listening address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn counters(&self) -> &DepotCounters {
        &self.counters
    }

    /// Stop accepting and join the accept loop. In-flight relays finish
    /// on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// The `lsd` daemon.
pub struct LsdServer;

impl LsdServer {
    /// Bind `addr` and serve in background threads.
    pub fn spawn(addr: SocketAddr) -> std::io::Result<DepotHandle> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(DepotCounters::default());
        let stop2 = Arc::clone(&stop);
        let counters2 = Arc::clone(&counters);
        let accept_thread = std::thread::Builder::new()
            .name(format!("lsd-accept-{bound}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(up) = conn else { continue };
                    let counters = Arc::clone(&counters2);
                    let _ = std::thread::Builder::new()
                        .name("lsd-session".to_string())
                        .spawn(move || {
                            if relay_session(up, &counters).is_err() {
                                counters.header_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                }
            })
            .expect("spawn accept thread");
        Ok(DepotHandle {
            addr: bound,
            stop,
            accept_thread: Some(accept_thread),
            counters,
        })
    }
}

/// Handle one accepted sublink: parse the header, dial the next hop,
/// forward the shortened header, then pump both directions until EOF.
fn relay_session(mut up: TcpStream, counters: &DepotCounters) -> std::io::Result<()> {
    up.set_nodelay(true)?;
    let (header, leftover) = read_header(&mut up)?;
    let Some((next, fwd)) = header.pop_hop() else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "depot received empty route",
        ));
    };
    counters.sessions.fetch_add(1, Ordering::Relaxed);
    let mut down = TcpStream::connect(addr_from_hop(next))?;
    down.set_nodelay(true)?;
    let fwd_bytes = fwd
        .encode()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    down.write_all(&fwd_bytes)?;
    if !leftover.is_empty() {
        down.write_all(&leftover)?;
        counters
            .bytes_relayed
            .fetch_add(leftover.len() as u64, Ordering::Relaxed);
    }

    // Bidirectional pump: one thread per direction; kernel socket
    // buffers provide the hop-by-hop backpressure.
    let up2 = up.try_clone()?;
    let down2 = down.try_clone()?;
    let relayed = pump_pair((up, down), (down2, up2));
    counters.bytes_relayed.fetch_add(relayed, Ordering::Relaxed);
    Ok(())
}

/// Run two unidirectional pumps concurrently; returns total bytes moved.
fn pump_pair(forward: (TcpStream, TcpStream), backward: (TcpStream, TcpStream)) -> u64 {
    let t = std::thread::spawn(move || pump(backward.0, backward.1));
    let fwd = pump(forward.0, forward.1);
    let bwd = t.join().unwrap_or(0);
    fwd + bwd
}

/// Copy bytes `src → dst` until EOF/error, then propagate the FIN with a
/// write-side shutdown.
fn pump(mut src: TcpStream, mut dst: TcpStream) -> u64 {
    let mut buf = vec![0u8; PUMP_BUF];
    let mut total = 0u64;
    loop {
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
                total += n as u64;
            }
            Err(_) => break,
        }
    }
    let _ = dst.shutdown(Shutdown::Write);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn spawn_and_shutdown() {
        let h = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
        let addr = h.addr();
        assert_ne!(addr.port(), 0);
        h.shutdown();
        // Port should be released shortly after; a rebind must succeed.
        let again = LsdServer::spawn(addr);
        if let Ok(h2) = again {
            h2.shutdown();
        }
    }

    #[test]
    fn garbage_connection_counts_header_error() {
        let h = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
        {
            let mut s = TcpStream::connect(h.addr()).unwrap();
            s.write_all(b"this is not an LSL header at all").unwrap();
            let _ = s.shutdown(Shutdown::Write);
            // Wait for the depot to reject us (EOF on read).
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        }
        // The session thread increments the counter after teardown.
        for _ in 0..100 {
            if h.counters().header_errors.load(Ordering::Relaxed) > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(h.counters().header_errors.load(Ordering::Relaxed), 1);
        h.shutdown();
    }
}
