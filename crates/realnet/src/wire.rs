//! Address conversion between real sockets and the shared LSL header.

use std::io::{self, Read};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

use lsl_netsim::NodeId;
use lsl_session::{Hop, LslHeader};

/// Encode an IPv4 socket address as a header hop (the 32-bit node field
/// carries the address bits).
pub fn hop_from_addr(addr: SocketAddrV4) -> Hop {
    Hop::new(NodeId(u32::from(*addr.ip())), addr.port())
}

/// Decode a header hop back into a socket address.
pub fn addr_from_hop(hop: Hop) -> SocketAddrV4 {
    SocketAddrV4::new(Ipv4Addr::from(hop.node.0), hop.port)
}

/// Coerce a general `SocketAddr` to V4 (the realnet layer is IPv4-only;
/// the paper predates any IPv6 deployment concern — §III discusses v6
/// multihoming as future motivation).
pub fn require_v4(addr: SocketAddr) -> io::Result<SocketAddrV4> {
    match addr {
        SocketAddr::V4(a) => Ok(a),
        SocketAddr::V6(_) => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "LSL realnet routes are IPv4-only",
        )),
    }
}

/// Read a complete LSL header from a blocking stream.
pub fn read_header(stream: &mut impl Read) -> io::Result<(LslHeader, Vec<u8>)> {
    let mut buf = Vec::with_capacity(64);
    let mut byte = [0u8; 1];
    loop {
        match LslHeader::decode(&buf) {
            Ok(Some((header, used))) => {
                let leftover = buf.split_off(used);
                return Ok((header, leftover));
            }
            Ok(None) => {}
            Err(e) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
        }
        // Byte-at-a-time keeps us from over-reading past the header into
        // payload we would then have to hand back; headers are ≤ 143 B
        // (the 47-byte v2 fixed part plus MAX_HOPS 6-byte hops).
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF before complete LSL header",
            ));
        }
        buf.push(byte[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_session::SessionId;

    #[test]
    fn addr_roundtrip() {
        let a = SocketAddrV4::new(Ipv4Addr::new(127, 0, 0, 1), 7001);
        assert_eq!(addr_from_hop(hop_from_addr(a)), a);
        let b = SocketAddrV4::new(Ipv4Addr::new(10, 20, 30, 40), 65535);
        assert_eq!(addr_from_hop(hop_from_addr(b)), b);
    }

    #[test]
    fn read_header_from_cursor() {
        let h = LslHeader {
            session: SessionId(7),
            flags: 1,
            length: 99,
            resume: None,
            stripe: None,
            route: vec![hop_from_addr(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 9))],
        };
        let mut data = h.encode().unwrap().to_vec();
        data.extend_from_slice(b"payload-bytes");
        let mut cur = std::io::Cursor::new(data);
        let (got, leftover) = read_header(&mut cur).unwrap();
        assert_eq!(got, h);
        // Byte-at-a-time reading never consumes payload.
        assert!(leftover.is_empty());
        let mut rest = Vec::new();
        cur.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"payload-bytes");
    }

    #[test]
    fn read_header_eof_mid_header() {
        let h = LslHeader {
            session: SessionId(7),
            flags: 0,
            length: 1,
            resume: None,
            stripe: None,
            route: vec![],
        };
        let enc = h.encode().unwrap();
        let mut cur = std::io::Cursor::new(enc[..10].to_vec());
        assert_eq!(
            read_header(&mut cur).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn read_header_bad_magic() {
        let mut cur = std::io::Cursor::new(b"GARBAGE-NOT-LSL".to_vec());
        assert_eq!(
            read_header(&mut cur).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
