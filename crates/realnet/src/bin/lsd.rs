//! `lsd` — the Logistical Session Layer depot daemon.
//!
//! Usage: `lsd [--listen ADDR]` (default `127.0.0.1:7001`).
//!
//! Runs as an ordinary unprivileged process, accepting LSL sublinks and
//! cascading them toward the next hop of each session's loose source
//! route. Stop with Ctrl-C.

use std::net::SocketAddr;

use lsl_realnet::LsdServer;

fn main() {
    let mut listen: SocketAddr = "127.0.0.1:7001".parse().expect("default addr");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                let v = args.next().unwrap_or_else(|| usage("missing ADDR"));
                listen = v.parse().unwrap_or_else(|_| usage("bad ADDR"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let handle = match LsdServer::spawn(listen) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("lsd: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!("lsd: depot listening on {}", handle.addr());
    println!("lsd: relay sessions will be reported every 10s; Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let c = handle.counters();
        println!(
            "lsd: sessions={} bytes_relayed={} header_errors={}",
            c.sessions.load(std::sync::atomic::Ordering::Relaxed),
            c.bytes_relayed.load(std::sync::atomic::Ordering::Relaxed),
            c.header_errors.load(std::sync::atomic::Ordering::Relaxed),
        );
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("lsd: {err}");
    }
    eprintln!("usage: lsd [--listen ADDR]   (default 127.0.0.1:7001)");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
