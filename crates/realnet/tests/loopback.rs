//! Real-TCP integration: cascaded sessions through live `lsd` depots on
//! loopback.

use std::io::Write;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::atomic::Ordering;

use lsl_realnet::{LsdServer, LslListener, LslStream};
use lsl_session::SessionId;

fn patterned(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 7) % 251) as u8).collect()
}

fn run_session(depots: &[SocketAddr], payload: &[u8]) -> (Vec<u8>, Option<bool>, SessionId) {
    let listener = LslListener::bind((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    let sink_addr = listener.local_addr().unwrap();
    let payload_owned = payload.to_vec();
    let depots_owned = depots.to_vec();
    let t = std::thread::spawn(move || {
        let mut s = LslStream::connect(
            SessionId(0xabc),
            &depots_owned,
            sink_addr,
            payload_owned.len() as u64,
            true,
            true,
        )
        .unwrap();
        // Write in awkward chunk sizes to exercise partial writes.
        for chunk in payload_owned.chunks(7919) {
            s.write_all(chunk).unwrap();
        }
        s.finish().unwrap();
    });
    let sess = listener.accept().unwrap();
    let id = sess.session();
    let (got, digest_ok) = sess.read_all().unwrap();
    t.join().unwrap();
    (got, digest_ok, id)
}

#[test]
fn one_depot_cascade() {
    let depot = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    let payload = patterned(1 << 20);
    let (got, digest_ok, id) = run_session(&[depot.addr()], &payload);
    assert_eq!(got, payload);
    assert_eq!(digest_ok, Some(true));
    assert_eq!(id, SessionId(0xabc));
    assert_eq!(depot.counters().sessions.load(Ordering::Relaxed), 1);
    assert!(depot.counters().bytes_relayed.load(Ordering::Relaxed) >= 1 << 20);
    depot.shutdown();
}

#[test]
fn three_depot_cascade() {
    let d1 = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    let d2 = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    let d3 = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    let payload = patterned(300_000);
    let (got, digest_ok, _) = run_session(&[d1.addr(), d2.addr(), d3.addr()], &payload);
    assert_eq!(got, payload);
    assert_eq!(digest_ok, Some(true));
    for d in [d1, d2, d3] {
        assert_eq!(d.counters().sessions.load(Ordering::Relaxed), 1);
        d.shutdown();
    }
}

#[test]
fn empty_payload_session() {
    let depot = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    let (got, digest_ok, _) = run_session(&[depot.addr()], &[]);
    assert!(got.is_empty());
    assert_eq!(digest_ok, Some(true));
    depot.shutdown();
}

#[test]
fn concurrent_sessions_share_one_depot() {
    let depot = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    let depot_addr = depot.addr();
    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let payload = patterned(100_000 + i * 13);
                let (got, ok, _) = run_session(&[depot_addr], &payload);
                assert_eq!(got, payload);
                assert_eq!(ok, Some(true));
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(depot.counters().sessions.load(Ordering::Relaxed), 4);
    depot.shutdown();
}

#[test]
fn depot_to_unreachable_next_hop_fails_sync_connect() {
    let depot = LsdServer::spawn((Ipv4Addr::LOCALHOST, 0).into()).unwrap();
    // Next hop: a port with (almost certainly) no listener. The depot's
    // onward connect fails, it drops the sublink, and our synchronous
    // confirmation read sees EOF — so connect() must return an error.
    let dead: SocketAddr = (Ipv4Addr::LOCALHOST, 1).into();
    let result = LslStream::connect(SessionId(1), &[depot.addr()], dead, 10, true, true);
    assert!(
        result.is_err(),
        "sync connect through a dead route must fail"
    );
    depot.shutdown();
}
