//! Time-series utilities: normalization, resampling and run averaging.
//!
//! The paper normalizes each run's sequence numbers so "the relative
//! growth of the various iterations could be averaged" (Fig 11), then
//! plots the per-experiment average alongside the individual runs. These
//! helpers reproduce that processing for arbitrary `(t, y)` series.

/// A piecewise-constant, time-ordered `(t, y)` series (sequence-number
/// envelopes are step functions: the value holds until the next point).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct from points; panics when timestamps regress, since every
    /// producer in this workspace emits in time order.
    pub fn new(points: Vec<(f64, f64)>) -> Series {
        assert!(
            points.windows(2).all(|w| w[1].0 >= w[0].0),
            "series timestamps must be non-decreasing"
        );
        Series { points }
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last_t(&self) -> Option<f64> {
        self.points.last().map(|p| p.0)
    }

    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }

    /// Value at time `t` under the piecewise-constant (step) convention:
    /// the y of the latest point at or before `t`; 0.0 before the first
    /// point (nothing sent yet).
    pub fn value_at(&self, t: f64) -> f64 {
        match self.points.partition_point(|p| p.0 <= t) {
            0 => 0.0,
            i => self.points[i - 1].1,
        }
    }
}

/// Shift a series so it starts at t = 0.
pub fn normalize_time(s: &Series) -> Series {
    let Some(&(t0, _)) = s.points.first() else {
        return Series::default();
    };
    Series::new(s.points.iter().map(|&(t, y)| (t - t0, y)).collect())
}

/// Resample a series onto `n` evenly spaced instants spanning `[0, t_end]`.
pub fn resample(s: &Series, t_end: f64, n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 2, "need at least two sample points");
    (0..n)
        .map(|i| {
            let t = t_end * i as f64 / (n - 1) as f64;
            (t, s.value_at(t))
        })
        .collect()
}

/// Average several runs of the same experiment, as the paper does for
/// Figs 11–14: each run is resampled onto a common grid spanning the
/// longest run, then averaged pointwise. Runs that have already finished
/// hold their final value (a completed transfer stays at its total size),
/// which reproduces the flattening the paper notes at the end of Fig 11's
/// average curve.
pub fn average_series(runs: &[Series], n: usize) -> Series {
    let t_end = runs
        .iter()
        .filter_map(Series::last_t)
        .fold(0.0f64, f64::max);
    if runs.is_empty() || t_end <= 0.0 {
        return Series::default();
    }
    let grid: Vec<f64> = (0..n).map(|i| t_end * i as f64 / (n - 1) as f64).collect();
    let pts = grid
        .iter()
        .map(|&t| {
            let sum: f64 = runs
                .iter()
                .map(|r| {
                    match r.last_t() {
                        // A finished run holds its final value.
                        Some(last) if t >= last => r.last_y().unwrap_or(0.0),
                        _ => r.value_at(t),
                    }
                })
                .sum();
            (t, sum / runs.len() as f64)
        })
        .collect();
    Series::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(pts: &[(f64, f64)]) -> Series {
        Series::new(pts.to_vec())
    }

    #[test]
    fn value_at_is_step_function() {
        let sr = s(&[(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(sr.value_at(0.5), 0.0);
        assert_eq!(sr.value_at(1.0), 10.0);
        assert_eq!(sr.value_at(1.5), 10.0);
        assert_eq!(sr.value_at(2.0), 20.0);
        assert_eq!(sr.value_at(99.0), 20.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn regressing_time_rejected() {
        let _ = s(&[(1.0, 0.0), (0.5, 1.0)]);
    }

    #[test]
    fn normalize_shifts_to_zero() {
        let sr = normalize_time(&s(&[(3.0, 1.0), (4.0, 2.0)]));
        assert_eq!(sr.points(), &[(0.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn resample_grid() {
        let sr = s(&[(0.0, 0.0), (1.0, 100.0)]);
        let r = resample(&sr, 2.0, 3);
        assert_eq!(r, vec![(0.0, 0.0), (1.0, 100.0), (2.0, 100.0)]);
    }

    #[test]
    fn average_of_identical_runs_is_the_run() {
        let r = s(&[(0.0, 0.0), (1.0, 50.0), (2.0, 100.0)]);
        let avg = average_series(&[r.clone(), r.clone()], 5);
        assert_eq!(avg.value_at(2.0), 100.0);
        assert_eq!(avg.value_at(1.0), 50.0);
    }

    #[test]
    fn average_holds_finished_runs_at_final_value() {
        // Run A finishes at t=1 (100 bytes), run B at t=3 (100 bytes).
        let a = s(&[(0.0, 0.0), (1.0, 100.0)]);
        let b = s(&[(0.0, 0.0), (3.0, 100.0)]);
        let avg = average_series(&[a, b], 7);
        // At t=2: A holds 100, B (step fn) still 0 → 50.
        assert_eq!(avg.value_at(2.0), 50.0);
        // At t=3 both complete → 100.
        assert_eq!(avg.value_at(3.0), 100.0);
    }

    #[test]
    fn average_of_empty_is_empty() {
        assert!(average_series(&[], 5).is_empty());
        assert!(average_series(&[Series::default()], 5).is_empty());
    }
}
