//! Result export: gnuplot-style `.dat` files and quick ASCII plots.
//!
//! Figure binaries write each curve as a whitespace-separated `.dat`
//! column file (the format the paper's gnuplot figures consumed) and
//! also render an ASCII chart so results are inspectable in a terminal
//! without plotting tools.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::series::Series;

/// Write `(x, y)` columns for several named curves into `dir/<stem>.dat`.
/// Curves are separated by blank lines and labelled with `# name`
/// comments (gnuplot `index` convention).
pub fn write_dat(
    dir: impl AsRef<Path>,
    stem: &str,
    curves: &[(&str, &[(f64, f64)])],
) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut out = String::new();
    for (i, (name, pts)) in curves.iter().enumerate() {
        if i > 0 {
            out.push_str("\n\n");
        }
        let _ = writeln!(out, "# {name}");
        for (x, y) in pts.iter() {
            let _ = writeln!(out, "{x:.9} {y:.6}");
        }
    }
    fs::write(dir.join(format!("{stem}.dat")), out)
}

/// Render curves as a fixed-size ASCII chart. Each curve uses its own
/// glyph; axes are annotated with min/max. Intended for terminal output,
/// so it is deliberately small.
pub fn ascii_plot(title: &str, curves: &[(&str, &[(f64, f64)])]) -> String {
    const W: usize = 72;
    const H: usize = 20;
    const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@'];

    let all: Vec<(f64, f64)> = curves
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 == x0 {
        x1 = x0 + 1.0;
    }
    if y1 == y0 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; W]; H];
    for (ci, (_, pts)) in curves.iter().enumerate() {
        let g = GLYPHS[ci % GLYPHS.len()];
        for &(x, y) in pts.iter() {
            let col = (((x - x0) / (x1 - x0)) * (W - 1) as f64).round() as usize;
            let row = (((y - y0) / (y1 - y0)) * (H - 1) as f64).round() as usize;
            grid[H - 1 - row][col.min(W - 1)] = g;
        }
    }

    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let legend: Vec<String> = curves
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    let _ = writeln!(s, "  [{}]", legend.join("   "));
    let _ = writeln!(s, "  y: {y0:.3} .. {y1:.3}");
    for row in grid {
        let _ = writeln!(s, "  |{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(s, "  +{}", "-".repeat(W));
    let _ = writeln!(s, "  x: {x0:.3} .. {x1:.3}");
    s
}

/// Convenience: the points of a [`Series`] for plotting APIs.
pub fn series_points(s: &Series) -> &[(f64, f64)] {
    s.points()
}

/// Write a timestamped event timeline (a session's recovery lifecycle,
/// a fault schedule) into `dir/<stem>.dat`: one `t  # label` row per
/// event, gnuplot-comment-labelled so the file both plots as an impulse
/// series and reads as a log. Rows must already be in time order.
pub fn write_timeline_dat(
    dir: impl AsRef<Path>,
    stem: &str,
    rows: &[(f64, String)],
) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut out = String::new();
    let _ = writeln!(out, "# {stem}: {} event(s)", rows.len());
    for (t, label) in rows {
        let _ = writeln!(out, "{t:.9}  # {label}");
    }
    fs::write(dir.join(format!("{stem}.dat")), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_dat_roundtrip() {
        let dir = std::env::temp_dir().join("lsl_trace_export_test");
        write_dat(
            &dir,
            "demo",
            &[("a", &[(0.0, 1.0), (1.0, 2.0)]), ("b", &[(0.0, 3.0)])],
        )
        .unwrap();
        let text = std::fs::read_to_string(dir.join("demo.dat")).unwrap();
        assert!(text.contains("# a"));
        assert!(text.contains("# b"));
        assert!(text.contains("1.000000000 2.000000"));
        // Two index blocks separated by a blank line.
        assert!(text.contains("\n\n"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn write_timeline_dat_is_ordered_and_labelled() {
        let dir = std::env::temp_dir().join("lsl_trace_timeline_test");
        let rows = vec![
            (0.005, "Established".to_string()),
            (1.000, "SublinkDown(Stalled)".to_string()),
            (2.781, "Completed".to_string()),
        ];
        write_timeline_dat(&dir, "crash", &rows).unwrap();
        let text = std::fs::read_to_string(dir.join("crash.dat")).unwrap();
        assert!(text.starts_with("# crash: 3 event(s)\n"));
        assert!(text.contains("1.000000000  # SublinkDown(Stalled)"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ascii_plot_contains_title_and_glyphs() {
        let p = ascii_plot("demo", &[("up", &[(0.0, 0.0), (1.0, 1.0)])]);
        assert!(p.contains("demo"));
        assert!(p.contains("* up"));
        assert!(p.matches('*').count() >= 2);
    }

    #[test]
    fn ascii_plot_empty() {
        assert!(ascii_plot("t", &[]).contains("no data"));
    }

    #[test]
    fn ascii_plot_degenerate_ranges_do_not_panic() {
        let p = ascii_plot("flat", &[("c", &[(1.0, 5.0), (1.0, 5.0)])]);
        assert!(p.contains("flat"));
    }
}
