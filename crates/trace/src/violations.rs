//! Structured rendering of the runtime invariant auditor's findings
//! (feature `invariants`). The registry itself lives in
//! `lsl_netsim::invariants`; this module turns a drained batch into the
//! report surfaced by tests and `scripts/ci.sh`.

use lsl_netsim::invariants::Violation;

/// Render violations as a structured, line-oriented report:
///
/// ```text
/// invariant violations: 2
///   [0.004213s] netsim::sim/link-byte-conservation: accepted 10 B ...
///   [0.009001s] tcp::socket/seq-space-order: snd_una 5 / snd_nxt 3 ...
/// ```
///
/// An empty batch renders as `invariant violations: none`.
pub fn report(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "invariant violations: none\n".to_string();
    }
    let mut out = format!("invariant violations: {}\n", violations.len());
    for v in violations {
        out.push_str(&format!(
            "  [{:.6}s] {}/{}: {}\n",
            v.at.as_secs_f64(),
            v.component,
            v.rule,
            v.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_netsim::Time;

    #[test]
    fn empty_batch_reports_none() {
        assert_eq!(report(&[]), "invariant violations: none\n");
    }

    #[test]
    fn violations_render_one_line_each() {
        let v = vec![
            Violation {
                at: Time(4_213_000),
                component: "netsim::sim",
                rule: "link-byte-conservation",
                detail: "accepted 10 B but accounted 8 B".to_string(),
            },
            Violation {
                at: Time(9_001_000),
                component: "tcp::socket",
                rule: "seq-space-order",
                detail: "snd_una 5 / snd_nxt 3 / snd_max 9 out of order".to_string(),
            },
        ];
        let r = report(&v);
        assert!(r.starts_with("invariant violations: 2\n"), "{r}");
        assert!(
            r.contains("[0.004213s] netsim::sim/link-byte-conservation:"),
            "{r}"
        );
        assert!(r.contains("tcp::socket/seq-space-order: snd_una 5"), "{r}");
        assert_eq!(r.lines().count(), 3);
    }
}
