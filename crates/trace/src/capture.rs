//! Per-connection segment capture, recorded at the sending host.

use lsl_netsim::Time;

/// Direction of a captured segment relative to the capturing host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Sent by the capturing host.
    Tx,
    /// Received by the capturing host (ACKs, mostly).
    Rx,
}

/// TCP flag bits as captured (subset relevant to analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegFlags {
    pub syn: bool,
    pub fin: bool,
    pub ack: bool,
    pub rst: bool,
}

/// One captured segment.
#[derive(Clone, Copy, Debug)]
pub struct SegRecord {
    pub t: Time,
    pub dir: Dir,
    /// Starting sequence number of the segment's payload.
    pub seq: u64,
    /// Acknowledgment number carried (valid when `flags.ack`).
    pub ack: u64,
    /// Payload length in bytes.
    pub len: u32,
    pub flags: SegFlags,
    /// True when the TCP layer knows this is a retransmission.
    pub retx: bool,
}

/// A capture buffer for one TCP connection, tcpdump-style.
#[derive(Clone, Debug, Default)]
pub struct ConnTrace {
    /// Human-readable label (e.g. "direct", "sublink1").
    pub label: String,
    pub records: Vec<SegRecord>,
}

impl ConnTrace {
    pub fn new(label: impl Into<String>) -> ConnTrace {
        ConnTrace {
            label: label.into(),
            records: Vec::new(),
        }
    }

    pub fn push(&mut self, rec: SegRecord) {
        debug_assert!(
            self.records.last().is_none_or(|last| rec.t >= last.t),
            "trace records must be appended in time order"
        );
        self.records.push(rec);
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Records sent by this host carrying payload.
    pub fn tx_data(&self) -> impl Iterator<Item = &SegRecord> {
        self.records
            .iter()
            .filter(|r| r.dir == Dir::Tx && r.len > 0)
    }

    /// Pure or piggybacked ACKs received by this host.
    pub fn rx_acks(&self) -> impl Iterator<Item = &SegRecord> {
        self.records
            .iter()
            .filter(|r| r.dir == Dir::Rx && r.flags.ack)
    }

    /// Time of the first transmitted payload byte (transfer start).
    pub fn first_data_time(&self) -> Option<Time> {
        self.tx_data().next().map(|r| r.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_netsim::Dur;

    fn rec(t_ms: u64, dir: Dir, seq: u64, len: u32) -> SegRecord {
        SegRecord {
            t: Time::ZERO + Dur::from_millis(t_ms),
            dir,
            seq,
            ack: 0,
            len,
            flags: SegFlags {
                ack: dir == Dir::Rx,
                ..Default::default()
            },
            retx: false,
        }
    }

    #[test]
    fn filters_select_right_records() {
        let mut tr = ConnTrace::new("t");
        tr.push(rec(0, Dir::Tx, 0, 0)); // SYN-ish, no payload
        tr.push(rec(1, Dir::Tx, 1, 100));
        tr.push(rec(2, Dir::Rx, 0, 0));
        tr.push(rec(3, Dir::Tx, 101, 100));
        assert_eq!(tr.tx_data().count(), 2);
        assert_eq!(tr.rx_acks().count(), 1);
        assert_eq!(tr.first_data_time(), Some(Time::ZERO + Dur::from_millis(1)));
    }

    #[test]
    fn empty_trace() {
        let tr = ConnTrace::new("e");
        assert!(tr.is_empty());
        assert_eq!(tr.first_data_time(), None);
    }
}
