//! `tcpdump`-equivalent trace capture and the paper's analysis pipeline.
//!
//! The paper gathers packet traces *at the sending host* of every TCP
//! connection (direct or LSL sublink) and derives three things from them:
//!
//! 1. **RTT** from the delay between a data segment and the ACK that
//!    covers it (Figs 3, 4, 9),
//! 2. **normalized sequence-number growth** over time, averaged across
//!    the 10–120 iterations of each experiment (Figs 11–27),
//! 3. **retransmission counts**, used to condition comparisons on
//!    minimum / median / maximum observed loss (Figs 15–25).
//!
//! [`ConnTrace`] is the capture buffer the TCP layer fills; the analysis
//! functions here reproduce each derivation. [`export`] writes
//! gnuplot-style `.dat` files and quick ASCII plots.

mod analysis;
mod capture;
pub mod export;
mod series;
#[cfg(feature = "invariants")]
pub mod violations;

pub use analysis::{ack_rtts, mean_rtt, retransmissions, seq_growth, transfer_duration};
pub use capture::{ConnTrace, Dir, SegFlags, SegRecord};
pub use series::{average_series, normalize_time, resample, Series};
