//! Derivations from captured traces: RTT, sequence growth, retransmissions.

use crate::capture::{ConnTrace, Dir};
use crate::series::Series;

/// RTT samples estimated from ACK timing, following the paper's method:
/// for each transmitted data segment, the RTT is the delay until the
/// first received ACK whose acknowledgment number covers the segment's
/// last byte. Retransmitted segments are excluded (Karn's rule), since an
/// ACK arriving after a retransmission is ambiguous.
///
/// Returns `(time, rtt_seconds)` pairs, timestamped at segment send time.
pub fn ack_rtts(trace: &ConnTrace) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    // Sequence ranges that were ever retransmitted are tainted.
    let mut retx_ranges: Vec<(u64, u64)> = Vec::new();
    for r in trace.tx_data() {
        if r.retx {
            retx_ranges.push((r.seq, r.seq + r.len as u64));
        }
    }
    let tainted = |seq: u64, end: u64| retx_ranges.iter().any(|&(s, e)| seq < e && end > s);

    let acks: Vec<_> = trace.rx_acks().collect();
    let mut ack_idx = 0usize;
    for seg in trace.tx_data() {
        if seg.retx {
            continue;
        }
        let end = seg.seq + seg.len as u64;
        if tainted(seg.seq, end) {
            continue;
        }
        // ACKs are time-ordered; find the first at/after the send time
        // that covers `end`. `ack_idx` only moves forward because
        // segments are also time-ordered and ack coverage is cumulative.
        let mut i = ack_idx;
        while i < acks.len() && (acks[i].t < seg.t || acks[i].ack < end) {
            i += 1;
        }
        if i < acks.len() {
            out.push((seg.t.as_secs_f64(), (acks[i].t - seg.t).as_secs_f64()));
            ack_idx = ack_idx.max(i);
        }
    }
    out
}

/// Mean of the ACK-derived RTT samples, in seconds. `None` on an empty or
/// unacked trace.
pub fn mean_rtt(trace: &ConnTrace) -> Option<f64> {
    let samples = ack_rtts(trace);
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().map(|(_, r)| r).sum::<f64>() / samples.len() as f64)
}

/// Number of retransmitted data segments in the trace (the paper's loss
/// proxy for conditioning Figs 15–25).
pub fn retransmissions(trace: &ConnTrace) -> usize {
    trace.tx_data().filter(|r| r.retx).count()
}

/// Normalized sequence-number growth over time: the paper's
/// "commonly-accepted method for understanding the life of a TCP
/// connection". Each point is `(seconds since first data segment,
/// highest sequence byte sent so far - initial)`. Retransmissions do not
/// move the envelope (sequence numbers do not regress).
pub fn seq_growth(trace: &ConnTrace) -> Series {
    let mut points = Vec::new();
    let Some(t0) = trace.first_data_time() else {
        return Series::new(points);
    };
    let mut base = None;
    let mut hi = 0u64;
    for seg in trace.tx_data() {
        let base = *base.get_or_insert(seg.seq);
        let end = (seg.seq + seg.len as u64).saturating_sub(base);
        if end > hi {
            hi = end;
            points.push(((seg.t - t0).as_secs_f64(), hi as f64));
        }
    }
    Series::new(points)
}

/// Wall-clock duration from first data segment to the last ACK received,
/// in seconds — the trace-level view of transfer time.
pub fn transfer_duration(trace: &ConnTrace) -> Option<f64> {
    let t0 = trace.first_data_time()?;
    let t1 = trace
        .records
        .iter()
        .rev()
        .find(|r| r.dir == Dir::Rx && r.flags.ack)?
        .t;
    Some((t1 - t0).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{SegFlags, SegRecord};
    use lsl_netsim::{Dur, Time};

    fn tx(t_ms: u64, seq: u64, len: u32, retx: bool) -> SegRecord {
        SegRecord {
            t: Time::ZERO + Dur::from_millis(t_ms),
            dir: Dir::Tx,
            seq,
            ack: 0,
            len,
            flags: SegFlags::default(),
            retx,
        }
    }

    fn rx_ack(t_ms: u64, ack: u64) -> SegRecord {
        SegRecord {
            t: Time::ZERO + Dur::from_millis(t_ms),
            dir: Dir::Rx,
            seq: 0,
            ack,
            len: 0,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
            retx: false,
        }
    }

    #[test]
    fn rtt_from_single_exchange() {
        let mut tr = ConnTrace::new("t");
        tr.push(tx(0, 1, 100, false));
        tr.push(rx_ack(50, 101));
        let rtts = ack_rtts(&tr);
        assert_eq!(rtts.len(), 1);
        assert!((rtts[0].1 - 0.050).abs() < 1e-9);
        assert_eq!(mean_rtt(&tr), Some(rtts[0].1));
    }

    #[test]
    fn karn_excludes_retransmitted_ranges() {
        let mut tr = ConnTrace::new("t");
        tr.push(tx(0, 1, 100, false));
        tr.push(tx(10, 101, 100, false));
        tr.push(tx(200, 1, 100, true)); // retransmit of first
        tr.push(rx_ack(240, 201));
        // Segment 1 is tainted by its own retransmission; segment 2's ACK
        // (covering 201) arrives at 240 → RTT = 230 ms for it only.
        let rtts = ack_rtts(&tr);
        assert_eq!(rtts.len(), 1);
        assert!((rtts[0].1 - 0.230).abs() < 1e-9);
        assert_eq!(retransmissions(&tr), 1);
    }

    #[test]
    fn cumulative_ack_covers_multiple_segments() {
        let mut tr = ConnTrace::new("t");
        tr.push(tx(0, 1, 100, false));
        tr.push(tx(1, 101, 100, false));
        tr.push(tx(2, 201, 100, false));
        tr.push(rx_ack(60, 301));
        let rtts = ack_rtts(&tr);
        assert_eq!(rtts.len(), 3);
        assert!((rtts[0].1 - 0.060).abs() < 1e-9);
        assert!((rtts[2].1 - 0.058).abs() < 1e-9);
    }

    #[test]
    fn seq_growth_is_normalized_and_monotone() {
        let mut tr = ConnTrace::new("t");
        tr.push(tx(5, 1000, 100, false));
        tr.push(tx(10, 1100, 100, false));
        tr.push(tx(30, 1000, 100, true)); // retransmit: no envelope move
        tr.push(tx(40, 1200, 100, false));
        let s = seq_growth(&tr);
        let pts = s.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (0.0, 100.0));
        assert!((pts[1].0 - 0.005).abs() < 1e-9);
        assert_eq!(pts[1].1, 200.0);
        assert_eq!(pts[2].1, 300.0);
        // Monotone in both axes.
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn transfer_duration_spans_first_data_to_last_ack() {
        let mut tr = ConnTrace::new("t");
        tr.push(tx(10, 1, 100, false));
        tr.push(rx_ack(60, 101));
        tr.push(tx(61, 101, 100, false));
        tr.push(rx_ack(120, 201));
        assert!((transfer_duration(&tr).unwrap() - 0.110).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_yield_none() {
        let tr = ConnTrace::new("t");
        assert_eq!(mean_rtt(&tr), None);
        assert_eq!(transfer_duration(&tr), None);
        assert!(seq_growth(&tr).points().is_empty());
    }
}
