//! Property tests for trace analysis.

use lsl_netsim::{Dur, Time};
use lsl_trace::{
    ack_rtts, average_series, normalize_time, resample, retransmissions, seq_growth, ConnTrace,
    Dir, SegFlags, SegRecord, Series,
};
use proptest::prelude::*;

fn tx(t_us: u64, seq: u64, len: u32, retx: bool) -> SegRecord {
    SegRecord {
        t: Time::ZERO + Dur::from_micros(t_us),
        dir: Dir::Tx,
        seq,
        ack: 0,
        len,
        flags: SegFlags::default(),
        retx,
    }
}

fn rx(t_us: u64, ack: u64) -> SegRecord {
    SegRecord {
        t: Time::ZERO + Dur::from_micros(t_us),
        dir: Dir::Rx,
        seq: 0,
        ack,
        len: 0,
        flags: SegFlags {
            ack: true,
            ..Default::default()
        },
        retx: false,
    }
}

proptest! {
    /// Sequence growth is always monotone in time and value, regardless
    /// of retransmission patterns.
    #[test]
    fn seq_growth_monotone(
        segs in proptest::collection::vec((0u64..1000, 1u32..100, any::<bool>()), 1..100)
    ) {
        let mut trace = ConnTrace::new("p");
        let mut t = 0u64;
        for (gap, len, retx) in segs {
            t += gap;
            // Retransmissions go to earlier sequence positions.
            let seq = if retx { t / 3 } else { t * 2 };
            trace.push(tx(t, seq, len, retx));
        }
        let g = seq_growth(&trace);
        for w in g.points().windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 > w[0].1, "envelope must strictly grow per point");
        }
    }

    /// RTT estimates are never negative and never exceed the span
    /// between send time and the final ACK.
    #[test]
    fn rtts_bounded(
        n in 1usize..40,
        rtt_us in 100u64..100_000,
    ) {
        let mut trace = ConnTrace::new("p");
        let mut t = 0;
        for i in 0..n as u64 {
            t = i * 50;
            trace.push(tx(t, 1 + i * 100, 100, false));
        }
        let end = t + rtt_us;
        trace.push(rx(end, 1 + n as u64 * 100));
        let rtts = ack_rtts(&trace);
        prop_assert_eq!(rtts.len(), n);
        for &(ts, r) in &rtts {
            prop_assert!(r >= 0.0);
            prop_assert!(ts >= 0.0);
            prop_assert!(r <= end as f64 / 1e6 + 1e-12);
        }
    }

    /// Retransmission counting equals the number of retx-marked data
    /// segments exactly.
    #[test]
    fn retx_count_exact(marks in proptest::collection::vec(any::<bool>(), 0..100)) {
        let mut trace = ConnTrace::new("p");
        for (i, &m) in marks.iter().enumerate() {
            trace.push(tx(i as u64, 1 + i as u64 * 10, 10, m));
        }
        prop_assert_eq!(retransmissions(&trace), marks.iter().filter(|&&m| m).count());
    }

    /// Resampling preserves the final value and the grid endpoints.
    #[test]
    fn resample_endpoints(
        pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..1e9), 1..50),
        n in 2usize..64,
    ) {
        let mut sorted = pts;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let s = Series::new(sorted.clone());
        let t_end = s.last_t().unwrap() + 1.0;
        let r = resample(&s, t_end, n);
        prop_assert_eq!(r.len(), n);
        prop_assert_eq!(r[0].0, 0.0);
        prop_assert!((r[n-1].0 - t_end).abs() < 1e-9);
        prop_assert_eq!(r[n-1].1, s.last_y().unwrap());
    }

    /// The average of identical runs equals the run (up to resampling).
    #[test]
    fn average_identity(
        pts in proptest::collection::vec((0.0f64..100.0, 1.0f64..1e6), 2..30),
        k in 1usize..5,
    ) {
        let mut sorted = pts;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Make y monotone (an envelope) to match real usage.
        let mut acc = 0.0;
        let mono: Vec<(f64, f64)> = sorted.into_iter().map(|(t, y)| { acc += y; (t, acc) }).collect();
        let s = Series::new(mono);
        let runs: Vec<Series> = (0..k).map(|_| s.clone()).collect();
        let avg = average_series(&runs, 64);
        let t_end = s.last_t().unwrap();
        // Compare at the end point (grid-aligned).
        prop_assert!((avg.value_at(t_end) - s.last_y().unwrap()).abs() < 1e-6);
    }

    /// normalize_time always yields a series starting at t == 0.
    #[test]
    fn normalize_starts_at_zero(
        pts in proptest::collection::vec((1.0f64..100.0, 0.0f64..10.0), 1..30)
    ) {
        let mut sorted = pts;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let s = normalize_time(&Series::new(sorted));
        prop_assert_eq!(s.points()[0].0, 0.0);
    }
}
