//! `audit.toml` — the checked-in allowlist. Minimal hand-rolled parsing
//! (the workspace builds offline; no TOML crate), covering exactly the
//! shape the audit uses:
//!
//! ```toml
//! [[allow]]
//! path = "crates/realnet/src/depot.rs"
//! rule = "wall-clock"
//! reason = "daemon relay loop paces on wall-clock sleep"
//! ```

use crate::rules::{Finding, RuleId};

/// One allowlist entry: silences `rule` findings in `path`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// `/`-separated path relative to the audited root.
    pub path: String,
    pub rule: RuleId,
    /// Mandatory justification (entries without one are rejected).
    pub reason: String,
    /// Line the entry starts on, for stale-entry reporting.
    pub defined_at: u32,
}

impl AllowEntry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.path == f.file
    }
}

/// Parse `audit.toml` text. Errors are strings with line numbers; an
/// unparsable allowlist must fail the audit loudly, not silently allow.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    /// Entry under construction: (path, rule, reason, defined_at line).
    type Partial = (Option<String>, Option<RuleId>, Option<String>, u32);

    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<Partial> = None;

    fn finish(entries: &mut Vec<AllowEntry>, cur: Option<Partial>) -> Result<(), String> {
        let Some((path, rule, reason, line)) = cur else {
            return Ok(());
        };
        let path = path.ok_or(format!("allow entry at line {line}: missing `path`"))?;
        let rule = rule.ok_or(format!("allow entry at line {line}: missing `rule`"))?;
        let reason = reason.ok_or(format!("allow entry at line {line}: missing `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!("allow entry at line {line}: empty `reason`"));
        }
        entries.push(AllowEntry {
            path,
            rule,
            reason,
            defined_at: line,
        });
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut entries, current.take())?;
            current = Some((None, None, None, lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section `{line}`"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`"));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or(format!(
                "line {lineno}: value must be a double-quoted string"
            ))?;
        let Some(cur) = current.as_mut() else {
            return Err(format!(
                "line {lineno}: `{key}` outside an [[allow] ] entry"
            ));
        };
        match key {
            "path" => cur.0 = Some(value.replace('\\', "/")),
            "rule" => {
                cur.1 = Some(
                    RuleId::from_name(value)
                        .ok_or(format!("line {lineno}: unknown rule `{value}`"))?,
                )
            }
            "reason" => cur.2 = Some(value.to_string()),
            _ => return Err(format!("line {lineno}: unknown key `{key}`")),
        }
    }
    finish(&mut entries, current)?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# comment
[[allow]]
path = "crates/realnet/src/depot.rs"
rule = "wall-clock"
reason = "daemon loop"

[[allow]]
path = "crates/session/src/header.rs"
rule = "unwrap-outside-tests"
reason = "length-checked slice conversions"
"#;
        let e = parse(text).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].rule, RuleId::WallClock);
        assert_eq!(e[1].path, "crates/session/src/header.rs");
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\npath = \"a.rs\"\nrule = \"float-eq\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let text = "[[allow]]\npath = \"a.rs\"\nrule = \"nope\"\nreason = \"x\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn entry_matching_is_exact_on_path_and_rule() {
        let e = AllowEntry {
            path: "crates/a/src/lib.rs".into(),
            rule: RuleId::FloatEq,
            reason: "r".into(),
            defined_at: 1,
        };
        let mk = |file: &str, rule| Finding {
            file: file.into(),
            line: 1,
            col: 1,
            rule,
            message: String::new(),
        };
        assert!(e.matches(&mk("crates/a/src/lib.rs", RuleId::FloatEq)));
        assert!(!e.matches(&mk("crates/a/src/lib.rs", RuleId::WallClock)));
        assert!(!e.matches(&mk("crates/b/src/lib.rs", RuleId::FloatEq)));
    }
}
