//! Finding renderers: human text, machine JSON, and SARIF 2.1.0.
//!
//! All three are deterministic: the caller hands findings pre-sorted by
//! (file, line, col, rule), object keys are emitted in alphabetical
//! order, and nothing environment-dependent (timestamps, absolute
//! paths) is written. The SARIF output is the minimal subset CI
//! artifact viewers need: one run, the full rule table on the driver,
//! one `physicalLocation` per result.

use crate::rules::{Finding, RuleId};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    Text,
    Json,
    Sarif,
}

impl Format {
    pub fn from_name(name: &str) -> Option<Format> {
        Some(match name {
            "text" => Format::Text,
            "json" => Format::Json,
            "sarif" => Format::Sarif,
            _ => return None,
        })
    }
}

pub fn render(findings: &[Finding], format: Format) -> String {
    match format {
        Format::Text => render_text(findings),
        Format::Json => render_json(findings),
        Format::Sarif => render_sarif(findings),
    }
}

fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n    rationale: {}\n",
            f.file,
            f.line,
            f.col,
            f.rule.name(),
            f.message,
            f.rule.rationale()
        ));
    }
    out.push_str(&format!("lsl-audit: {} finding(s)\n", findings.len()));
    out
}

fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"count\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"col\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"rule\": {}}}",
            f.col,
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(f.rule.name())
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [\n    {\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"level\": \"error\", \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startColumn\": {}, \
             \"startLine\": {}}}}}}}], \"message\": {{\"text\": {}}}, \"ruleId\": {}}}",
            json_str(&f.file),
            f.col,
            f.line,
            json_str(&f.message),
            json_str(f.rule.name())
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("],\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n          \"name\": \"lsl-audit\",\n          \"rules\": [");
    for (i, r) in RuleId::all().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(r.name()),
            json_str(r.rationale())
        ));
    }
    out.push_str("\n          ]\n        }\n      }\n    }\n  ],\n");
    out.push_str("  \"version\": \"2.1.0\"\n}\n");
    out
}

/// Escape and quote a JSON string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/netsim/src/lib.rs".into(),
                line: 3,
                col: 14,
                rule: RuleId::WallClock,
                message: "use of std::time::Instant".into(),
            },
            Finding {
                file: "crates/session/src/lib.rs".into(),
                line: 9,
                col: 2,
                rule: RuleId::NondetTaint,
                message: "env-read value (\"quoted\") can reach sink `counter_add`".into(),
            },
        ]
    }

    #[test]
    fn text_contains_rule_tags_and_rationale() {
        let t = render(&sample(), Format::Text);
        assert!(t.contains("[wall-clock]"));
        assert!(t.contains("rationale:"));
        assert!(t.contains("2 finding(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = render(&sample(), Format::Json);
        assert!(j.contains("\"count\": 2"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"rule\": \"nondet-taint\""));
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let s = render(&sample(), Format::Sarif);
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"wall-clock\""));
        assert!(s.contains("\"startLine\": 3"));
        // Every rule is declared on the driver, not just the fired ones.
        for r in RuleId::all() {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", r.name())),
                "{}",
                r.name()
            );
        }
    }

    #[test]
    fn empty_findings_render_valid_shapes() {
        let j = render(&[], Format::Json);
        assert!(j.contains("\"count\": 0"));
        assert!(j.contains("\"findings\": []"));
        let s = render(&[], Format::Sarif);
        assert!(s.contains("\"results\": [],"));
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(Format::from_name("text"), Some(Format::Text));
        assert_eq!(Format::from_name("json"), Some(Format::Json));
        assert_eq!(Format::from_name("sarif"), Some(Format::Sarif));
        assert_eq!(Format::from_name("xml"), None);
    }
}
