//! The audit rules: per-file determinism and hygiene checks applied per
//! crate according to the policy table in [`crate::policy_for`].
//!
//! Two tiers live here. The *lexical* rules scan raw token streams (no
//! structure needed — `HashMap` is banned wherever it appears). The
//! *syntactic* rules consume [`crate::parser`] fact bags so they can
//! reason about expression shape: what feeds a cast, whether a `*` is a
//! deref or a multiply, which receiver a method call has. Whole-program
//! rules (taint, panic reachability) live in [`crate::taint`].

use crate::lexer::{Token, TokenKind};
use crate::parser::{self, BodyFacts};

/// One rule violation at a source position.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path relative to the audited root, `/`-separated.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: RuleId,
    pub message: String,
}

/// Stable rule identifiers (these appear in `audit.toml`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleId {
    WallClock,
    HashContainer,
    FloatEq,
    UnwrapOutsideTests,
    ThreadSpawn,
    StringResult,
    PrintlnInLib,
    UnusedWorkspaceDep,
    StaleAllow,
    NarrowingCast,
    UnsaturatedArith,
    UnstableOrder,
    PanicInPubApi,
    NondetTaint,
}

impl RuleId {
    pub fn name(self) -> &'static str {
        match self {
            RuleId::WallClock => "wall-clock",
            RuleId::HashContainer => "hash-container",
            RuleId::FloatEq => "float-eq",
            RuleId::UnwrapOutsideTests => "unwrap-outside-tests",
            RuleId::ThreadSpawn => "thread-spawn",
            RuleId::StringResult => "string-result",
            RuleId::PrintlnInLib => "println-in-lib",
            RuleId::UnusedWorkspaceDep => "unused-workspace-dep",
            RuleId::StaleAllow => "stale-allow",
            RuleId::NarrowingCast => "narrowing-cast",
            RuleId::UnsaturatedArith => "unsaturated-arith",
            RuleId::UnstableOrder => "unstable-order",
            RuleId::PanicInPubApi => "panic-in-pub-api",
            RuleId::NondetTaint => "nondet-taint",
        }
    }

    /// Every rule, in stable order (drives `--help` and SARIF `rules`).
    pub fn all() -> &'static [RuleId] {
        &[
            RuleId::WallClock,
            RuleId::HashContainer,
            RuleId::FloatEq,
            RuleId::UnwrapOutsideTests,
            RuleId::ThreadSpawn,
            RuleId::StringResult,
            RuleId::PrintlnInLib,
            RuleId::UnusedWorkspaceDep,
            RuleId::StaleAllow,
            RuleId::NarrowingCast,
            RuleId::UnsaturatedArith,
            RuleId::UnstableOrder,
            RuleId::PanicInPubApi,
            RuleId::NondetTaint,
        ]
    }

    pub fn from_name(name: &str) -> Option<RuleId> {
        Some(match name {
            "wall-clock" => RuleId::WallClock,
            "hash-container" => RuleId::HashContainer,
            "float-eq" => RuleId::FloatEq,
            "unwrap-outside-tests" => RuleId::UnwrapOutsideTests,
            "thread-spawn" => RuleId::ThreadSpawn,
            "string-result" => RuleId::StringResult,
            "println-in-lib" => RuleId::PrintlnInLib,
            "unused-workspace-dep" => RuleId::UnusedWorkspaceDep,
            "stale-allow" => RuleId::StaleAllow,
            "narrowing-cast" => RuleId::NarrowingCast,
            "unsaturated-arith" => RuleId::UnsaturatedArith,
            "unstable-order" => RuleId::UnstableOrder,
            "panic-in-pub-api" => RuleId::PanicInPubApi,
            "nondet-taint" => RuleId::NondetTaint,
            _ => return None,
        })
    }

    /// Why the rule exists — shown with every finding.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::WallClock => {
                "simulation code must take time from the event clock; wall-clock \
                 reads make runs irreproducible"
            }
            RuleId::HashContainer => {
                "HashMap/HashSet iteration order varies across runs; use \
                 BTreeMap/BTreeSet so identical seeds give identical traces"
            }
            RuleId::FloatEq => {
                "exact float equality is representation-sensitive; compare with \
                 an explicit tolerance or restructure the condition"
            }
            RuleId::UnwrapOutsideTests => {
                "library and daemon code must surface errors, not panic; \
                 reserve unwrap()/expect() for tests"
            }
            RuleId::ThreadSpawn => {
                "simulation code must be single-threaded: OS scheduling order \
                 leaks into traces and breaks same-seed reproducibility. \
                 Parallelism belongs to the experiment harness (the campaign \
                 executor fans out whole runs, each its own simulation)"
            }
            RuleId::StringResult => {
                "stringly-typed errors can't be matched on, so callers can't \
                 make recovery decisions; use the typed error enums \
                 (WireError/RouteError/SessionError or a crate-local one)"
            }
            RuleId::PrintlnInLib => {
                "library code must not write to stdout/stderr directly; report \
                 through lsl-obs (spans/metrics) or return data to the caller. \
                 Printing belongs to binaries (src/bin, main.rs)"
            }
            RuleId::UnusedWorkspaceDep => {
                "every [workspace.dependencies] entry must be consumed by some \
                 member; stale entries hide the real dependency closure"
            }
            RuleId::StaleAllow => {
                "audit.toml entries that no longer match any finding must be \
                 removed so the allowlist stays an accurate record of debt"
            }
            RuleId::NarrowingCast => {
                "an `as` cast of computed arithmetic silently truncates on \
                 overflow, and the truncated value feeds simulation state; \
                 use try_from (surface the error) or mask explicitly so the \
                 narrowing is visibly intentional"
            }
            RuleId::UnsaturatedArith => {
                "statistics and metrics accumulators must peg at the rail, \
                 not wrap: a wrapped counter silently corrupts every report \
                 and digest derived from it; use saturating_add/saturating_mul"
            }
            RuleId::UnstableOrder => {
                "sorting or retaining through a hash-keyed collection bakes \
                 its nondeterministic iteration order into the result; \
                 collect into a BTree container (or sort by a total key) first"
            }
            RuleId::PanicInPubApi => {
                "a panic reachable from a public session API turns a caller \
                 mistake into an abort of the whole process; validate at the \
                 boundary and return a typed error instead"
            }
            RuleId::NondetTaint => {
                "a nondeterministic value (wall clock, env, thread id, hash \
                 state, pointer address) flows along the call graph into a \
                 deterministic-domain sink (trace, metric, digest, event \
                 queue); identical seeds would stop producing identical runs"
            }
        }
    }
}

/// `Instant`, `SystemTime`, and `thread::sleep` (or `std::thread::sleep`).
pub fn check_wall_clock(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        match id {
            "Instant" | "SystemTime" => out.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: RuleId::WallClock,
                message: format!("use of std::time::{id}"),
            }),
            "sleep" if preceded_by_path(tokens, i, "thread") => out.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: RuleId::WallClock,
                message: "use of thread::sleep".to_string(),
            }),
            _ => {}
        }
    }
}

/// `thread::spawn`, `thread::scope`, `thread::Builder` in sim-domain
/// code (`thread::sleep` is already a wall-clock finding).
pub fn check_thread_spawn(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(id @ ("spawn" | "scope" | "Builder")) = t.kind.ident() else {
            continue;
        };
        if preceded_by_path(tokens, i, "thread") {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: RuleId::ThreadSpawn,
                message: format!("use of thread::{id} in simulation-domain code"),
            });
        }
    }
}

/// `HashMap` / `HashSet` anywhere in a sim-domain crate.
pub fn check_hash_container(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for t in tokens {
        if let Some(id @ ("HashMap" | "HashSet")) = t.kind.ident() {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: RuleId::HashContainer,
                message: format!(
                    "{id} in simulation-domain code (use {} instead)",
                    if id == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    }
                ),
            });
        }
    }
}

/// `==`/`!=` with a float literal on either side.
pub fn check_float_eq(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(t.kind, TokenKind::EqEq | TokenKind::NotEq) {
            continue;
        }
        let float_beside = [
            i.checked_sub(1).and_then(|j| tokens.get(j)),
            tokens.get(i + 1),
        ]
        .into_iter()
        .flatten()
        .any(|n| matches!(n.kind, TokenKind::Number { is_float: true, .. }));
        if float_beside {
            let op = if t.kind == TokenKind::EqEq {
                "=="
            } else {
                "!="
            };
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: RuleId::FloatEq,
                message: format!("exact `{op}` comparison against a float literal"),
            });
        }
    }
}

/// `.unwrap()` / `.expect(` outside `#[cfg(test)]` / `#[test]` ranges.
pub fn check_unwrap(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let tests = test_ranges(tokens);
    for (i, t) in tokens.iter().enumerate() {
        let Some(id @ ("unwrap" | "expect")) = t.kind.ident() else {
            continue;
        };
        let dotted = i >= 1 && tokens[i - 1].kind == TokenKind::Punct('.');
        let called = tokens.get(i + 1).map(|n| n.kind == TokenKind::Punct('(')) == Some(true);
        if !(dotted && called) {
            continue;
        }
        if tests.iter().any(|&(a, b)| (a..=b).contains(&t.line)) {
            continue;
        }
        out.push(Finding {
            file: file.to_string(),
            line: t.line,
            col: t.col,
            rule: RuleId::UnwrapOutsideTests,
            message: format!(".{id}() outside test code"),
        });
    }
}

/// `println!` / `eprintln!` in library code, outside test ranges. The
/// caller only applies this to non-binary sources (not `src/bin/**`,
/// not `main.rs`), where stdout/stderr writes bypass the deterministic
/// telemetry plane.
pub fn check_println(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let tests = test_ranges(tokens);
    for (i, t) in tokens.iter().enumerate() {
        let Some(id @ ("println" | "eprintln" | "print" | "eprint")) = t.kind.ident() else {
            continue;
        };
        if tokens.get(i + 1).map(|n| &n.kind) != Some(&TokenKind::Punct('!')) {
            continue;
        }
        if tests.iter().any(|&(a, b)| (a..=b).contains(&t.line)) {
            continue;
        }
        out.push(Finding {
            file: file.to_string(),
            line: t.line,
            col: t.col,
            rule: RuleId::PrintlnInLib,
            message: format!("{id}! in library code"),
        });
    }
}

/// `Result<_, String>` — a stringly-typed error position. Fires on the
/// exact error type `String`; wrapped strings (`Vec<String>`, custom
/// enums carrying a `String`) are structure and pass.
pub fn check_string_result(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind.ident() != Some("Result")
            || tokens.get(i + 1).map(|n| &n.kind) != Some(&TokenKind::Punct('<'))
        {
            continue;
        }
        // Walk the generic argument list, tracking angle/bracket depth,
        // and remember the last top-level comma (the error position).
        let mut angle = 1i32;
        let mut nest = 0i32;
        let mut j = i + 2;
        let mut err_pos = None;
        while j < tokens.len() && angle > 0 {
            match &tokens[j].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('(') | TokenKind::Punct('[') => nest += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => nest -= 1,
                TokenKind::Punct(',') if angle == 1 && nest == 0 => err_pos = Some(j + 1),
                _ => {}
            }
            j += 1;
        }
        // The error type is stringly iff it is the single token `String`
        // followed directly by the closing `>` (at j - 1).
        let Some(e) = err_pos else { continue };
        if tokens[e].kind.ident() == Some("String") && e + 1 == j - 1 {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: RuleId::StringResult,
                message: "Result<_, String>: stringly-typed error signature".to_string(),
            });
        }
    }
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items (attribute
/// line through the close of the item's brace block).
pub fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Punct('#')
            || tokens.get(i + 1).map(|t| &t.kind) != Some(&TokenKind::Punct('['))
        {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the matching `]`, noting whether the attribute mentions
        // `test` (covers #[test], #[cfg(test)], #[cfg(all(test, ..))]).
        let mut j = i + 2;
        let mut depth = 1u32;
        let mut mentions_test = false;
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => depth -= 1,
                TokenKind::Ident(s) if s == "test" => mentions_test = true,
                _ => {}
            }
            j += 1;
        }
        if !mentions_test {
            i = j;
            continue;
        }
        // Skip any further attributes, then find the item's `{ … }`.
        // A `;` before any `{` means no body (e.g. `mod m;`) — skip.
        let mut k = j;
        while k < tokens.len() {
            match &tokens[k].kind {
                TokenKind::Punct('#')
                    if tokens.get(k + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('[')) =>
                {
                    let mut d = 1u32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].kind {
                            TokenKind::Punct('[') => d += 1,
                            TokenKind::Punct(']') => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                TokenKind::Punct(';') => break,
                TokenKind::Punct('{') => {
                    let mut d = 1u32;
                    let mut m = k + 1;
                    while m < tokens.len() && d > 0 {
                        match tokens[m].kind {
                            TokenKind::Punct('{') => d += 1,
                            TokenKind::Punct('}') => d -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    let end_line = tokens.get(m.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                    ranges.push((start_line, end_line));
                    break;
                }
                _ => k += 1,
            }
        }
        i = j;
    }
    ranges
}

/// Narrowing `as` casts whose source is computed arithmetic (the
/// parser's [`parser::Cast::arith_source`] classification): `(a + b) as
/// u16` truncates silently on overflow. Plain-value casts, comparison
/// results, and provably-bounded `(x % k) as T` pass.
pub fn check_narrowing_cast(file: &str, facts: &BodyFacts, out: &mut Vec<Finding>) {
    for c in &facts.casts {
        if !c.arith_source {
            continue;
        }
        if parser::narrow_target_max(&c.target).is_none() {
            continue;
        }
        out.push(Finding {
            file: file.to_string(),
            line: c.line,
            col: c.col,
            rule: RuleId::NarrowingCast,
            message: format!(
                "computed arithmetic narrowed to {} with `as` (truncates silently on overflow)",
                c.target
            ),
        });
    }
}

/// Raw `+` / `*` in statistics/metrics accumulation code, where every
/// counter is contractually saturating. The caller scopes this to
/// stats/metrics sources; the parser already filtered derefs and float
/// arithmetic out of [`BodyFacts::arith`].
pub fn check_unsaturated_arith(file: &str, facts: &BodyFacts, out: &mut Vec<Finding>) {
    for a in &facts.arith {
        out.push(Finding {
            file: file.to_string(),
            line: a.line,
            col: a.col,
            rule: RuleId::UnsaturatedArith,
            message: format!(
                "raw `{}` in accumulator code (use saturating_{})",
                a.op,
                if a.op == '+' { "add" } else { "mul" }
            ),
        });
    }
}

/// `sort_unstable*` / `retain` invoked on a receiver that is visibly
/// hash-keyed in this file (per [`parser::hash_typed_idents`]): the
/// operation iterates (or ties break) in RandomState order, baking
/// nondeterminism into the surviving collection.
pub fn check_unstable_order(
    file: &str,
    facts: &BodyFacts,
    hash_typed: &std::collections::BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for m in &facts.method_calls {
        let order_sensitive = matches!(
            m.name.as_str(),
            "retain" | "sort_unstable" | "sort_unstable_by" | "sort_unstable_by_key"
        );
        if !order_sensitive {
            continue;
        }
        let Some(recv) = &m.receiver else { continue };
        if !hash_typed.contains(recv) {
            continue;
        }
        out.push(Finding {
            file: file.to_string(),
            line: m.line,
            col: m.col,
            rule: RuleId::UnstableOrder,
            message: format!(
                ".{}() on hash-keyed `{recv}` (iteration order is nondeterministic)",
                m.name
            ),
        });
    }
}

/// True when `tokens[i]` is reached via `<prefix>::`.
fn preceded_by_path(tokens: &[Token], i: usize, prefix: &str) -> bool {
    i >= 3
        && tokens[i - 1].kind == TokenKind::Punct(':')
        && tokens[i - 2].kind == TokenKind::Punct(':')
        && tokens[i - 3].kind.ident() == Some(prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: fn(&str, &[Token], &mut Vec<Finding>), src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        rule("test.rs", &lex(src), &mut out);
        out
    }

    #[test]
    fn wall_clock_fires_on_known_bad() {
        let bad = "let t = std::time::Instant::now(); std::thread::sleep(d);";
        let f = run(check_wall_clock, bad);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, RuleId::WallClock);
        assert!(f[1].message.contains("thread::sleep"));
    }

    #[test]
    fn wall_clock_ignores_unrelated_sleep() {
        // A method named `sleep` not reached via `thread::`.
        assert!(run(check_wall_clock, "power.sleep();").is_empty());
    }

    #[test]
    fn thread_spawn_fires_on_spawn_scope_builder() {
        let bad = "std::thread::spawn(f); thread::scope(|s| {}); thread::Builder::new();";
        let f = run(check_thread_spawn, bad);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == RuleId::ThreadSpawn));
        // Method calls and other paths named spawn/scope are not thread use.
        assert!(run(check_thread_spawn, "pool.spawn(f); tokio::spawn(f);").is_empty());
    }

    #[test]
    fn hash_container_fires() {
        let f = run(check_hash_container, "use std::collections::HashMap;");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("BTreeMap"));
        assert!(run(check_hash_container, "use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn float_eq_fires_only_on_floats() {
        assert_eq!(run(check_float_eq, "if x == 1.0 {}").len(), 1);
        assert_eq!(run(check_float_eq, "if 0.5 != y {}").len(), 1);
        assert!(run(check_float_eq, "if x == 1 {}").is_empty());
        assert!(run(check_float_eq, "if x <= 1.0 {}").is_empty());
    }

    #[test]
    fn unwrap_outside_tests_fires() {
        let bad = "fn f() { x.unwrap(); y.expect(\"m\"); }";
        assert_eq!(run(check_unwrap, bad).len(), 2);
    }

    #[test]
    fn unwrap_inside_cfg_test_mod_is_fine() {
        let src = "fn f() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { f().checked_add(1).unwrap(); }\n}\n";
        assert!(run(check_unwrap, src).is_empty());
    }

    #[test]
    fn unwrap_before_test_mod_still_fires() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { }\n";
        let f = run(check_unwrap, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn string_result_fires_on_string_error_position() {
        let bad = "pub fn parse(s: &str) -> Result<Header, String> { }";
        let f = run(check_string_result, bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::StringResult);
        // Nested generics on the ok side don't confuse the depth walk.
        let nested = "fn f() -> Result<Vec<Vec<u8>>, String> {}";
        assert_eq!(run(check_string_result, nested).len(), 1);
        let tuple_ok = "fn f() -> Result<(u8, String), MyError> {}";
        assert!(run(check_string_result, tuple_ok).is_empty());
    }

    #[test]
    fn string_result_ignores_typed_and_wrapped_errors() {
        assert!(run(check_string_result, "fn f() -> Result<u8, WireError> {}").is_empty());
        assert!(run(check_string_result, "fn f() -> Result<u8, Vec<String>> {}").is_empty());
        assert!(run(
            check_string_result,
            "fn f() -> Result<String, io::Error> {}"
        )
        .is_empty());
        // Non-Result maps with String values are fine.
        assert!(run(check_string_result, "let m: BTreeMap<u32, String> = x;").is_empty());
    }

    #[test]
    fn println_in_lib_fires_outside_tests() {
        let bad = "fn f() { println!(\"x\"); eprintln!(\"y\"); print!(\"z\"); }";
        let f = run(check_println, bad);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == RuleId::PrintlnInLib));
        // Inside a #[cfg(test)] module, printing is debugging aid.
        let test_only = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { println!(\"ok\"); }\n}\n";
        assert!(run(check_println, test_only).is_empty());
        // A function merely *named* println (no bang) is not a finding.
        assert!(run(check_println, "my::println(x); let p = println;").is_empty());
    }

    #[test]
    fn test_ranges_cover_attribute_to_closing_brace() {
        let src = "\n\n#[cfg(test)]\nmod tests {\n fn a() {}\n}\nfn tail() {}\n";
        let r = test_ranges(&lex(src));
        assert_eq!(r, vec![(3, 6)]);
    }

    fn body_facts(src: &str) -> BodyFacts {
        let parsed = parser::parse(&lex(src));
        parsed
            .items
            .into_iter()
            .find_map(|i| match i {
                parser::Item::Fn(f) => Some(f.body),
                _ => None,
            })
            .expect("a fn item")
    }

    #[test]
    fn narrowing_cast_fires_on_computed_arith_only() {
        let facts = body_facts(
            "fn f(a: u64, b: u64) { let x = (a + b) as u16; let y = a as u16; let z = (a > b) as u8; let w = (a % 128) as u8; let v = (a * b) as u64; }",
        );
        let mut out = Vec::new();
        check_narrowing_cast("t.rs", &facts, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("u16"));
    }

    #[test]
    fn unsaturated_arith_reports_raw_ops_not_derefs() {
        let facts = body_facts(
            "fn f(&mut self, d: u64) { self.total = self.total + d; *self.slot() = 1; let r = 2.0 * scale; }",
        );
        let mut out = Vec::new();
        check_unsaturated_arith("t.rs", &facts, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("saturating_add"));
    }

    #[test]
    fn unstable_order_needs_a_hash_typed_receiver() {
        let src = "fn f(flows: &mut HashMap<u32, u64>, v: &mut Vec<u8>) { flows.retain(|_, x| *x > 0); v.retain(|x| *x > 0); v.sort_unstable(); }";
        let facts = body_facts(src);
        let hash_typed = parser::hash_typed_idents(&lex(src));
        let mut out = Vec::new();
        check_unstable_order("t.rs", &facts, &hash_typed, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("flows"));
    }

    #[test]
    fn rule_names_round_trip() {
        for &r in RuleId::all() {
            assert_eq!(RuleId::from_name(r.name()), Some(r));
            assert!(!r.rationale().is_empty());
        }
    }

    #[test]
    fn unwrap_method_reference_without_call_is_ignored() {
        // `map(Option::unwrap)` has no receiver dot; `.unwrap` without
        // parens (field-like) doesn't occur in Rust, but be precise.
        assert!(run(check_unwrap, "xs.map(Option::unwrap);").is_empty());
    }
}
