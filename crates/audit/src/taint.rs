//! Whole-program determinism analyses on the call graph.
//!
//! Two passes, both over [`crate::graph::Workspace`]:
//!
//! - **Nondeterminism taint** (`nondet-taint`): functions that read a
//!   nondeterministic value (wall clock, environment, spawned threads,
//!   `RandomState`, `Ordering::Relaxed` loads, pointer-address
//!   formatting, `static mut`) are *sources*. Taint propagates from a
//!   source function to its callers — a caller consumes the source's
//!   return value, so it is over-approximated as tainted too. A finding
//!   fires when a tainted function inside the deterministic domain
//!   (sim-domain crates plus `obs`/`trace`/`digest`) hands data to a
//!   *sink*: span/metric emission, invariant recording, fingerprinting,
//!   event scheduling, or queue insertion. Each finding reports the
//!   full source → sink call path, which the per-file lexical rules
//!   cannot see (the source and the sink live in different functions,
//!   often different crates).
//!
//! - **Panic reachability** (`panic-in-pub-api`): panic-family macros
//!   (`panic!`, `assert!*`, `unreachable!`, `todo!` — not
//!   `debug_assert!*`) in non-test session-crate code that a public
//!   session API can reach. Reachability here prefers precision over
//!   recall: it walks resolved path-call edges always, but by-name
//!   method edges only when the method name is unambiguous in the
//!   workspace (a `.push()` must not make every `Vec` user
//!   "panic-reachable").

use std::collections::BTreeMap;

use crate::graph::{SymbolId, Workspace};
use crate::rules::{Finding, RuleId};

/// Crates whose outputs must be bit-identical across reruns: the
/// sim-domain crates plus the telemetry/trace/digest planes they emit
/// through.
pub const DETERMINISTIC_DOMAIN: &[&str] = &[
    "netsim",
    "tcp",
    "session",
    "nws",
    "workloads",
    "obs",
    "trace",
    "digest",
];

/// Function names whose arguments end up in deterministic artifacts:
/// trace spans, metrics, invariant records, fingerprints/digests, and
/// the event queue.
pub const SINK_NAMES: &[&str] = &[
    "span_begin",
    "span_end",
    "instant",
    "counter_add",
    "gauge_max",
    "gauge_set",
    "hist_observe",
    "record",
    "record_obs_link_metrics",
    "fingerprint",
    "whole_digest",
    "schedule",
    "enqueue",
];

/// One nondeterminism introduction point inside a function.
#[derive(Debug, Clone)]
pub struct TaintSource {
    pub sym: SymbolId,
    /// Short category: `wall-clock`, `env-read`, …
    pub kind: &'static str,
    /// What exactly was seen (`std::env::var`, `{:p}`, …).
    pub detail: String,
    pub line: u32,
}

/// Find every taint source in the workspace. Test code and the
/// sanctioned harness files are not seeded.
pub fn collect_sources(ws: &Workspace, exempt_files: &[&str]) -> Vec<TaintSource> {
    let mut out = Vec::new();
    // static mut names, per crate (usage anywhere in the crate taints).
    let mut statics_mut: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for m in &ws.modules {
        for s in &m.statics_mut {
            statics_mut
                .entry(m.crate_dir.as_str())
                .or_default()
                .push(s.as_str());
        }
    }

    for (id, sym) in ws.symbols.iter().enumerate() {
        if sym.in_test || exempt_files.contains(&sym.file.as_str()) {
            continue;
        }
        for ext in &ws.externals[id] {
            let p = ext.path.as_str();
            let kind =
                if p.starts_with("std::time::Instant") || p.starts_with("std::time::SystemTime") {
                    Some("wall-clock")
                } else if p.starts_with("std::env::") {
                    Some("env-read")
                } else if p.starts_with("std::thread::") && !p.ends_with("::sleep") {
                    Some("thread")
                } else if p.contains("RandomState") {
                    Some("hash-state")
                } else if p.ends_with("Ordering::Relaxed") {
                    Some("relaxed-atomic")
                } else {
                    None
                };
            if let Some(kind) = kind {
                out.push(TaintSource {
                    sym: id,
                    kind,
                    detail: p.to_string(),
                    line: ext.line,
                });
            }
        }
        // Unresolved `Ordering::Relaxed` / `RandomState` mentions (no
        // visible `use`): fall back to the raw path refs.
        for pr in &sym.facts.paths {
            let segs = &pr.segments;
            let relaxed = segs.len() >= 2
                && segs[segs.len() - 2] == "Ordering"
                && segs[segs.len() - 1] == "Relaxed";
            let external_hit = ws.externals[id].iter().any(|e| e.line == pr.line);
            if relaxed && !external_hit {
                out.push(TaintSource {
                    sym: id,
                    kind: "relaxed-atomic",
                    detail: pr.dotted(),
                    line: pr.line,
                });
            }
        }
        for s in &sym.facts.strings {
            if s.text.contains("{:p}") {
                out.push(TaintSource {
                    sym: id,
                    kind: "ptr-address",
                    detail: "{:p} format".to_string(),
                    line: s.line,
                });
            }
        }
        if let Some(names) = statics_mut.get(sym.crate_dir.as_str()) {
            for n in names {
                if sym.facts.idents.contains(*n) {
                    out.push(TaintSource {
                        sym: id,
                        kind: "static-mut",
                        detail: format!("static mut {n}"),
                        line: sym.line,
                    });
                }
            }
        }
    }
    out
}

/// Sink calls made by one function: `(name, line, col)`.
fn sink_calls(ws: &Workspace, id: SymbolId) -> Vec<(String, u32, u32)> {
    let sym = &ws.symbols[id];
    let mut out = Vec::new();
    for m in &sym.facts.method_calls {
        if SINK_NAMES.contains(&m.name.as_str()) {
            out.push((m.name.clone(), m.line, m.col));
        }
    }
    for p in &sym.facts.paths {
        if p.kind == crate::parser::PathKind::Call && SINK_NAMES.contains(&p.last()) {
            out.push((p.last().to_string(), p.line, p.col));
        }
    }
    out
}

/// Propagate every source to its transitive callers; report each
/// tainted deterministic-domain function that feeds a sink, with the
/// source → sink path. One finding per (source site, sink function,
/// sink name).
pub fn analyze(ws: &Workspace, exempt_files: &[&str]) -> Vec<Finding> {
    let sources = collect_sources(ws, exempt_files);
    let rev = ws.reverse_calls();
    let mut findings = Vec::new();

    for src in &sources {
        // BFS from the source fn over reverse call edges, recording
        // parents for path reconstruction.
        let mut parent: BTreeMap<SymbolId, SymbolId> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([src.sym]);
        let mut visited = vec![false; ws.symbols.len()];
        visited[src.sym] = true;
        while let Some(cur) = queue.pop_front() {
            let sym = &ws.symbols[cur];
            if !sym.in_test && DETERMINISTIC_DOMAIN.contains(&sym.crate_dir.as_str()) {
                let mut reported = std::collections::BTreeSet::new();
                for (name, line, col) in sink_calls(ws, cur) {
                    if !reported.insert(name.clone()) {
                        continue;
                    }
                    let path = call_path(ws, &parent, src.sym, cur);
                    findings.push(Finding {
                        file: sym.file.clone(),
                        line,
                        col,
                        rule: RuleId::NondetTaint,
                        message: format!(
                            "{} value ({} at {}:{}) can reach sink `{name}` (path: {path})",
                            src.kind, src.detail, ws.symbols[src.sym].file, src.line
                        ),
                    });
                }
            }
            for &caller in &rev[cur] {
                if !visited[caller] {
                    visited[caller] = true;
                    parent.insert(caller, cur);
                    queue.push_back(caller);
                }
            }
        }
    }
    findings
}

/// `source_fn -> … -> sink_fn` using the BFS parent map (parents point
/// from caller back toward the source's callee chain).
fn call_path(
    ws: &Workspace,
    parent: &BTreeMap<SymbolId, SymbolId>,
    source: SymbolId,
    sink: SymbolId,
) -> String {
    let mut chain = vec![sink];
    let mut cur = sink;
    while cur != source {
        match parent.get(&cur) {
            Some(&p) => {
                chain.push(p);
                cur = p;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
        .iter()
        .map(|&id| ws.symbols[id].display())
        .collect::<Vec<_>>()
        .join(" -> ")
}

const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
];

/// Panic-family macro sites in non-test `session` code reachable from a
/// public session API. Reported once per site, naming one entry path.
pub fn panic_in_pub_api(ws: &Workspace) -> Vec<Finding> {
    // Precise reverse edges: path calls always; method edges only when
    // the name is workspace-unique.
    let mut method_count: BTreeMap<&str, usize> = BTreeMap::new();
    for sym in &ws.symbols {
        if sym.type_name.is_some() {
            *method_count.entry(sym.name.as_str()).or_default() += 1;
        }
    }
    let mut rev: Vec<Vec<SymbolId>> = vec![Vec::new(); ws.symbols.len()];
    for (from, edges) in ws.calls.iter().enumerate() {
        for e in edges {
            let ambiguous_method =
                e.via.starts_with('.') && method_count.get(&e.via[1..]).copied().unwrap_or(0) > 1;
            if !ambiguous_method {
                rev[e.to].push(from);
            }
        }
    }
    for v in &mut rev {
        v.sort();
        v.dedup();
    }

    let mut findings = Vec::new();
    for (id, sym) in ws.symbols.iter().enumerate() {
        if sym.crate_dir != "session" || sym.in_test {
            continue;
        }
        let sites: Vec<_> = sym
            .facts
            .paths
            .iter()
            .filter(|p| {
                p.kind == crate::parser::PathKind::Macro && PANIC_MACROS.contains(&p.last())
            })
            .collect();
        if sites.is_empty() {
            continue;
        }
        // Walk callers until a public non-test session fn is reached.
        let mut parent: BTreeMap<SymbolId, SymbolId> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([id]);
        let mut visited = vec![false; ws.symbols.len()];
        visited[id] = true;
        let mut entry = None;
        while let Some(cur) = queue.pop_front() {
            let s = &ws.symbols[cur];
            if s.is_pub && !s.in_test && s.crate_dir == "session" {
                entry = Some(cur);
                break;
            }
            for &caller in &rev[cur] {
                if !visited[caller] {
                    visited[caller] = true;
                    parent.insert(caller, cur);
                    queue.push_back(caller);
                }
            }
        }
        let Some(entry) = entry else { continue };
        // Reconstruct entry -> … -> panicking fn.
        let mut chain = vec![entry];
        let mut cur = entry;
        while cur != id {
            match parent.get(&cur) {
                Some(&p) => {
                    chain.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        let path = chain
            .iter()
            .map(|&s| ws.symbols[s].display())
            .collect::<Vec<_>>()
            .join(" -> ");
        for p in sites {
            findings.push(Finding {
                file: sym.file.clone(),
                line: p.line,
                col: p.col,
                rule: RuleId::PanicInPubApi,
                message: format!(
                    "{}! reachable from public session API `{}` (path: {path})",
                    p.last(),
                    ws.symbols[entry].display()
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil::scratch_dir;

    const OBS_MANIFEST: &str = "[package]\nname = \"lsl-obs\"\n";
    const NETSIM_MANIFEST: &str =
        "[package]\nname = \"lsl-netsim\"\n\n[dependencies]\nlsl-obs.workspace = true\n";

    fn load(files: &[(&str, &str)]) -> (crate::graph::testutil::TempDir, Workspace) {
        let td = scratch_dir(files);
        let ws = Workspace::load(td.path()).expect("load");
        (td, ws)
    }

    #[test]
    fn cross_function_env_read_reaches_metric_sink() {
        // The source (env read) and the sink (counter_add) live in
        // DIFFERENT functions: no per-file lexical rule can connect
        // them — this is the case the call graph exists for.
        let (_td, ws) = load(&[
            ("crates/obs/Cargo.toml", OBS_MANIFEST),
            (
                "crates/obs/src/lib.rs",
                "pub fn counter_add(name: &str, idx: u64, d: u64) {}\n",
            ),
            ("crates/netsim/Cargo.toml", NETSIM_MANIFEST),
            (
                "crates/netsim/src/lib.rs",
                "fn knob() -> u64 {\n    std::env::var(\"LSL_KNOB\").ok().and_then(|v| v.parse().ok()).unwrap_or(0)\n}\npub fn step(t: u64) {\n    let k = knob();\n    lsl_obs::counter_add(\"knob\", 0, k);\n}\n",
            ),
        ]);
        let f = analyze(&ws, &[]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::NondetTaint);
        assert!(f[0].message.contains("env-read"), "{}", f[0].message);
        assert!(f[0].message.contains("std::env::var"), "{}", f[0].message);
        assert!(
            f[0].message.contains("knob -> step"),
            "path missing: {}",
            f[0].message
        );
        assert_eq!(f[0].file, "crates/netsim/src/lib.rs");
    }

    #[test]
    fn sources_outside_the_deterministic_domain_do_not_fire() {
        // realnet reads the wall clock, but nothing in the sim domain
        // depends on realnet — no taint path exists into a sink.
        let (_td, ws) = load(&[
            ("crates/realnet/Cargo.toml", "[package]\nname = \"lsl-realnet\"\n"),
            (
                "crates/realnet/src/lib.rs",
                "pub fn now_ms() -> u64 { let t = std::time::Instant::now(); 0 }\npub fn serve() { let t = now_ms(); log_it(t); }\nfn log_it(t: u64) {}\n",
            ),
        ]);
        assert!(analyze(&ws, &[]).is_empty());
        // …but the source itself was seen.
        assert!(collect_sources(&ws, &[])
            .iter()
            .any(|s| s.kind == "wall-clock"));
    }

    #[test]
    fn exempt_files_and_tests_are_not_seeded() {
        let (_td, ws) = load(&[
            ("crates/workloads/Cargo.toml", "[package]\nname = \"lsl-workloads\"\n"),
            (
                "crates/workloads/src/lib.rs",
                "pub mod campaign;\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v = std::env::var(\"X\"); }\n}\n",
            ),
            (
                "crates/workloads/src/campaign.rs",
                "pub fn fan_out() { let n = std::thread::spawn(|| {}); }\n",
            ),
        ]);
        let sources = collect_sources(&ws, &["crates/workloads/src/campaign.rs"]);
        assert!(sources.is_empty(), "{sources:?}");
    }

    #[test]
    fn relaxed_atomics_and_ptr_format_are_sources() {
        let (_td, ws) = load(&[
            ("crates/netsim/Cargo.toml", "[package]\nname = \"lsl-netsim\"\n"),
            (
                "crates/netsim/src/lib.rs",
                "use std::sync::atomic::{AtomicU64, Ordering};\npub fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\npub fn label(x: &u32) -> String { format!(\"{:p}\", x) }\n",
            ),
        ]);
        let kinds: Vec<&str> = collect_sources(&ws, &[]).iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&"relaxed-atomic"), "{kinds:?}");
        assert!(kinds.contains(&"ptr-address"), "{kinds:?}");
    }

    #[test]
    fn static_mut_usage_taints_the_function() {
        let (_td, ws) = load(&[
            ("crates/tcp/Cargo.toml", "[package]\nname = \"lsl-tcp\"\n"),
            (
                "crates/tcp/src/lib.rs",
                "static mut SCRATCH: u64 = 0;\npub fn poke() -> u64 { unsafe { SCRATCH += 1; SCRATCH } }\npub fn clean() -> u64 { 7 }\n",
            ),
        ]);
        let sources = collect_sources(&ws, &[]);
        assert_eq!(sources.len(), 1, "{sources:?}");
        assert_eq!(sources[0].kind, "static-mut");
        assert_eq!(ws.symbols[sources[0].sym].name, "poke");
    }

    #[test]
    fn panic_reachable_from_pub_session_api_is_reported_with_path() {
        let (_td, ws) = load(&[
            ("crates/session/Cargo.toml", "[package]\nname = \"lsl-session\"\n"),
            (
                "crates/session/src/lib.rs",
                "pub fn open(sz: usize) { validate(sz); }\nfn validate(sz: usize) { assert!(sz > 0, \"empty\"); }\nfn dead() { panic!(\"unreached\"); }\n#[cfg(test)]\nmod tests { #[test] fn t() { panic!(\"test only\"); } }\n",
            ),
        ]);
        let f = panic_in_pub_api(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("open -> validate"),
            "{}",
            f[0].message
        );
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn ambiguous_method_edges_do_not_create_panic_reachability() {
        // Two `push` methods exist; a pub fn calling `.push()` on its own
        // buffer must not be considered able to reach the panicking one.
        let (_td, ws) = load(&[
            ("crates/session/Cargo.toml", "[package]\nname = \"lsl-session\"\n"),
            (
                "crates/session/src/lib.rs",
                "pub struct A { v: u64 }\nimpl A { fn push(&mut self) { panic!(\"boom\"); } }\npub struct B { v: u64 }\nimpl B { fn push(&mut self) {} }\npub fn api(b: &mut B) { b.push(); }\n",
            ),
        ]);
        assert!(panic_in_pub_api(&ws).is_empty());
    }
}
