//! `lsl-audit` — the workspace determinism linter.
//!
//! The simulator's central promise is *bit-identical reruns*: the same
//! seed must produce the same trace on every machine, every time. That
//! property is easy to break silently — one `HashMap` iteration, one
//! wall-clock read — so this crate enforces it statically. It parses
//! every crate's sources with a small hand-rolled lexer (the build is
//! offline; `syn` is unavailable) and applies per-crate policy rules:
//!
//! | rule | applies to | bans |
//! |------|-----------|------|
//! | `wall-clock` | sim-domain + realnet | `Instant`, `SystemTime`, `thread::sleep` |
//! | `hash-container` | sim-domain | `HashMap`, `HashSet` |
//! | `float-eq` | every crate | `==`/`!=` against float literals |
//! | `unwrap-outside-tests` | session, realnet | `.unwrap()`/`.expect()` in non-test code |
//! | `thread-spawn` | sim-domain | `thread::spawn`/`scope`/`Builder` (harness executor exempt) |
//! | `string-result` | every crate | `Result<_, String>` signatures (use the typed error enums) |
//! | `println-in-lib` | every crate | `println!`/`eprintln!` in library code (non-bin, non-test) |
//! | `unused-workspace-dep` | root manifest | `[workspace.dependencies]` entries no member uses |
//!
//! Sim-domain crates are `netsim`, `tcp`, `session`, `nws`, `workloads`.
//! Justified exceptions live in the checked-in `audit.toml`; every entry
//! carries a mandatory reason, and entries that stop matching anything
//! are themselves reported (`stale-allow`).

pub mod allowlist;
pub mod graph;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod rules;
pub mod taint;

mod manifest;

use std::fs;
use std::path::{Path, PathBuf};

use allowlist::AllowEntry;
use rules::{Finding, RuleId};

/// Crates whose code runs inside the deterministic simulation domain.
pub const SIM_DOMAIN: &[&str] = &["netsim", "tcp", "session", "nws", "workloads"];

/// Files inside sim-domain crates that are experiment-*harness* code,
/// not simulation semantics: the campaign executor fans whole
/// deterministic runs across OS threads and is the one sanctioned use
/// of `std::thread` there. Paths are workspace-relative.
pub const HARNESS_THREAD_EXEMPT: &[&str] = &["crates/workloads/src/campaign.rs"];

/// Which rules apply to a crate, keyed by its directory name under
/// `crates/` (the root package audits as `"lsl"`).
pub fn policy_for(crate_dir: &str) -> Vec<RuleId> {
    let mut rules = vec![
        RuleId::FloatEq,
        RuleId::StringResult,
        RuleId::PrintlnInLib,
        RuleId::UnstableOrder,
    ];
    if SIM_DOMAIN.contains(&crate_dir) {
        rules.push(RuleId::WallClock);
        rules.push(RuleId::HashContainer);
        rules.push(RuleId::ThreadSpawn);
        rules.push(RuleId::NarrowingCast);
    }
    if SIM_DOMAIN.contains(&crate_dir) || crate_dir == "obs" {
        rules.push(RuleId::UnsaturatedArith);
    }
    if crate_dir == "realnet" {
        // Not simulation code, but its daemon must still justify every
        // wall-clock dependence (via audit.toml) and must not panic on
        // I/O errors outside tests.
        rules.push(RuleId::WallClock);
        rules.push(RuleId::UnwrapOutsideTests);
    }
    if crate_dir == "session" {
        rules.push(RuleId::UnwrapOutsideTests);
    }
    rules
}

/// Full audit of the workspace at `root`. Returns surviving findings
/// (allowlisted ones removed, stale allow entries appended).
pub fn audit_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let allow = load_allowlist(&root.join("audit.toml"))?;
    let mut findings = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|d| d.ok().map(|d| d.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        audit_crate(root, &dir, &name, &mut findings)?;
    }
    // The root package's own sources (if any).
    if root.join("src").is_dir() {
        audit_crate(root, root, "lsl", &mut findings)?;
    }

    manifest::check_unused_workspace_deps(root, &mut findings)?;

    // Whole-program passes: symbol table + call graph, then taint and
    // panic reachability over it.
    let ws = graph::Workspace::load(root)?;
    findings.extend(taint::analyze(&ws, HARNESS_THREAD_EXEMPT));
    findings.extend(taint::panic_in_pub_api(&ws));

    let mut findings = apply_allowlist(findings, &allow);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.name()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.name(),
        ))
    });
    Ok(findings)
}

/// Remove allowlisted findings; report stale allowlist entries.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &[AllowEntry]) -> Vec<Finding> {
    let mut used = vec![false; allow.len()];
    let mut surviving: Vec<Finding> = findings
        .into_iter()
        .filter(|f| match allow.iter().position(|a| a.matches(f)) {
            Some(i) => {
                used[i] = true;
                false
            }
            None => true,
        })
        .collect();
    for (entry, used) in allow.iter().zip(used) {
        if !used {
            surviving.push(Finding {
                file: "audit.toml".to_string(),
                line: entry.defined_at,
                col: 1,
                rule: RuleId::StaleAllow,
                message: format!(
                    "allow entry ({} in {}) matches no finding",
                    entry.rule.name(),
                    entry.path
                ),
            });
        }
    }
    surviving
}

fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    match fs::read_to_string(path) {
        Ok(text) => allowlist::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn audit_crate(
    root: &Path,
    crate_dir: &Path,
    crate_name: &str,
    out: &mut Vec<Finding>,
) -> Result<(), String> {
    let policy = policy_for(crate_name);
    let src = crate_dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    collect_rs_files(&src, &mut files)?;
    files.sort();
    for path in files {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let tokens = lexer::lex(&text);
        for rule in &policy {
            match rule {
                RuleId::WallClock => rules::check_wall_clock(&rel, &tokens, out),
                RuleId::HashContainer => rules::check_hash_container(&rel, &tokens, out),
                RuleId::FloatEq => rules::check_float_eq(&rel, &tokens, out),
                RuleId::StringResult => rules::check_string_result(&rel, &tokens, out),
                RuleId::PrintlnInLib => {
                    // Binaries own stdout/stderr; only library sources
                    // are in scope.
                    let is_bin = rel.contains("/src/bin/")
                        || rel.ends_with("/main.rs")
                        || rel == "src/main.rs";
                    if !is_bin {
                        rules::check_println(&rel, &tokens, out);
                    }
                }
                RuleId::UnwrapOutsideTests => rules::check_unwrap(&rel, &tokens, out),
                RuleId::ThreadSpawn => {
                    if !HARNESS_THREAD_EXEMPT.contains(&rel.as_str()) {
                        rules::check_thread_spawn(&rel, &tokens, out);
                    }
                }
                RuleId::UnusedWorkspaceDep
                | RuleId::StaleAllow
                | RuleId::NarrowingCast
                | RuleId::UnsaturatedArith
                | RuleId::UnstableOrder
                | RuleId::PanicInPubApi
                | RuleId::NondetTaint => {}
            }
        }

        // Syntactic rules: parse once, walk every fn (impl methods and
        // inline modules included), skip test code.
        let needs_parse = policy.iter().any(|r| {
            matches!(
                r,
                RuleId::NarrowingCast | RuleId::UnsaturatedArith | RuleId::UnstableOrder
            )
        });
        if needs_parse {
            let parsed = parser::parse(&tokens);
            let hash_typed = parser::hash_typed_idents(&tokens);
            let base = rel.rsplit('/').next().unwrap_or(&rel);
            let is_accumulator_file = base.contains("stats") || base.contains("metrics");
            parser::for_each_fn(&parsed.items, &mut |f| {
                if f.in_test {
                    return;
                }
                for rule in &policy {
                    match rule {
                        RuleId::NarrowingCast => {
                            rules::check_narrowing_cast(&rel, &f.body, out);
                        }
                        RuleId::UnsaturatedArith if is_accumulator_file => {
                            rules::check_unsaturated_arith(&rel, &f.body, out);
                        }
                        RuleId::UnstableOrder => {
                            rules::check_unstable_order(&rel, &f.body, &hash_typed, out);
                        }
                        _ => {}
                    }
                }
            });
        }
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// CLI entry point: audit the workspace, print findings in the chosen
/// format, return the exit code (0 clean, 1 findings, 2 errors).
///
/// `--rule <id>` narrows the report to one rule — except `stale-allow`
/// findings, which survive any filter: allowlist rot is a hard CI
/// failure, never maskable by looking at a different rule.
pub fn run() -> i32 {
    let mut root = PathBuf::from(".");
    let mut format = output::Format::Text;
    let mut rule_filter: Option<RuleId> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("lsl-audit: --root requires a path");
                    return 2;
                }
            },
            "--format" => match args.next().as_deref().and_then(output::Format::from_name) {
                Some(f) => format = f,
                None => {
                    eprintln!("lsl-audit: --format requires one of: text, json, sarif");
                    return 2;
                }
            },
            "--rule" => match args.next().as_deref().and_then(RuleId::from_name) {
                Some(r) => rule_filter = Some(r),
                None => {
                    eprintln!(
                        "lsl-audit: --rule requires a known rule id (one of: {})",
                        RuleId::all()
                            .iter()
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!(
                    "lsl-audit: workspace determinism analyzer\n\n\
                     usage: lsl-audit [--root <workspace-dir>] [--format text|json|sarif]\n\
                     \u{20}                [--rule <rule-id>]\n\n\
                     Lexes and parses crates/*/src, builds the workspace call graph,\n\
                     and reports policy violations: lexical rules (wall-clock reads,\n\
                     HashMap/HashSet in sim-domain code, float ==, unwrap outside\n\
                     tests), syntactic rules (narrowing casts of computed arithmetic,\n\
                     raw accumulator arithmetic, order-sensitive ops on hash-keyed\n\
                     collections), and whole-program rules (nondeterminism taint\n\
                     source->sink paths, panics reachable from public session APIs).\n\
                     Justified exceptions: audit.toml. stale-allow findings ignore\n\
                     --rule; allowlist rot always fails the audit.\n\n\
                     rules: {}",
                    RuleId::all()
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return 0;
            }
            other => {
                eprintln!("lsl-audit: unknown argument `{other}`");
                return 2;
            }
        }
    }

    let mut findings = match audit_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lsl-audit: {e}");
            return 2;
        }
    };
    if let Some(rule) = rule_filter {
        findings.retain(|f| f.rule == rule || f.rule == RuleId::StaleAllow);
    }
    if findings.is_empty() && format == output::Format::Text {
        println!("lsl-audit: clean ({})", root.display());
        return 0;
    }
    print!("{}", output::render(&findings, format));
    if findings.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_table_shape() {
        for c in SIM_DOMAIN {
            let p = policy_for(c);
            assert!(p.contains(&RuleId::WallClock), "{c}");
            assert!(p.contains(&RuleId::HashContainer), "{c}");
            assert!(p.contains(&RuleId::ThreadSpawn), "{c}");
        }
        assert!(!policy_for("bench").contains(&RuleId::ThreadSpawn));
        assert!(!policy_for("realnet").contains(&RuleId::ThreadSpawn));
        assert!(policy_for("session").contains(&RuleId::UnwrapOutsideTests));
        assert!(policy_for("realnet").contains(&RuleId::UnwrapOutsideTests));
        assert!(policy_for("realnet").contains(&RuleId::WallClock));
        assert!(!policy_for("digest").contains(&RuleId::HashContainer));
        assert!(policy_for("digest").contains(&RuleId::FloatEq));
        // string-result and println-in-lib apply everywhere, like float-eq.
        for c in ["session", "realnet", "bench", "audit", "lsl"] {
            assert!(policy_for(c).contains(&RuleId::StringResult), "{c}");
            assert!(policy_for(c).contains(&RuleId::PrintlnInLib), "{c}");
        }
    }

    #[test]
    fn stale_allow_entries_are_reported() {
        let allow = vec![AllowEntry {
            path: "crates/none/src/lib.rs".into(),
            rule: RuleId::FloatEq,
            reason: "r".into(),
            defined_at: 3,
        }];
        let out = apply_allowlist(Vec::new(), &allow);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RuleId::StaleAllow);
        assert_eq!(out[0].line, 3);
    }
}
