//! `[workspace.dependencies]` hygiene: every entry in the root manifest
//! must be consumed (`dep.workspace = true` / `dep = { workspace = true,
//! … }`) by at least one member manifest or the root package itself.
//! Minimal line-oriented TOML reading — same constraint as the
//! allowlist: no TOML crate offline.

use std::fs;
use std::path::Path;

use crate::rules::{Finding, RuleId};

/// Append an `unused-workspace-dep` finding for every stale entry.
pub fn check_unused_workspace_deps(root: &Path, out: &mut Vec<Finding>) -> Result<(), String> {
    let root_manifest = root.join("Cargo.toml");
    let text = fs::read_to_string(&root_manifest)
        .map_err(|e| format!("{}: {e}", root_manifest.display()))?;
    let deps = workspace_dependency_keys(&text);
    if deps.is_empty() {
        return Ok(());
    }

    // Gather every member manifest (crates/*, shims/*) plus the root's
    // own [dependencies]/[dev-dependencies] sections.
    let mut manifest_texts = vec![text.clone()];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if let Ok(t) = fs::read_to_string(&m) {
                manifest_texts.push(t);
            }
        }
    }

    for (name, line) in deps {
        let needle_inline = format!("{name}.workspace");
        let used = manifest_texts.iter().any(|t| {
            dependency_sections(t).any(|dep_line| {
                let key = dep_line.split(['=', '.']).next().unwrap_or("").trim();
                key == name
                    && (dep_line.contains("workspace = true")
                        || dep_line.starts_with(&needle_inline))
            })
        });
        if !used {
            out.push(Finding {
                file: "Cargo.toml".to_string(),
                line,
                col: 1,
                rule: RuleId::UnusedWorkspaceDep,
                message: format!("workspace dependency `{name}` is not used by any member"),
            });
        }
    }
    Ok(())
}

/// Keys (with line numbers) declared under `[workspace.dependencies]`.
fn workspace_dependency_keys(manifest: &str) -> Vec<(String, u32)> {
    let mut keys = Vec::new();
    let mut in_section = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_section = line == "[workspace.dependencies]";
            continue;
        }
        if !in_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, _)) = line.split_once('=') {
            keys.push((key.trim().to_string(), idx as u32 + 1));
        }
    }
    keys
}

/// Lines inside any `[dependencies]`-like section of a manifest
/// (`[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// target-specific variants).
fn dependency_sections(manifest: &str) -> impl Iterator<Item = &str> {
    let mut in_deps = false;
    manifest.lines().filter_map(move |raw| {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies")
                && line != "[workspace.dependencies]";
            return None;
        }
        (in_deps && !line.is_empty() && !line.starts_with('#')).then_some(line)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_declared_keys() {
        let m = "[workspace.dependencies]\nfoo = { path = \"x\" }\nbar = \"1\"\n\n[package]\nname = \"r\"\n";
        let keys = workspace_dependency_keys(m);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, "foo");
        assert_eq!(keys[1], ("bar".to_string(), 3));
    }

    #[test]
    fn usage_detection_covers_both_toml_spellings() {
        let member_a = "[dependencies]\nfoo.workspace = true\n";
        let member_b = "[dev-dependencies]\nbar = { workspace = true, features = [\"x\"] }\n";
        for (name, text, expect) in [
            ("foo", member_a, true),
            ("bar", member_b, true),
            ("baz", member_a, false),
        ] {
            let used = dependency_sections(text).any(|l| {
                let key = l.split(['=', '.']).next().unwrap_or("").trim();
                key == name
                    && (l.contains("workspace = true")
                        || l.starts_with(&format!("{name}.workspace")))
            });
            assert_eq!(used, expect, "{name}");
        }
    }

    #[test]
    fn workspace_dependencies_section_is_not_a_usage_site() {
        // The declaration itself must not count as a use.
        let only_decl = "[workspace.dependencies]\nfoo = { path = \"x\" }\n";
        assert_eq!(dependency_sections(only_decl).count(), 0);
    }
}
